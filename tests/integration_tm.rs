//! Cross-crate TM semantics: privatization, lock erasure, serial fallback,
//! quiescence accounting, and condition-variable behaviour, exercised
//! through the full public API.

use std::sync::Arc;
use tle_repro::prelude::*;

/// The paper's privatization pattern: a transaction detaches a node, then
/// the owner accesses it non-transactionally. With `Always` quiescence no
/// concurrent doomed transaction may still be using it after the drain.
#[test]
fn privatization_pattern_is_safe_under_always() {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = Arc::new(ElidableMutex::new("priv"));
    // shared.0 = "detached" flag, shared.1 = payload cell
    let detached = Arc::new(TCell::new(false));
    let payload = Arc::new(TCell::new(0u64));

    let writer = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let detached = Arc::clone(&detached);
        let payload = Arc::clone(&payload);
        std::thread::spawn(move || {
            let th = sys.register();
            // Readers keep transactionally incrementing the payload until
            // they see the detach.
            loop {
                let saw_detached = th.tx(&lock).run(|ctx| {
                    if ctx.read(&*detached)? {
                        return Ok(true);
                    }
                    ctx.update(&*payload, |v| v + 1)?;
                    Ok(false)
                });
                if saw_detached {
                    break;
                }
            }
        })
    };

    let th = sys.register();
    std::thread::sleep(std::time::Duration::from_millis(10));
    // Privatize: after this commit (and its quiescence drain), no
    // transactional writer can still touch `payload`.
    th.tx(&lock).run(|ctx| {
        ctx.write(&*detached, true)?;
        Ok(())
    });
    let before = payload.load_direct();
    // Non-transactional access window.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let after = payload.load_direct();
    writer.join().unwrap();
    assert_eq!(
        before, after,
        "a transactional write landed after privatization+quiescence"
    );
}

/// Lock erasure (paper §IV-A): two *different* locks under TM share one
/// conflict domain — transactions on disjoint locks still serialize
/// correctly with respect to each other when they touch the same data.
#[test]
fn lock_erasure_keeps_disjoint_locks_coherent() {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock_a = Arc::new(ElidableMutex::new("A"));
    let lock_b = Arc::new(ElidableMutex::new("B"));
    let cell = Arc::new(TCell::new(0u64));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let sys = Arc::clone(&sys);
            let lock = if i % 2 == 0 {
                Arc::clone(&lock_a)
            } else {
                Arc::clone(&lock_b)
            };
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let th = sys.register();
                for _ in 0..5_000 {
                    th.tx(&lock).run(|ctx| {
                        ctx.update(&*cell, |v| v + 1)?;
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // NOTE: under the *baseline* two different locks would NOT protect the
    // same data — this test documents that TM-mode lock erasure does.
    assert_eq!(cell.load_direct(), 20_000);
}

/// Abort storms must escape to the serial path and still complete.
#[test]
fn abort_storm_escapes_to_serial() {
    use tle_repro::htm::HtmConfig;
    // An HTM configured to abort nearly always.
    let sys = Arc::new(
        TmSystem::builder()
            .mode(AlgoMode::HtmCondvar)
            .policy(TlePolicy {
                htm_retries: 2,
                ..TlePolicy::default()
            })
            .htm_config(HtmConfig {
                event_prob: 0.9,
                ..HtmConfig::default()
            })
            .build(),
    );
    let th = sys.register();
    let lock = ElidableMutex::new("stormy");
    let cell = TCell::new(0u64);
    for _ in 0..200 {
        th.tx(&lock).run(|ctx| {
            ctx.update(&cell, |v| v + 1)?;
            Ok(())
        });
    }
    assert_eq!(cell.load_direct(), 200);
    assert!(
        sys.stats.serial_fallbacks.get() > 100,
        "expected most sections to serialize, got {}",
        sys.stats.serial_fallbacks.get()
    );
}

/// Quiescence accounting: Always drains every commit; Selective only the
/// non-annotated ones; Never none (except frees).
#[test]
fn quiesce_accounting_matches_policy() {
    for (policy, expect_drains, expect_skips) in [
        (QuiescePolicy::Always, true, false),
        (QuiescePolicy::Selective, false, true),
        (QuiescePolicy::Never, false, true),
    ] {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        sys.stm.set_policy(policy);
        let th = sys.register();
        let lock = ElidableMutex::new("q");
        let cell = TCell::new(0u64);
        for _ in 0..100 {
            th.tx(&lock).run(|ctx| {
                ctx.update(&cell, |v| v + 1)?;
                ctx.no_quiesce();
                Ok(())
            });
        }
        let snap = sys.stm.stats.snapshot();
        assert_eq!(snap.quiesces > 0, expect_drains, "{policy:?} drains");
        assert_eq!(snap.quiesce_skipped > 0, expect_skips, "{policy:?} skips");
    }
}

/// Timed waits expire and the closure re-runs (x265's soft real-time
/// requirement, paper §VI-d).
#[test]
fn timed_wait_expires_under_every_mode() {
    for mode in ALL_MODES {
        if mode == AlgoMode::StmSpin {
            continue; // spin mode has no timed blocking
        }
        let sys = Arc::new(TmSystem::new(mode));
        let th = sys.register();
        let lock = ElidableMutex::new("t");
        let cv = TxCondvar::new();
        let never_set = TCell::new(false);
        let mut wakes = 0u32;
        let t0 = std::time::Instant::now();
        let r = th.tx(&lock).run(|ctx| {
            if !ctx.read(&never_set)? {
                wakes += 1;
                if wakes > 3 {
                    return Ok(false); // give up after 3 timeouts
                }
                return ctx
                    .wait(&cv, Some(std::time::Duration::from_millis(10)))
                    .map(|_| false);
            }
            Ok(true)
        });
        assert!(!r);
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(25),
            "timeouts did not elapse under {mode:?}"
        );
        assert_eq!(
            wakes, 4,
            "expected 3 timeout wakeups + final give-up under {mode:?}"
        );
    }
}

/// Deferred logging (paper §VI-c): log lines appear exactly once per
/// completed section, never for aborted attempts.
#[test]
fn deferred_logging_is_exactly_once_under_contention() {
    for mode in [AlgoMode::StmCondvar, AlgoMode::HtmCondvar] {
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("log"));
        let cell = Arc::new(TCell::new(0u64));
        let log = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let cell = Arc::clone(&cell);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let th = sys.register();
                    for _ in 0..1_000 {
                        let log2 = Arc::clone(&log);
                        let cell2 = Arc::clone(&cell);
                        th.tx(&lock).run(move |ctx| {
                            let v = ctx.update(&*cell2, |v| v + 1)?;
                            let log3 = Arc::clone(&log2);
                            ctx.defer(move || log3.lock().push(v));
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut lines = log.lock().clone();
        lines.sort_unstable();
        let expect: Vec<u64> = (1..=4_000).collect();
        assert_eq!(lines, expect, "log lines lost or duplicated under {mode:?}");
    }
}

/// Explicit cancel rolls everything back under TM modes.
#[test]
fn explicit_cancel_discards_effects() {
    for mode in [
        AlgoMode::StmCondvar,
        AlgoMode::StmCondvarNoQuiesce,
        AlgoMode::HtmCondvar,
    ] {
        let sys = Arc::new(TmSystem::new(mode));
        let th = sys.register();
        let lock = ElidableMutex::new("c");
        let cell = TCell::new(5u64);
        let mut attempts = 0;
        let out = th.tx(&lock).run(|ctx| {
            attempts += 1;
            if attempts == 1 {
                ctx.write(&cell, 99u64)?;
                return Err(ctx.cancel());
            }
            ctx.read(&cell)
        });
        assert_eq!(out, 5, "cancelled write leaked under {mode:?}");
        assert_eq!(cell.load_direct(), 5);
        assert_eq!(attempts, 2);
    }
}

/// Nested critical sections are rejected loudly (the §V non-2PL problem —
/// silently flattening would release the outer transaction's metadata at
/// the inner commit).
#[test]
#[should_panic(expected = "nested critical sections")]
fn nested_critical_sections_panic() {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let th = sys.register();
    let outer = ElidableMutex::new("outer");
    let inner = ElidableMutex::new("inner");
    let cell = TCell::new(0u64);
    th.tx(&outer).run(|_| {
        // tle-lint: allow(R2, "deliberate x265-class nesting: this test pins the runtime's loud rejection of nested sections")
        th.tx(&inner).run(|ctx| {
            ctx.update(&cell, |v| v + 1)?;
            Ok(())
        });
        Ok(())
    });
}

/// The paper's Listing 1: proxy privatization. A producer transactionally
/// hands a message through a vector slot; a *proxy* transaction moves it
/// on; the final owner uses it non-transactionally. GCC moved to
/// quiesce-after-every-transaction precisely to support this idiom — the
/// privatizing transaction here is a *reader*.
#[test]
fn proxy_privatization_listing1() {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = Arc::new(ElidableMutex::new("vec"));
    // vec[k] slots; values are message ids (0 = null).
    let slots: Arc<Vec<TCell<u64>>> = Arc::new((0..8).map(|_| TCell::new(0)).collect());
    let consumed = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
    const MSGS: u64 = 500;

    // Update thread: publishes each message into some empty slot
    // (retrying until a slot frees up).
    let updater = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let slots = Arc::clone(&slots);
        std::thread::spawn(move || {
            let th = sys.register();
            for msg in 1..=MSGS {
                loop {
                    let published = th.tx(&lock).run(|ctx| {
                        for k in 0..slots.len() {
                            if ctx.read(&slots[k])? == 0 {
                                ctx.write(&slots[k], msg)?;
                                ctx.no_quiesce(); // publication only
                                return Ok(true);
                            }
                        }
                        Ok(false)
                    });
                    if published {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        })
    };
    // Proxy thread: privatizes by swapping a slot to null; the extracted
    // message is then used non-transactionally.
    let proxy = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let slots = Arc::clone(&slots);
        let consumed = Arc::clone(&consumed);
        std::thread::spawn(move || {
            let th = sys.register();
            let mut got = 0u64;
            while got < MSGS {
                let msg = th.tx(&lock).run(|ctx| {
                    for k in 0..slots.len() {
                        let m = ctx.read(&slots[k])?;
                        if m != 0 {
                            ctx.write(&slots[k], 0u64)?;
                            // Privatizing: default quiescence applies.
                            return Ok(m);
                        }
                    }
                    ctx.no_quiesce(); // found nothing: no privatization
                    Ok(0)
                });
                if msg != 0 {
                    // use(msg): non-transactional access window.
                    consumed.lock().push(msg);
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        })
    };
    updater.join().unwrap();
    proxy.join().unwrap();
    let consumed = consumed.lock();
    assert_eq!(consumed.len(), MSGS as usize);
    assert!(consumed.iter().all(|&m| (1..=MSGS).contains(&m)));
}
