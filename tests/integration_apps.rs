//! End-to-end application tests spanning the whole stack: the PBZip2
//! pipeline and the wavefront encoder, run under all five algorithms with
//! output equality and integrity checks.

use std::sync::Arc;
use tle_repro::pbz::{
    compress_parallel, compress_serial, decompress_parallel, decompress_serial, gen_text,
    PipelineConfig,
};
use tle_repro::prelude::*;
use tle_repro::wfe::{encode_video, EncoderConfig, VideoSource};

#[test]
fn pbzip_end_to_end_all_modes_match_serial() {
    let input = gen_text(0xAB, 200_000);
    let block = 25_000;
    let serial = compress_serial(&input, block);
    assert!(serial.len() < input.len(), "input should be compressible");
    for mode in ALL_MODES {
        for workers in [1usize, 4] {
            let sys = Arc::new(TmSystem::new(mode));
            let cfg = PipelineConfig {
                workers,
                block_size: block,
                fifo_cap: 4,
            };
            let c = compress_parallel(&sys, &input, &cfg);
            assert_eq!(
                c, serial,
                "parallel stream differs from serial under {mode:?}/{workers}w"
            );
            let d = decompress_parallel(&sys, &c, &cfg).unwrap();
            assert_eq!(d, input);
        }
    }
}

#[test]
fn pbzip_block_size_sweep_roundtrips() {
    let input = gen_text(0xCD, 500_000);
    let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
    for block in [10_000usize, 100_000, 300_000, 900_000] {
        let cfg = PipelineConfig {
            workers: 3,
            block_size: block,
            fifo_cap: 4,
        };
        let c = compress_parallel(&sys, &input, &cfg);
        assert_eq!(
            decompress_serial(&c).unwrap(),
            input,
            "block size {block} failed"
        );
    }
}

#[test]
fn pbzip_statistics_are_recorded() {
    let input = gen_text(0xEF, 300_000);
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let cfg = PipelineConfig {
        workers: 4,
        block_size: 30_000,
        fifo_cap: 4,
    };
    let _ = compress_parallel(&sys, &input, &cfg);
    let stm = sys.stm.stats.snapshot();
    assert!(stm.commits > 20, "pipeline should commit many transactions");
    // The paper's observation: conflicts are rare on the queue workload.
    assert!(
        stm.abort_rate() < 0.2,
        "unexpectedly high abort rate {:.3}",
        stm.abort_rate()
    );
}

#[test]
fn encoder_output_identical_across_all_modes_and_threads() {
    let source = VideoSource::new(96, 64, 5, 0xFEED);
    let golden = {
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        encode_video(
            &sys,
            &source,
            &EncoderConfig {
                workers: 1,
                ..EncoderConfig::default()
            },
        )
    };
    for mode in ALL_MODES {
        for workers in [2usize, 4] {
            let sys = Arc::new(TmSystem::new(mode));
            let v = encode_video(
                &sys,
                &source,
                &EncoderConfig {
                    workers,
                    ..EncoderConfig::default()
                },
            );
            let a: Vec<u32> = golden.frames.iter().map(|f| f.digest).collect();
            let b: Vec<u32> = v.frames.iter().map(|f| f.digest).collect();
            assert_eq!(a, b, "digest mismatch under {mode:?}/{workers}w");
            assert_eq!(golden.total_bits, v.total_bits);
        }
    }
}

#[test]
fn encoder_quality_is_reasonable() {
    let source = VideoSource::new(96, 64, 6, 7);
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let v = encode_video(
        &sys,
        &source,
        &EncoderConfig {
            workers: 4,
            qp: 12,
            ..EncoderConfig::default()
        },
    );
    assert!(
        v.mean_psnr > 30.0,
        "QP 12 should exceed 30 dB, got {:.1}",
        v.mean_psnr
    );
    // Inter frames exist and save bits.
    assert!(v.frames.iter().any(|f| !f.keyframe));
}

#[test]
fn encoder_htm_stats_show_activity() {
    let source = VideoSource::new(96, 64, 4, 11);
    let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
    let _ = encode_video(
        &sys,
        &source,
        &EncoderConfig {
            workers: 4,
            ..EncoderConfig::default()
        },
    );
    assert!(
        sys.htm.stats.tx.commits.get() > 100,
        "wavefront should commit many hardware transactions"
    );
}

#[test]
fn compressing_encoded_video_metadata_roundtrips() {
    // Cross-app smoke: serialize encoder results through the compressor.
    let source = VideoSource::new(64, 48, 3, 3);
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvarNoQuiesce));
    let v = encode_video(&sys, &source, &EncoderConfig::default());
    let mut payload = Vec::new();
    for f in &v.frames {
        payload.extend_from_slice(&f.bits.to_le_bytes());
        payload.extend_from_slice(&f.digest.to_le_bytes());
    }
    let cfg = PipelineConfig {
        workers: 2,
        block_size: 64,
        fifo_cap: 2,
    };
    let c = compress_parallel(&sys, &payload, &cfg);
    assert_eq!(decompress_parallel(&sys, &c, &cfg).unwrap(), payload);
}
