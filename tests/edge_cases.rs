//! Edge-case integration tests: condvar ring hygiene under timeout storms,
//! serialization-gate writer preference, HTM conflict-table aliasing, FIFO
//! capacity blocking, and slot exhaustion behaviour.

use std::sync::Arc;
use std::time::Duration;
use tle_repro::pbz::TleFifo;
use tle_repro::prelude::*;

/// Hundreds of timed-out waits must not clog the condvar ring (cancelled
/// entries are compacted by later enqueues/dequeues).
#[test]
fn condvar_survives_timeout_storm() {
    for mode in [AlgoMode::StmCondvar, AlgoMode::HtmCondvar] {
        let sys = Arc::new(TmSystem::new(mode));
        let th = sys.register();
        let lock = ElidableMutex::new("storm");
        let cv = TxCondvar::new();
        let never = TCell::new(false);
        for _ in 0..600 {
            // Each iteration: one wait that always times out.
            let mut fired = false;
            th.tx(&lock).run(|ctx| {
                if !ctx.read(&never)? && !fired {
                    fired = true;
                    return ctx.wait(&cv, Some(Duration::from_micros(50)));
                }
                Ok(())
            });
        }
        // The ring must still accept and deliver a real wakeup.
        let got = {
            let sys2 = Arc::clone(&sys);
            let flag = Arc::new(TCell::new(false));
            let flag2 = Arc::clone(&flag);
            let lock = Arc::new(ElidableMutex::new("storm2"));
            let lock2 = Arc::clone(&lock);
            let cv = Arc::new(TxCondvar::new());
            let cv2 = Arc::clone(&cv);
            let waiter = std::thread::spawn(move || {
                let th = sys2.register();
                th.tx(&lock2).run(|ctx| {
                    if !ctx.read(&*flag2)? {
                        return ctx.wait(&cv2, None);
                    }
                    Ok(())
                });
                true
            });
            std::thread::sleep(Duration::from_millis(20));
            th.tx(&lock).run(|ctx| {
                ctx.write(&*flag, true)?;
                ctx.signal(&cv)?;
                Ok(())
            });
            waiter.join().unwrap()
        };
        assert!(got, "post-storm wakeup lost under {mode:?}");
    }
}

/// A pending serial request must block *new* concurrent entries (writer
/// preference), or abort storms could starve the serial fallback forever.
#[test]
fn gate_prefers_pending_serial_requests() {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let gate = &sys.gate;
    let c1 = gate.enter_concurrent();
    let sys2 = Arc::clone(&sys);
    let serial_thread = std::thread::spawn(move || {
        let _s = sys2.gate.enter_serial();
        std::time::Instant::now()
    });
    // Give the serial request time to register.
    std::thread::sleep(Duration::from_millis(20));
    // A new concurrent entry must now wait for the serial section.
    let sys3 = Arc::clone(&sys);
    let late_concurrent = std::thread::spawn(move || {
        let t0 = std::time::Instant::now();
        let _c = sys3.gate.enter_concurrent();
        t0.elapsed()
    });
    std::thread::sleep(Duration::from_millis(20));
    drop(c1); // serial can proceed, then the late concurrent
    let _serial_done = serial_thread.join().unwrap();
    let waited = late_concurrent.join().unwrap();
    assert!(
        waited >= Duration::from_millis(15),
        "late concurrent entry jumped the serial queue ({waited:?})"
    );
}

/// Two cells in the same cache line conflict in HTM even though they are
/// distinct locations (false sharing — real TSX behaviour).
#[test]
fn htm_same_line_false_sharing_conflicts() {
    use tle_repro::htm::{HtmConfig, HtmGlobal};
    let g = HtmGlobal::new(HtmConfig {
        event_prob: 0.0,
        ..HtmConfig::default()
    });
    let s1 = g.slots.register_raw().unwrap();
    let s2 = g.slots.register_raw().unwrap();
    // Adjacent cells in one allocation share a 64-byte line.
    let pair = Box::new((TCell::new(0u64), TCell::new(0u64)));
    let same_line =
        tle_repro::base::line_of(pair.0.addr()) == tle_repro::base::line_of(pair.1.addr());
    if !same_line {
        return; // allocator split them; nothing to assert
    }
    let mut t1 = g.begin(s1);
    t1.write(&pair.0, 1u64).unwrap();
    let mut t2 = g.begin(s2);
    // Writing the *other* cell on the same line must conflict.
    let r = t2.write(&pair.1, 2u64);
    let c1 = t1.commit();
    let c2 = match r {
        Ok(()) => t2.commit(),
        Err(e) => {
            t2.abort(e);
            Err(e)
        }
    };
    assert!(
        !(c1.is_ok() && c2.is_ok()),
        "false sharing must serialize same-line writers"
    );
    g.slots.unregister_raw(s1);
    g.slots.unregister_raw(s2);
}

/// Pushing into a full FIFO blocks until a pop frees a slot.
#[test]
fn fifo_capacity_blocks_producer() {
    for mode in [
        AlgoMode::Baseline,
        AlgoMode::StmCondvar,
        AlgoMode::HtmCondvar,
    ] {
        let sys = Arc::new(TmSystem::new(mode));
        let q: Arc<TleFifo<u32>> = Arc::new(TleFifo::new("tiny", 2));
        {
            let th = sys.register();
            q.push(&th, Box::new(1)).unwrap();
            q.push(&th, Box::new(2)).unwrap();
            assert_eq!(q.len_approx(), 2);
        }
        let producer = {
            let sys = Arc::clone(&sys);
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let th = sys.register();
                let t0 = std::time::Instant::now();
                q.push(&th, Box::new(3)).unwrap(); // must block: queue full
                t0.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        {
            let th = sys.register();
            assert_eq!(*q.pop(&th).unwrap(), 1);
        }
        let waited = producer.join().unwrap();
        assert!(
            waited >= Duration::from_millis(15),
            "producer did not block on full queue under {mode:?} ({waited:?})"
        );
        let th = sys.register();
        assert_eq!(*q.pop(&th).unwrap(), 2);
        assert_eq!(*q.pop(&th).unwrap(), 3);
    }
}

/// Deep wait/signal chains across many condvars (one per stage) — a
/// pipeline-of-pipelines shape that stresses waiter bookkeeping.
#[test]
fn chained_condvar_stages() {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvarNoQuiesce));
    const STAGES: usize = 6;
    let locks: Arc<Vec<ElidableMutex>> =
        Arc::new((0..STAGES).map(|_| ElidableMutex::new("stage")).collect());
    let cvs: Arc<Vec<TxCondvar>> = Arc::new((0..STAGES).map(|_| TxCondvar::new()).collect());
    let tokens: Arc<Vec<TCell<u64>>> = Arc::new((0..STAGES).map(|_| TCell::new(0)).collect());
    const ROUNDS: u64 = 200;

    let stages: Vec<_> = (0..STAGES)
        .map(|s| {
            let sys = Arc::clone(&sys);
            let locks = Arc::clone(&locks);
            let cvs = Arc::clone(&cvs);
            let tokens = Arc::clone(&tokens);
            std::thread::spawn(move || {
                let th = sys.register();
                for round in 1..=ROUNDS {
                    // Wait for our stage's token to reach `round`.
                    th.tx(&locks[s]).run(|ctx| {
                        if ctx.read(&tokens[s])? < round {
                            ctx.no_quiesce();
                            return ctx.wait(&cvs[s], None);
                        }
                        Ok(())
                    });
                    // Pass the token downstream.
                    if s + 1 < STAGES {
                        th.tx(&locks[s + 1]).run(|ctx| {
                            ctx.update(&tokens[s + 1], |v| v + 1)?;
                            ctx.broadcast(&cvs[s + 1])?;
                            Ok(())
                        });
                    }
                }
            })
        })
        .collect();
    // Drive stage 0.
    {
        let th = sys.register();
        for _ in 0..ROUNDS {
            th.tx(&locks[0]).run(|ctx| {
                ctx.update(&tokens[0], |v| v + 1)?;
                ctx.broadcast(&cvs[0])?;
                Ok(())
            });
        }
    }
    for s in stages {
        s.join().unwrap();
    }
    for (i, t) in tokens.iter().enumerate() {
        assert_eq!(t.load_direct(), ROUNDS, "stage {i} token miscount");
    }
}
