//! Heavier concurrency stress: many threads, mixed structures, all five
//! algorithms. These tests look for lost updates, deadlocks, lost wakeups
//! and leaked transactions under sustained contention.

use std::sync::Arc;
use tle_repro::pbz::TleFifo;
use tle_repro::prelude::*;
use tle_repro::txset::{TxHashSet, TxSet};

/// Multi-queue pipeline: items hop across two queues; totals must balance.
#[test]
fn two_stage_queue_relay_all_modes() {
    for mode in ALL_MODES {
        let sys = Arc::new(TmSystem::new(mode));
        let q1: Arc<TleFifo<u64>> = Arc::new(TleFifo::new("stage1", 8));
        let q2: Arc<TleFifo<u64>> = Arc::new(TleFifo::new("stage2", 8));
        const N: u64 = 3_000;

        let producer = {
            let sys = Arc::clone(&sys);
            let q1 = Arc::clone(&q1);
            std::thread::spawn(move || {
                let th = sys.register();
                for i in 0..N {
                    q1.push(&th, Box::new(i)).unwrap();
                }
                q1.close(&th);
            })
        };
        let relays: Vec<_> = (0..2)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let q1 = Arc::clone(&q1);
                let q2 = Arc::clone(&q2);
                std::thread::spawn(move || {
                    let th = sys.register();
                    while let Some(v) = q1.pop(&th) {
                        q2.push(&th, Box::new(*v * 2)).unwrap();
                    }
                })
            })
            .collect();
        let sink = {
            let sys = Arc::clone(&sys);
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || {
                let th = sys.register();
                let mut sum = 0u64;
                let mut count = 0u64;
                while let Some(v) = q2.pop(&th) {
                    sum += *v;
                    count += 1;
                }
                (sum, count)
            })
        };
        producer.join().unwrap();
        for r in relays {
            r.join().unwrap();
        }
        {
            let th = sys.register();
            q2.close(&th);
        }
        let (sum, count) = sink.join().unwrap();
        assert_eq!(count, N, "items lost in relay under {mode:?}");
        assert_eq!(sum, N * (N - 1), "values corrupted under {mode:?}");
    }
}

/// Mixed structure stress: sets and counters share the TM domain.
#[test]
fn mixed_workload_all_modes() {
    for mode in ALL_MODES {
        let sys = Arc::new(TmSystem::new(mode));
        let set: Arc<TxHashSet> = Arc::new(TxHashSet::new());
        let counter_lock = Arc::new(ElidableMutex::new("counter"));
        let successes = Arc::new(TCell::new(0u64));
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let sys = Arc::clone(&sys);
                let set = Arc::clone(&set);
                let counter_lock = Arc::clone(&counter_lock);
                let successes = Arc::clone(&successes);
                std::thread::spawn(move || {
                    let th = sys.register();
                    let mut rng = tle_repro::base::rng::XorShift64::new(t);
                    let mut local = 0u64;
                    for _ in 0..2_000 {
                        let k = rng.below(256);
                        let changed = if rng.below(2) == 0 {
                            set.insert(&th, k)
                        } else {
                            set.remove(&th, k)
                        };
                        if changed {
                            local += 1;
                            th.tx(&counter_lock).run(|ctx| {
                                ctx.update(&*successes, |v| v + 1)?;
                                ctx.no_quiesce();
                                Ok(())
                            });
                        }
                    }
                    local
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(
            successes.load_direct(),
            total,
            "counter diverged from local tallies under {mode:?}"
        );
    }
}

/// Condvar ping-pong: strict alternation between two threads, checking no
/// lost wakeups over many rounds.
#[test]
fn condvar_ping_pong_all_modes() {
    for mode in ALL_MODES {
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("pp"));
        let cv = Arc::new(TxCondvar::new());
        let turn = Arc::new(TCell::new(0u64)); // even: ping, odd: pong
        const ROUNDS: u64 = 500;

        let mk = |who: u64| {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let turn = Arc::clone(&turn);
            std::thread::spawn(move || {
                let th = sys.register();
                for _ in 0..ROUNDS {
                    th.tx(&lock).run(|ctx| {
                        let t = ctx.read(&*turn)?;
                        if t % 2 != who {
                            return ctx.wait(&cv, None);
                        }
                        ctx.write(&*turn, t + 1)?;
                        ctx.broadcast(&cv)?;
                        Ok(())
                    });
                }
            })
        };
        let ping = mk(0);
        let pong = mk(1);
        ping.join().unwrap();
        pong.join().unwrap();
        assert_eq!(turn.load_direct(), 2 * ROUNDS, "rounds lost under {mode:?}");
    }
}

/// Rapid register/unregister churn while others work: slot recycling must
/// not corrupt quiescence or conflict detection.
#[test]
fn thread_churn_during_activity() {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = Arc::new(ElidableMutex::new("churn"));
    let cell = Arc::new(TCell::new(0u64));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let steady: Vec<_> = (0..2)
        .map(|_| {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let th = sys.register();
                let mut n = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    th.tx(&lock).run(|ctx| {
                        ctx.update(&*cell, |v| v + 1)?;
                        Ok(())
                    });
                    n += 1;
                }
                n
            })
        })
        .collect();

    let mut churned = 0u64;
    for _ in 0..50 {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let th = sys.register();
                    for _ in 0..20 {
                        th.tx(&lock).run(|ctx| {
                            ctx.update(&*cell, |v| v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        churned += 4 * 20;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let steady_total: u64 = steady.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(cell.load_direct(), steady_total + churned);
}
