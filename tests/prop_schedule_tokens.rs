//! Property tests for replayable schedule tokens (`d:…` rank lists and
//! `r:…` seeds — see `tle_check::Cursor`). The contract the explorer's
//! failure reports depend on: any token a run prints can be re-parsed and
//! replayed to the *same* interleaving, and anything that is not a token
//! is rejected rather than misread as one.

use proptest::prelude::*;
use std::time::Duration;
use tle_check::{run_schedule, Cursor};
use tle_repro::base::history::{self, HistEvent};
use tle_repro::base::sched::{self, YieldPoint};
use tle_repro::base::trace::TxMode;

const STALL: Duration = Duration::from_secs(2);

/// Schedule fingerprint: the recorded history with thread ids and cell
/// addresses renamed to first-appearance order. The recorder hands out
/// fresh dense ids per OS thread and scenarios allocate fresh cells per
/// run, so the raw fields differ between two runs of the *same* schedule;
/// the renamed sequence is equal iff the interleavings are.
fn fingerprint(events: &[HistEvent]) -> Vec<(usize, &'static str, usize, u64)> {
    let mut threads: Vec<u32> = Vec::new();
    let mut addrs: Vec<usize> = Vec::new();
    let dense = |v: u32, pool: &mut Vec<u32>| -> usize {
        match pool.iter().position(|&x| x == v) {
            Some(i) => i,
            None => {
                pool.push(v);
                pool.len() - 1
            }
        }
    };
    events
        .iter()
        .map(|e| {
            let t = dense(e.thread, &mut threads);
            let a = if e.addr == 0 {
                0
            } else {
                match addrs.iter().position(|&x| x == e.addr) {
                    Some(i) => i + 1,
                    None => {
                        addrs.push(e.addr);
                        addrs.len()
                    }
                }
            };
            (t, kind_name(e), a, e.val)
        })
        .collect()
}

fn kind_name(e: &HistEvent) -> &'static str {
    use tle_repro::base::history::HistKind::*;
    match e.kind {
        Begin => "begin",
        Read => "read",
        Write => "write",
        Commit => "commit",
        Abort => "abort",
    }
}

/// A small scenario whose recorded history is schedule-sensitive: two
/// threads, each running `nops` one-write sections with yield points
/// between every recorded event, writing values that identify the writer.
fn recording_threads(nops: usize) -> Vec<Box<dyn FnOnce() + Send>> {
    (0..2u64)
        .map(|t| {
            let body: Box<dyn FnOnce() + Send> = Box::new(move || {
                for k in 0..nops as u64 {
                    history::begin(TxMode::Htm);
                    sched::yield_point(YieldPoint::MemStore);
                    // Distinct fake addresses per (thread, op); never
                    // dereferenced — only the recorder sees them.
                    history::write(16 * (t * 8 + k + 1) as usize, 100 * t + k);
                    sched::yield_point(YieldPoint::MemStore);
                    history::commit();
                    sched::yield_point(YieldPoint::TxState);
                }
            });
            body
        })
        .collect()
}

/// Run one schedule and return (post-run cursor, fingerprint).
fn run_fp(cursor: Cursor, nops: usize) -> (Cursor, Vec<(usize, &'static str, usize, u64)>) {
    let rec = history::record();
    let result = run_schedule(cursor, recording_threads(nops), STALL);
    let events = rec.finish();
    assert!(
        result.failure.is_none(),
        "recording scenario cannot fail: {:?}",
        result.failure
    );
    (result.cursor, fingerprint(&events))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `d:` tokens: print → parse → print is the identity for any rank list
    /// (including the empty one, "d:").
    #[test]
    fn dfs_token_print_parse_print_is_identity(
        ranks in prop::collection::vec(0u16..6, 0..40),
    ) {
        let token = format!(
            "d:{}",
            ranks.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(".")
        );
        let parsed = Cursor::parse(&token).unwrap_or_else(|e| panic!("{e}"));
        prop_assert_eq!(parsed.token(), token);
    }

    /// `r:` tokens round-trip for every seed.
    #[test]
    fn random_token_print_parse_print_is_identity(seed in any::<u64>()) {
        let token = format!("r:{seed}");
        let parsed = Cursor::parse(&token).unwrap_or_else(|e| panic!("{e}"));
        prop_assert_eq!(parsed.token(), token);
    }

    /// A parsed token makes the documented decisions: `min(rank, arity-1)`
    /// while ranks remain, rank 0 past the end — and two parses of the same
    /// token agree decision-for-decision.
    #[test]
    fn parsed_cursor_replays_documented_decisions(
        ranks in prop::collection::vec(0u16..8, 0..32),
        arities in prop::collection::vec(2usize..5, 40..41),
    ) {
        let token = format!(
            "d:{}",
            ranks.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(".")
        );
        let mut a = Cursor::parse(&token).unwrap_or_else(|e| panic!("{e}"));
        let mut b = Cursor::parse(&token).unwrap_or_else(|e| panic!("{e}"));
        for (i, &arity) in arities.iter().enumerate() {
            let da = a.choose(arity);
            let db = b.choose(arity);
            prop_assert_eq!(da, db);
            let spec = ranks.get(i).map(|&r| (r as usize).min(arity - 1)).unwrap_or(0);
            prop_assert_eq!(da, spec);
        }
    }

    /// Every token the DFS explorer prints replays to the exact recorded
    /// interleaving it came from.
    #[test]
    fn explored_dfs_tokens_replay_to_identical_fingerprint(nops in 1usize..4) {
        let mut cursor = Cursor::dfs(2);
        let mut explored = 0;
        loop {
            let (after, fp) = run_fp(cursor, nops);
            let token = after.token();
            let replay = Cursor::parse(&token).unwrap_or_else(|e| panic!("{e}"));
            let (_, fp2) = run_fp(replay, nops);
            prop_assert_eq!(&fp2, &fp, "token {} diverged on replay", token);
            cursor = after;
            explored += 1;
            if explored >= 24 || !cursor.advance() {
                break;
            }
            cursor.rewind(2);
        }
        prop_assert!(explored > 1, "DFS tree degenerated to one schedule");
    }

    /// Seeded-random schedules replay from their `r:` token alone.
    #[test]
    fn random_schedule_tokens_replay_to_identical_fingerprint(seed in any::<u64>()) {
        let cursor = Cursor::random(seed);
        let token = cursor.token();
        let (_, fp) = run_fp(cursor, 2);
        let replay = Cursor::parse(&token).unwrap_or_else(|e| panic!("{e}"));
        let (_, fp2) = run_fp(replay, 2);
        prop_assert_eq!(fp2, fp, "token {} diverged on replay", token);
    }

    /// Anything outside the token grammar is rejected with an error — never
    /// silently misparsed into some schedule.
    #[test]
    fn malformed_tokens_are_rejected(
        bad in prop_oneof![
            (0u64..1000).prop_map(|n| format!("d:{n}x")),      // junk in a rank
            (0u64..1000).prop_map(|n| format!("d:{n}.")),      // trailing separator
            (0u64..1000).prop_map(|n| format!("d:.{n}")),      // leading separator
            (0u64..1000).prop_map(|n| format!("d:{n}..{n}")),  // empty rank
            (0u64..1000).prop_map(|n| format!("q:{n}")),       // unknown prefix
            (0u64..1000).prop_map(|n| n.to_string()),          // no prefix at all
            (65_536u64..1_000_000).prop_map(|n| format!("d:{n}")), // rank > u16::MAX
            (0u64..1000).prop_map(|n| format!("r:{n}z")),      // junk in a seed
            (0u64..1).prop_map(|_| String::from("r:")),        // empty seed
            (0u64..1).prop_map(|_| String::new()),             // empty token
        ],
    ) {
        prop_assert!(
            Cursor::parse(&bad).is_err(),
            "malformed token {:?} was accepted",
            bad
        );
    }
}
