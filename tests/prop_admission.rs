//! Property tests for the admission controller's degradation ladder: the
//! pure [`admission_decide`] function that turns a stat-window snapshot
//! plus a queue-depth signal into an elide → serialize → shed step. Like
//! `prop_adaptive`, the function is deliberately thread-free, so a property
//! test can pin its documented invariants completely: the hysteresis dwell
//! floor, the rate sample floor (and the queue signal's exemption from it),
//! the shed enter/exit thresholds, the no-flap band between them, and the
//! one-step-at-a-time transition discipline.

use proptest::prelude::*;
use tle_repro::base::window::WindowSnapshot;
use tle_repro::core::admission_decide;
use tle_repro::prelude::{AdmissionConfig, AdmissionStep};

/// An arbitrary-but-legal config: the recover depth sits strictly below the
/// shed depth (the documented hysteresis band) and rates are fractions.
fn cfg_strategy() -> impl Strategy<Value = AdmissionConfig> {
    (
        (0u32..8, 0u64..128, 2u64..64, 0u64..64),
        (0u32..101, 0u32..101, 0u32..16),
    )
        .prop_map(
            |((dwell, samples, shed, recover_raw), (abort_pct, fallback_pct, probe))| {
                AdmissionConfig {
                    min_dwell_steps: dwell,
                    min_window_samples: samples,
                    serialize_abort_rate: f64::from(abort_pct) / 100.0,
                    serialize_fallback_rate: f64::from(fallback_pct) / 100.0,
                    shed_queue_depth: shed,
                    recover_queue_depth: recover_raw % shed,
                    recover_probe_steps: probe,
                }
            },
        )
}

fn window_strategy() -> impl Strategy<Value = WindowSnapshot> {
    (
        (0u64..10_000, 0u64..10_000),
        (0u64..10_000, 0u64..10_000, 0u64..10_000),
    )
        .prop_map(
            |((commits, serial), (conflict, capacity, other))| WindowSnapshot {
                commits,
                conflict_aborts: conflict,
                capacity_aborts: capacity,
                other_aborts: other,
                serial,
                quiesce_ns: 0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hysteresis floor: below `min_dwell_steps`, no evidence — however
    /// alarming the window or deep the queue — moves the ladder anywhere.
    #[test]
    fn no_decision_below_dwell(
        cfg in cfg_strategy(),
        window in window_strategy(),
        step_i in 0usize..AdmissionStep::ALL.len(),
        queue in 0u64..1_000,
    ) {
        let step = AdmissionStep::ALL[step_i];
        for dwelled in 0..cfg.min_dwell_steps {
            prop_assert_eq!(admission_decide(step, &window, queue, dwelled, &cfg), None);
        }
    }

    /// Transition discipline: whatever the inputs, a decision moves exactly
    /// one ladder step — never a stand-still `Some`, never a two-step jump
    /// (elide ↔ shed directly is unreachable by construction).
    #[test]
    fn transitions_are_one_step(
        cfg in cfg_strategy(),
        window in window_strategy(),
        step_i in 0usize..AdmissionStep::ALL.len(),
        (queue, dwelled) in (0u64..1_000, 0u32..64),
    ) {
        let step = AdmissionStep::ALL[step_i];
        if let Some(next) = admission_decide(step, &window, queue, dwelled, &cfg) {
            prop_assert_ne!(next, step, "decision re-selected the current step");
            let diff = (next as i8 - step as i8).abs();
            prop_assert_eq!(diff, 1, "two-step jump {:?} -> {:?}", step, next);
        }
    }

    /// The queue signal is exempt from the sample floor: a queue peak at or
    /// past `shed_queue_depth` degrades an eliding lock even on an *empty*
    /// window — overload that serializes on lock waits never aborts, so
    /// waiting for abort samples would mean never reacting (and a
    /// serialized lock keeps degrading to shed on the same signal).
    #[test]
    fn deep_queue_degrades_without_samples(
        cfg in cfg_strategy(),
        extra_dwell in 0u32..64,
        excess in 0u64..100,
    ) {
        let dwelled = cfg.min_dwell_steps + extra_dwell;
        let empty = WindowSnapshot::default();
        let queue = cfg.shed_queue_depth + excess;
        prop_assert_eq!(
            admission_decide(AdmissionStep::Elide, &empty, queue, dwelled, &cfg),
            Some(AdmissionStep::Serialize)
        );
        prop_assert_eq!(
            admission_decide(AdmissionStep::Serialize, &empty, queue, dwelled, &cfg),
            Some(AdmissionStep::Shed)
        );
    }

    /// Rate sample floor: with the queue shallow, an eliding lock never
    /// serializes on a window with fewer than `min_window_samples`
    /// attempts — thin evidence is not evidence (the floor is pinned just
    /// above whatever the window holds).
    #[test]
    fn no_rate_decision_without_samples(
        cfg in cfg_strategy(),
        window in window_strategy(),
        (dwelled, slack) in (0u32..64, 1u64..100),
    ) {
        let cfg = AdmissionConfig {
            min_window_samples: window.attempts() + slack,
            ..cfg
        };
        let queue = cfg.shed_queue_depth - 1;
        prop_assert_eq!(
            admission_decide(AdmissionStep::Elide, &window, queue, dwelled, &cfg),
            None
        );
    }

    /// Shed exit threshold: a shed lock recovers exactly when the queue
    /// drains to `recover_queue_depth` — one step, back to Serialize, never
    /// straight to Elide — and holds otherwise.
    #[test]
    fn shed_recovers_on_drain_only(
        cfg in cfg_strategy(),
        window in window_strategy(),
        (queue, extra_dwell) in (0u64..1_000, 0u32..64),
    ) {
        let dwelled = cfg.min_dwell_steps + extra_dwell;
        let d = admission_decide(AdmissionStep::Shed, &window, queue, dwelled, &cfg);
        if queue <= cfg.recover_queue_depth {
            prop_assert_eq!(d, Some(AdmissionStep::Serialize));
        } else {
            prop_assert_eq!(d, None);
        }
    }

    /// Recovery probe timer: a serialized lock with a drained queue still
    /// dwells `recover_probe_steps` before re-probing elision, so a brief
    /// lull inside a storm does not bounce the ladder.
    #[test]
    fn serialize_probes_elide_on_timer(
        cfg in cfg_strategy(),
        window in window_strategy(),
        extra_dwell in 0u32..64,
    ) {
        let dwelled = cfg.min_dwell_steps + extra_dwell;
        let d = admission_decide(
            AdmissionStep::Serialize, &window, cfg.recover_queue_depth, dwelled, &cfg,
        );
        if dwelled >= cfg.recover_probe_steps {
            prop_assert_eq!(d, Some(AdmissionStep::Elide));
        } else {
            prop_assert_eq!(d, None);
        }
    }

    /// No-flap hysteresis: with the queue held anywhere in the open band
    /// between the recover and shed thresholds, a degraded ladder never
    /// moves again — not on any dwell, not on any window. Simulated as a
    /// trajectory (dwell accumulating step by step) to mirror how the real
    /// controller drives the function.
    #[test]
    fn queue_in_band_never_flaps(
        cfg in cfg_strategy(),
        window in window_strategy(),
        (start_i, gap, offset) in (1usize..AdmissionStep::ALL.len(), 0u64..32, 0u64..32),
        steps in 1u32..64,
    ) {
        // Force a non-empty open band, then pick a queue strictly inside it.
        let cfg = AdmissionConfig {
            shed_queue_depth: cfg.recover_queue_depth + 2 + gap,
            ..cfg
        };
        let band = cfg.shed_queue_depth - cfg.recover_queue_depth - 1;
        let queue = cfg.recover_queue_depth + 1 + offset % band;
        let start = AdmissionStep::ALL[start_i];
        let mut step = start;
        for dwelled in 1..=steps {
            if let Some(next) = admission_decide(step, &window, queue, dwelled, &cfg) {
                step = next;
            }
        }
        prop_assert_eq!(step, start, "in-band queue moved the ladder");
    }
}
