//! Property-based tests for the transactional sets: arbitrary operation
//! sequences must agree with a `BTreeSet` oracle, under a transactional
//! algorithm (so the TM machinery is in the loop, not just the data
//! structure logic).

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use tle_repro::prelude::*;
use tle_repro::txset::{TxHashSet, TxListSet, TxSet, TxTreeSet};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn op_strategy(space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..space).prop_map(Op::Insert),
        (0..space).prop_map(Op::Remove),
        (0..space).prop_map(Op::Contains),
    ]
}

fn check_against_oracle(set: &dyn TxSet, ops: &[Op], mode: AlgoMode) {
    let sys = Arc::new(TmSystem::new(mode));
    let th = sys.register();
    let mut oracle = BTreeSet::new();
    for op in ops {
        match *op {
            Op::Insert(k) => assert_eq!(set.insert(&th, k), oracle.insert(k), "insert({k})"),
            Op::Remove(k) => assert_eq!(set.remove(&th, k), oracle.remove(&k), "remove({k})"),
            Op::Contains(k) => {
                assert_eq!(set.contains(&th, k), oracle.contains(&k), "contains({k})")
            }
        }
    }
    assert_eq!(set.len_direct(), oracle.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn list_matches_oracle(ops in proptest::collection::vec(op_strategy(64), 0..400)) {
        check_against_oracle(&TxListSet::new(), &ops, AlgoMode::StmCondvar);
    }

    #[test]
    fn hash_matches_oracle(ops in proptest::collection::vec(op_strategy(256), 0..400)) {
        check_against_oracle(&TxHashSet::new(), &ops, AlgoMode::StmCondvarNoQuiesce);
    }

    #[test]
    fn tree_matches_oracle(ops in proptest::collection::vec(op_strategy(256), 0..400)) {
        check_against_oracle(&TxTreeSet::new(), &ops, AlgoMode::HtmCondvar);
    }

    #[test]
    fn tree_delete_heavy(keys in proptest::collection::vec(0u64..256, 1..120)) {
        // Insert everything, then delete in the given (arbitrary) order;
        // stresses all three BST delete cases.
        let set = TxTreeSet::new();
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let mut oracle = BTreeSet::new();
        for &k in &keys {
            assert_eq!(set.insert(&th, k), oracle.insert(k));
        }
        for &k in keys.iter().rev() {
            assert_eq!(set.remove(&th, k), oracle.remove(&k));
            assert_eq!(set.len_direct(), oracle.len());
        }
        prop_assert_eq!(set.len_direct(), 0);
    }
}
