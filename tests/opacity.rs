//! Opacity stress: no transaction — not even one doomed to abort — may
//! observe an inconsistent snapshot. The C++ TMTS demands this
//! ("transactional sequential consistency", paper §IV), and zombie
//! executions are precisely what quiescence + validation protect against.
//!
//! The invariant: all cells of an array are always equal (writers increment
//! every cell in one transaction). Every transactional closure asserts
//! equality over its *own reads*; a TM that lets a doomed transaction see a
//! half-applied update fails the assertion inside the closure.

use std::sync::Arc;
use tle_repro::prelude::*;
use tle_repro::stm::StmAlgo;

const CELLS: usize = 8;
const WRITERS: usize = 3;
const READERS: usize = 3;
// Full stress weight only where the kernels are compiled for speed
// (release / CI); debug builds exist to iterate, and the deterministic
// sibling `tests/opacity_check.rs` carries the interleaving coverage there.
const OPS: u64 = if cfg!(debug_assertions) { 400 } else { 4_000 };
const ORDER_OPS: u64 = if cfg!(debug_assertions) { 300 } else { 2_000 };

fn run_opacity(mode: AlgoMode, algo: StmAlgo) {
    let sys = Arc::new(TmSystem::new(mode));
    sys.set_stm_algo(algo);
    let lock = Arc::new(ElidableMutex::new("opacity"));
    let cells: Arc<Vec<TCell<u64>>> = Arc::new((0..CELLS).map(|_| TCell::new(0)).collect());

    let mut handles = Vec::new();
    for _ in 0..WRITERS {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cells = Arc::clone(&cells);
        handles.push(std::thread::spawn(move || {
            let th = sys.register();
            for _ in 0..OPS {
                th.tx(&lock).run(|ctx| {
                    let first = ctx.read(&cells[0])?;
                    for c in cells.iter().skip(1) {
                        let v = ctx.read(c)?;
                        assert_eq!(
                            v, first,
                            "writer observed a torn snapshot under {mode:?}/{algo:?}"
                        );
                    }
                    for c in cells.iter() {
                        ctx.write(c, first + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }
    for _ in 0..READERS {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cells = Arc::clone(&cells);
        handles.push(std::thread::spawn(move || {
            let th = sys.register();
            for _ in 0..OPS {
                let (lo, hi) = th.tx(&lock).run(|ctx| {
                    let mut lo = u64::MAX;
                    let mut hi = 0;
                    for c in cells.iter() {
                        let v = ctx.read(c)?;
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    Ok((lo, hi))
                });
                assert_eq!(
                    lo, hi,
                    "reader observed a torn snapshot under {mode:?}/{algo:?}"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let expect = WRITERS as u64 * OPS;
    for c in cells.iter() {
        assert_eq!(
            c.load_direct(),
            expect,
            "lost increments under {mode:?}/{algo:?}"
        );
    }
}

#[test]
fn opacity_baseline() {
    run_opacity(AlgoMode::Baseline, StmAlgo::MlWt);
}

#[test]
fn opacity_stm_mlwt() {
    run_opacity(AlgoMode::StmCondvar, StmAlgo::MlWt);
}

#[test]
fn opacity_stm_mlwt_noquiesce() {
    run_opacity(AlgoMode::StmCondvarNoQuiesce, StmAlgo::MlWt);
}

#[test]
fn opacity_stm_norec() {
    run_opacity(AlgoMode::StmCondvar, StmAlgo::Norec);
}

#[test]
fn opacity_htm() {
    run_opacity(AlgoMode::HtmCondvar, StmAlgo::MlWt);
}

#[test]
fn opacity_adaptive_htm() {
    run_opacity(AlgoMode::AdaptiveHtm, StmAlgo::MlWt);
}

/// Commit-order consistency: transactions tag themselves with a sequence
/// number drawn transactionally; replaying their writes in tag order must
/// reproduce the final memory state (serializability witness).
#[test]
fn commit_order_replay_matches_final_state() {
    for algo in [StmAlgo::MlWt, StmAlgo::Norec] {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        sys.set_stm_algo(algo);
        let lock = Arc::new(ElidableMutex::new("serial-witness"));
        let seq = Arc::new(TCell::new(0u64));
        let slots: Arc<Vec<TCell<u64>>> = Arc::new((0..4).map(|_| TCell::new(0)).collect());

        let handles: Vec<_> = (0..4)
            .map(|t| {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let seq = Arc::clone(&seq);
                let slots = Arc::clone(&slots);
                std::thread::spawn(move || {
                    let th = sys.register();
                    let mut rng = tle_repro::base::rng::XorShift64::new(t as u64);
                    let mut log = Vec::new();
                    for _ in 0..ORDER_OPS {
                        let target = rng.below(4) as usize;
                        let (tag, value) = th.tx(&lock).run(|ctx| {
                            let tag = ctx.update(&*seq, |v| v + 1)?;
                            let value = tag * 31 + target as u64;
                            ctx.write(&slots[target], value)?;
                            Ok((tag, value))
                        });
                        log.push((tag, target, value));
                    }
                    log
                })
            })
            .collect();
        let mut log: Vec<(u64, usize, u64)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Tags must be unique and dense (each transaction got its own).
        log.sort_unstable();
        for (i, &(tag, _, _)) in log.iter().enumerate() {
            assert_eq!(tag, i as u64 + 1, "sequence tags not dense under {algo:?}");
        }
        // Replay in commit (tag) order.
        let mut replay = [0u64; 4];
        for &(_, target, value) in &log {
            replay[target] = value;
        }
        for (i, c) in slots.iter().enumerate() {
            assert_eq!(
                c.load_direct(),
                replay[i],
                "slot {i} diverges from commit-order replay under {algo:?}"
            );
        }
    }
}
