//! Property tests for the adaptation signal path: the
//! [`StatWindow`] ring that summarises recent section outcomes, and the
//! pure [`decide`] function that turns a window snapshot into a mode
//! switch. Both are deliberately thread-free (the window races benignly,
//! the decision is a pure function), so they are exactly the pieces a
//! property test can pin down completely: the window against a reference
//! model, the decision against its documented invariants (sample floor,
//! hysteresis dwell, capacity latch, legal targets).

use proptest::prelude::*;
use tle_repro::base::window::{AbortClass, StatWindow, WindowSnapshot, WINDOW_BUCKETS};
use tle_repro::base::AbortCause;
use tle_repro::core::decide;
use tle_repro::prelude::{AdaptiveConfig, AlgoMode, SwitchReason};

/// Everything a `StatWindow` can be asked to do, as data.
#[derive(Debug, Clone, Copy)]
enum Op {
    Commit(u64),
    Abort(AbortCause),
    Serial,
    Roll,
    Reset,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..500).prop_map(Op::Commit),
        (0usize..AbortCause::ALL.len()).prop_map(|i| Op::Abort(AbortCause::ALL[i])),
        (0u8..1).prop_map(|_| Op::Serial),
        (0u8..1).prop_map(|_| Op::Roll),
        (0u8..1).prop_map(|_| Op::Reset),
    ]
}

/// Reference model: the ring as plain arrays, mutated single-threadedly.
/// Field order matches `WindowSnapshot`:
/// commits / conflict / capacity / other / serial / quiesce_ns.
fn model_snapshot(ops: &[Op]) -> WindowSnapshot {
    let mut buckets = vec![[0u64; 6]; WINDOW_BUCKETS];
    let mut cur = 0usize;
    for &op in ops {
        match op {
            Op::Commit(q) => {
                buckets[cur][0] += 1;
                buckets[cur][5] += q;
            }
            Op::Abort(cause) => {
                let i = match AbortClass::of(cause) {
                    AbortClass::Conflict => 1,
                    AbortClass::Capacity => 2,
                    AbortClass::Other => 3,
                };
                buckets[cur][i] += 1;
            }
            Op::Serial => buckets[cur][4] += 1,
            Op::Roll => {
                cur = (cur + 1) % WINDOW_BUCKETS;
                buckets[cur] = [0; 6];
            }
            Op::Reset => {
                for b in buckets.iter_mut() {
                    *b = [0; 6];
                }
            }
        }
    }
    let mut s = WindowSnapshot::default();
    for b in &buckets {
        s.commits += b[0];
        s.conflict_aborts += b[1];
        s.capacity_aborts += b[2];
        s.other_aborts += b[3];
        s.serial += b[4];
        s.quiesce_ns += b[5];
    }
    s
}

/// The transactional modes whose decisions read the window.
const SAMPLED_MODES: [AlgoMode; 3] = [
    AlgoMode::StmSpin,
    AlgoMode::StmCondvar,
    AlgoMode::HtmCondvar,
];

/// Every mode, for invariants that must hold regardless.
const EVERY_MODE: [AlgoMode; 6] = [
    AlgoMode::Baseline,
    AlgoMode::StmSpin,
    AlgoMode::StmCondvar,
    AlgoMode::StmCondvarNoQuiesce,
    AlgoMode::HtmCondvar,
    AlgoMode::AdaptiveHtm,
];

const EVERY_REASON: [Option<SwitchReason>; 5] = [
    None,
    Some(SwitchReason::Capacity),
    Some(SwitchReason::ConflictStorm),
    Some(SwitchReason::Promotion),
    Some(SwitchReason::Probe),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The live ring (relaxed atomics and all) agrees with the sequential
    /// reference model on every operation sequence.
    #[test]
    fn window_matches_reference_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let w = StatWindow::new();
        for &op in &ops {
            match op {
                Op::Commit(q) => w.record_commit(q),
                Op::Abort(cause) => w.record_abort(cause),
                Op::Serial => w.record_serial(),
                Op::Roll => w.roll(),
                Op::Reset => w.reset(),
            }
        }
        prop_assert_eq!(w.snapshot(), model_snapshot(&ops));
    }

    /// A full ring of rolls forgets everything, no matter what was recorded
    /// (and no matter where the cursor was left): the window is genuinely
    /// sliding, with no bucket that survives eviction.
    #[test]
    fn full_ring_of_rolls_forgets_everything(ops in prop::collection::vec(op_strategy(), 0..100)) {
        let w = StatWindow::new();
        for &op in &ops {
            match op {
                Op::Commit(q) => w.record_commit(q),
                Op::Abort(cause) => w.record_abort(cause),
                Op::Serial => w.record_serial(),
                Op::Roll => w.roll(),
                Op::Reset => w.reset(),
            }
        }
        for _ in 0..WINDOW_BUCKETS {
            w.roll();
        }
        prop_assert_eq!(w.snapshot(), WindowSnapshot::default());
    }

    /// Derived rates are well-formed for any snapshot: fractions stay in
    /// [0, 1], the abort shares partition the aborts, and the attempt
    /// count is the exact sum of outcomes.
    #[test]
    fn snapshot_rates_are_bounded(
        (commits, conflict, capacity, other) in (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000),
        (serial, quiesce) in (0u64..10_000, 0u64..1_000_000),
    ) {
        let s = WindowSnapshot {
            commits,
            conflict_aborts: conflict,
            capacity_aborts: capacity,
            other_aborts: other,
            serial,
            quiesce_ns: quiesce,
        };
        prop_assert_eq!(s.aborts(), conflict + capacity + other);
        prop_assert_eq!(s.attempts(), commits + serial + s.aborts());
        for rate in [
            s.abort_rate(),
            s.commit_rate(),
            s.fallback_rate(),
            s.capacity_share(),
            s.conflict_share(),
        ] {
            prop_assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        }
        if s.aborts() > 0 {
            prop_assert!(s.capacity_share() + s.conflict_share() <= 1.0 + 1e-9);
        }
        prop_assert_eq!(s.avg_quiesce_ns(), quiesce.checked_div(commits).unwrap_or(0));
    }

    /// Hysteresis floor: below `min_dwell_steps`, no window — however
    /// alarming — moves any mode anywhere.
    #[test]
    fn no_decision_below_dwell(
        mode_i in 0usize..EVERY_MODE.len(),
        reason_i in 0usize..EVERY_REASON.len(),
        (commits, conflict, capacity, other) in (0u64..5_000, 0u64..5_000, 0u64..5_000, 0u64..5_000),
        serial in 0u64..5_000,
    ) {
        let cfg = AdaptiveConfig::default();
        let s = WindowSnapshot {
            commits,
            conflict_aborts: conflict,
            capacity_aborts: capacity,
            other_aborts: other,
            serial,
            quiesce_ns: 0,
        };
        for dwell in 0..cfg.min_dwell_steps {
            prop_assert_eq!(
                decide(EVERY_MODE[mode_i], &s, dwell, EVERY_REASON[reason_i], &cfg),
                None
            );
        }
    }

    /// Sample floor: a transactional mode never switches on a window with
    /// fewer than `min_window_samples` attempts — thin evidence is not
    /// evidence (each outcome class is bounded so the total stays below
    /// the default floor of 64).
    #[test]
    fn no_decision_without_samples(
        mode_i in 0usize..SAMPLED_MODES.len(),
        reason_i in 0usize..EVERY_REASON.len(),
        (commits, conflict, capacity, other) in (0u64..12, 0u64..12, 0u64..12, 0u64..12),
        (serial, dwell) in (0u64..12, 4u32..100),
    ) {
        let cfg = AdaptiveConfig::default();
        let s = WindowSnapshot {
            commits,
            conflict_aborts: conflict,
            capacity_aborts: capacity,
            other_aborts: other,
            serial,
            quiesce_ns: 0,
        };
        prop_assert!(s.attempts() < cfg.min_window_samples);
        prop_assert_eq!(
            decide(SAMPLED_MODES[mode_i], &s, dwell, EVERY_REASON[reason_i], &cfg),
            None
        );
    }

    /// Capacity demotions latch: once a lock fled HTM for capacity, STM
    /// never promotes it back, not even on a perfect commit streak — STM
    /// cannot observe capacity aborts, so the streak proves nothing.
    #[test]
    fn capacity_demotion_latches(
        (commits, conflict, capacity, other) in (0u64..50_000, 0u64..5_000, 0u64..5_000, 0u64..5_000),
        (serial, dwell) in (0u64..5_000, 0u32..200),
    ) {
        let cfg = AdaptiveConfig::default();
        let s = WindowSnapshot {
            commits,
            conflict_aborts: conflict,
            capacity_aborts: capacity,
            other_aborts: other,
            serial,
            quiesce_ns: 0,
        };
        for mode in [AlgoMode::StmSpin, AlgoMode::StmCondvar] {
            let d = decide(mode, &s, dwell, Some(SwitchReason::Capacity), &cfg);
            prop_assert!(
                !matches!(d, Some((AlgoMode::HtmCondvar, _))),
                "latched capacity demotion promoted back to HTM: {d:?}"
            );
        }
    }

    /// Whatever the inputs, a switch decision is to a *different* mode and
    /// only ever targets the three dispatchable modes; the hands-off modes
    /// (`StmCondvarNoQuiesce` is an application contract, `AdaptiveHtm`
    /// self-adapts) never move at all.
    #[test]
    fn targets_are_legal(
        mode_i in 0usize..EVERY_MODE.len(),
        reason_i in 0usize..EVERY_REASON.len(),
        (commits, conflict, capacity, other) in (0u64..50_000, 0u64..50_000, 0u64..50_000, 0u64..50_000),
        (serial, dwell) in (0u64..50_000, 0u32..200),
    ) {
        let cfg = AdaptiveConfig::default();
        let mode = EVERY_MODE[mode_i];
        let s = WindowSnapshot {
            commits,
            conflict_aborts: conflict,
            capacity_aborts: capacity,
            other_aborts: other,
            serial,
            quiesce_ns: 0,
        };
        let d = decide(mode, &s, dwell, EVERY_REASON[reason_i], &cfg);
        if matches!(mode, AlgoMode::StmCondvarNoQuiesce | AlgoMode::AdaptiveHtm) {
            prop_assert_eq!(d, None, "hands-off mode switched");
        }
        if let Some((target, _reason)) = d {
            prop_assert_ne!(target, mode, "switch to the same mode");
            prop_assert!(
                matches!(
                    target,
                    AlgoMode::Baseline | AlgoMode::StmCondvar | AlgoMode::HtmCondvar
                ),
                "illegal target {target:?}"
            );
        }
    }

    /// Baseline generates no abort evidence, so its only move is the timed
    /// probe: exactly at `baseline_probe_steps` dwell (given the hysteresis
    /// floor), and always back into HTM elision.
    #[test]
    fn baseline_probes_on_timer_only(
        (commits, conflict, capacity, other) in (0u64..50_000, 0u64..50_000, 0u64..50_000, 0u64..50_000),
        (serial, dwell) in (0u64..50_000, 0u32..200),
    ) {
        let cfg = AdaptiveConfig::default();
        let s = WindowSnapshot {
            commits,
            conflict_aborts: conflict,
            capacity_aborts: capacity,
            other_aborts: other,
            serial,
            quiesce_ns: 0,
        };
        let d = decide(AlgoMode::Baseline, &s, dwell, None, &cfg);
        if dwell >= cfg.min_dwell_steps.max(cfg.baseline_probe_steps) {
            prop_assert_eq!(d, Some((AlgoMode::HtmCondvar, SwitchReason::Probe)));
        } else {
            prop_assert_eq!(d, None);
        }
    }
}
