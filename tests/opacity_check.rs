//! Deterministic sibling of `tests/opacity.rs` (which remains the stress
//! variant): the same all-cells-equal snapshot invariant, but run under the
//! `tle-check` model checker instead of the OS scheduler. Two to three
//! virtual threads, every preemption point enumerated up to the bound, and
//! the recorded history replayed through the offline opacity oracle with a
//! known initial memory image — so a torn snapshot is caught even if the
//! in-closure assert would have missed it.
//!
//! The scenario builder is intentionally a copy of the one in
//! `crates/check/tests/common/mod.rs`: integration tests cannot share
//! modules across crates, and this file exercises the harness exactly as a
//! downstream application test would — through the public `tle_check` API
//! alone.

use std::sync::Arc;
use tle_check::{explore, Config, Scenario};
use tle_repro::base::history::HistKind;
use tle_repro::base::TCell;
use tle_repro::prelude::*;
use tle_repro::stm::StmAlgo;

/// All threads repeatedly assert every cell equal (inside the transaction —
/// a torn read panics the virtual thread) and increment them all. The
/// post-condition pins the final counter; `init` gives the oracle the
/// starting memory image.
fn snapshot_scenario(mode: AlgoMode, algo: StmAlgo, threads: usize, ops: u64) -> Scenario {
    const CELLS: usize = 2;
    let sys = Arc::new(TmSystem::new(mode));
    sys.set_stm_algo(algo);
    let lock = Arc::new(ElidableMutex::new("opacity-check"));
    let cells: Arc<Vec<TCell<u64>>> = Arc::new((0..CELLS).map(|_| TCell::new(0)).collect());
    let init: Vec<(usize, u64)> = cells.iter().map(|c| (c.addr(), 0)).collect();

    let mut tvec: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for _ in 0..threads {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cells = Arc::clone(&cells);
        tvec.push(Box::new(move || {
            let th = sys.register();
            for _ in 0..ops {
                th.tx(&lock).run(|ctx| {
                    let first = ctx.read(&cells[0])?;
                    for c in cells.iter().skip(1) {
                        let v = ctx.read(c)?;
                        assert_eq!(v, first, "torn snapshot under {mode:?}/{algo:?}");
                    }
                    for c in cells.iter() {
                        ctx.write(c, first + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }

    let expect = threads as u64 * ops;
    let post_cells = Arc::clone(&cells);
    Scenario {
        threads: tvec,
        init,
        post: Box::new(move |_| {
            for (i, c) in post_cells.iter().enumerate() {
                let v = c.load_direct();
                if v != expect {
                    return Err(format!(
                        "cell {i} = {v}, expected {expect} under {mode:?}/{algo:?}"
                    ));
                }
            }
            Ok(())
        }),
    }
}

#[test]
fn check_baseline() {
    explore(&Config::dfs(2, 200), || {
        snapshot_scenario(AlgoMode::Baseline, StmAlgo::MlWt, 2, 2)
    })
    .assert_clean();
}

#[test]
fn check_stm_mlwt() {
    explore(&Config::dfs(2, 300), || {
        snapshot_scenario(AlgoMode::StmCondvar, StmAlgo::MlWt, 2, 2)
    })
    .assert_clean();
}

/// `TM_NoQuiesce` (paper §IV): the snapshot workload never privatizes, so
/// skipping the post-commit quiescence drain must stay opaque under every
/// explored interleaving — exactly the claim the stress test can only
/// sample.
#[test]
fn check_stm_mlwt_noquiesce() {
    explore(&Config::dfs(2, 300), || {
        snapshot_scenario(AlgoMode::StmCondvarNoQuiesce, StmAlgo::MlWt, 2, 2)
    })
    .assert_clean();
}

#[test]
fn check_stm_norec() {
    explore(&Config::dfs(2, 300), || {
        snapshot_scenario(AlgoMode::StmCondvar, StmAlgo::Norec, 2, 2)
    })
    .assert_clean();
}

#[test]
fn check_htm() {
    explore(&Config::dfs(2, 300), || {
        snapshot_scenario(AlgoMode::HtmCondvar, StmAlgo::MlWt, 2, 2)
    })
    .assert_clean();
}

#[test]
fn check_adaptive_htm() {
    explore(&Config::dfs(2, 300), || {
        snapshot_scenario(AlgoMode::AdaptiveHtm, StmAlgo::MlWt, 2, 2)
    })
    .assert_clean();
}

/// Three virtual threads, one increment each: the decision tree is wider,
/// so keep the per-thread work minimal and raise the schedule budget.
#[test]
fn check_three_threads_noquiesce() {
    explore(&Config::dfs(2, 500), || {
        snapshot_scenario(AlgoMode::StmCondvarNoQuiesce, StmAlgo::MlWt, 3, 1)
    })
    .assert_clean();
}

/// Seeded random sampling on top of the bounded DFS: different preemption
/// placements, same invariants, still fully reproducible from the seed.
#[test]
fn check_random_sampling() {
    for (mode, algo) in [
        (AlgoMode::StmCondvar, StmAlgo::MlWt),
        (AlgoMode::StmCondvarNoQuiesce, StmAlgo::MlWt),
        (AlgoMode::HtmCondvar, StmAlgo::MlWt),
    ] {
        explore(&Config::random(0x0AC17E5, 40), || {
            snapshot_scenario(mode, algo, 2, 2)
        })
        .assert_clean();
    }
}

/// The recorder is live in this build (the harness depends on it): every
/// explored schedule must deliver a history whose committed-section count
/// matches the workload, proving the events the oracle judged were the
/// real ones and not an empty tape.
#[test]
fn check_history_carries_all_commits() {
    let threads = 2usize;
    let ops = 2u64;
    explore(&Config::dfs(2, 300), || {
        let mut s = snapshot_scenario(AlgoMode::StmCondvar, StmAlgo::MlWt, threads, ops);
        let inner = s.post;
        s.post = Box::new(move |events| {
            inner(events)?;
            let commits = events
                .iter()
                .filter(|e| matches!(e.kind, HistKind::Commit))
                .count() as u64;
            if commits < threads as u64 * ops {
                return Err(format!(
                    "history recorded {commits} commits, expected at least {}",
                    threads as u64 * ops
                ));
            }
            Ok(())
        });
        s
    })
    .assert_clean();
}
