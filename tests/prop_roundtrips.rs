//! Property-based tests for the compression stack: every stage and the
//! whole block codec must roundtrip arbitrary inputs, and word coding must
//! be lossless for every `TxVal` type.

use proptest::prelude::*;
use tle_repro::base::TxVal;
use tle_repro::pbz::{self, bwt, huffman, mtf, rle};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rle1_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let enc = rle::rle1_encode(&data);
        prop_assert_eq!(rle::rle1_decode(&enc).unwrap(), data);
    }

    #[test]
    fn rle1_roundtrip_runny(runs in proptest::collection::vec((any::<u8>(), 0usize..600), 0..20)) {
        let mut data = Vec::new();
        for (b, n) in runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        let enc = rle::rle1_encode(&data);
        prop_assert_eq!(rle::rle1_decode(&enc).unwrap(), data);
    }

    #[test]
    fn bwt_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..1500)) {
        let (b, primary) = bwt::bwt_encode(&data);
        prop_assert_eq!(bwt::bwt_decode(&b, primary), data);
    }

    #[test]
    fn bwt_roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..1500)) {
        let (b, primary) = bwt::bwt_encode(&data);
        prop_assert_eq!(bwt::bwt_decode(&b, primary), data);
    }

    #[test]
    fn mtf_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        prop_assert_eq!(mtf::mtf_decode(&mtf::mtf_encode(&data)), data);
    }

    #[test]
    fn zero_run_symbols_roundtrip(data in proptest::collection::vec(0u8..8, 0..2000)) {
        let syms = huffman::to_symbols(&data);
        prop_assert_eq!(huffman::from_symbols(&syms).unwrap(), data);
    }

    #[test]
    fn block_codec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let c = pbz::compress_block(&data);
        prop_assert_eq!(pbz::decompress_block(&c).unwrap(), data);
    }

    #[test]
    fn block_codec_roundtrip_texty(words in proptest::collection::vec("[a-z ]{1,12}", 0..200)) {
        let data: Vec<u8> = words.concat().into_bytes();
        let c = pbz::compress_block(&data);
        prop_assert_eq!(pbz::decompress_block(&c).unwrap(), data);
    }

    #[test]
    fn serial_stream_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..6000),
                               block in 64usize..2000) {
        let c = pbz::compress_serial(&data, block);
        prop_assert_eq!(pbz::decompress_serial(&c).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Arbitrary bytes: must return an error or valid data, not panic.
        let _ = pbz::decompress_block(&data);
        let _ = pbz::decompress_serial(&data);
    }

    #[test]
    fn txval_u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(u64::from_word(v.to_word()), v);
    }

    #[test]
    fn txval_signed_roundtrip(v in any::<i64>(), w in any::<i32>(), x in any::<i16>()) {
        prop_assert_eq!(i64::from_word(v.to_word()), v);
        prop_assert_eq!(i32::from_word(w.to_word()), w);
        prop_assert_eq!(i16::from_word(x.to_word()), x);
    }

    #[test]
    fn txval_f64_roundtrip(v in any::<f64>()) {
        let back = f64::from_word(v.to_word());
        if v.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back, v);
        }
    }

    #[test]
    fn txval_pair_roundtrip(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(<(u32, u32)>::from_word((a, b).to_word()), (a, b));
    }
}
