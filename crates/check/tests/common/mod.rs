//! Scenario builders shared by the `tle-check` integration suites.
//!
//! Each builder returns a *fresh* [`Scenario`] — new `TmSystem`, new lock,
//! new cells — so the explorer can run it once per schedule. The closures
//! use the same public API as the stress tests (`ThreadHandle::critical`
//! over `TCell`s), which is exactly what makes the harness meaningful: the
//! kernels under deterministic exploration are the production kernels.

// Each integration-test binary includes this module but uses a different
// subset of the builders.
#![allow(dead_code)]

use std::future::Future;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use tle_base::sched::{self, YieldPoint};
use tle_base::TCell;
use tle_check::Scenario;
use tle_core::{AlgoMode, ElidableMutex, TmSystem, TxCondvar};
use tle_stm::StmAlgo;

/// The waker behind [`block_on_manual`]: a woken flag plus a condvar so the
/// polling vthread can park (OS-level) between true suspensions.
struct FlagSignal {
    woken: Mutex<bool>,
    cv: Condvar,
}

impl Wake for FlagSignal {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        let mut woken = self.woken.lock().unwrap_or_else(|e| e.into_inner());
        *woken = true;
        self.cv.notify_one();
    }
}

/// Drive an async critical section to completion *inside a vthread*, with
/// no executor: the scenario thread polls the future itself, so every
/// suspension and every waker delivery happens under the explorer's
/// schedule control.
///
/// Two kinds of `Pending` are distinguished through the flag waker:
///
/// - **hot re-polls** (the waker already fired — `yield_now` backoff,
///   degraded no-executor timer sleeps) rotate the token with
///   `spin_hint(Park)` so co-scheduled vthreads run between polls, and an
///   OS yield bounds the hot-loop rate well under the livelock bound;
/// - **true suspensions** (a parked condvar waiter armed its waker and
///   nobody has signalled yet) leave the runnable set through
///   `block_enter`/`block_exit`, exactly like a kernel OS park — so a lost
///   wakeup freezes the step counter and the explorer declares the
///   schedule dead.
pub fn block_on_manual<F: Future>(fut: F) -> F::Output {
    let signal = Arc::new(FlagSignal {
        woken: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(Arc::clone(&signal));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
            return v;
        }
        let mut woken = signal.woken.lock().unwrap_or_else(|e| e.into_inner());
        if *woken {
            *woken = false;
            drop(woken);
            sched::spin_hint(YieldPoint::Park);
            std::thread::yield_now();
        } else {
            sched::block_enter();
            while !*woken {
                woken = signal.cv.wait(woken).unwrap_or_else(|e| e.into_inner());
            }
            *woken = false;
            drop(woken);
            sched::block_exit();
        }
    }
}

/// The all-cells-equal snapshot invariant from `tests/opacity.rs`, shrunk
/// to model-checking size: every thread repeatedly asserts all cells equal
/// (inside the transaction — a torn read panics the vthread) and increments
/// them all. The post-condition pins the final counter value, the recorded
/// history goes to the opacity oracle, and `init` closes the oracle's
/// first-read binding blind spot.
pub fn snapshot_scenario(
    mode: AlgoMode,
    algo: StmAlgo,
    threads: usize,
    ops: u64,
    n_cells: usize,
) -> Scenario {
    let sys = Arc::new(TmSystem::new(mode));
    sys.set_stm_algo(algo);
    let lock = Arc::new(ElidableMutex::new("check-snapshot"));
    let cells: Arc<Vec<TCell<u64>>> = Arc::new((0..n_cells).map(|_| TCell::new(0)).collect());
    let init: Vec<(usize, u64)> = cells.iter().map(|c| (c.addr(), 0)).collect();

    let mut tvec: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for _ in 0..threads {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cells = Arc::clone(&cells);
        tvec.push(Box::new(move || {
            let th = sys.register();
            for _ in 0..ops {
                th.tx(&lock).run(|ctx| {
                    let first = ctx.read(&cells[0])?;
                    for c in cells.iter().skip(1) {
                        let v = ctx.read(c)?;
                        assert_eq!(v, first, "torn snapshot under {mode:?}/{algo:?}");
                    }
                    for c in cells.iter() {
                        ctx.write(c, first + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }

    let expect = threads as u64 * ops;
    let post_cells = Arc::clone(&cells);
    Scenario {
        threads: tvec,
        init,
        post: Box::new(move |_| {
            for (i, c) in post_cells.iter().enumerate() {
                let v = c.load_direct();
                if v != expect {
                    return Err(format!(
                        "cell {i} = {v}, expected {expect} under {mode:?}/{algo:?}"
                    ));
                }
            }
            Ok(())
        }),
    }
}

/// One producer, one consumer over a Wang-style condvar: the consumer
/// checks the flag and waits in the same transaction (commit-then-block);
/// the producer sets the flag and signals. Any interleaving must end with
/// the consumer observing the flagged value — a lost wakeup shows up as a
/// deadlock, a torn handoff as an opacity violation.
pub fn handoff_scenario(mode: AlgoMode, algo: StmAlgo) -> Scenario {
    let sys = Arc::new(TmSystem::new(mode));
    sys.set_stm_algo(algo);
    let lock = Arc::new(ElidableMutex::new("check-handoff"));
    let cv = Arc::new(TxCondvar::new());
    let flag = Arc::new(TCell::new(0u64));
    let value = Arc::new(TCell::new(0u64));
    let seen = Arc::new(TCell::new(0u64));
    let init = vec![(flag.addr(), 0), (value.addr(), 0), (seen.addr(), 0)];

    let consumer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        let seen = Arc::clone(&seen);
        Box::new(move || {
            let th = sys.register();
            let got = th.tx(&lock).run(|ctx| {
                if ctx.read(&*flag)? == 0 {
                    return ctx.wait(&cv, None).map(|_| 0);
                }
                let v = ctx.read(&*value)?;
                ctx.write(&*seen, v)?;
                Ok(v)
            });
            assert_eq!(got, 55, "consumer woke before the handoff under {mode:?}");
        })
    };
    let producer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                ctx.write(&*value, 55u64)?;
                ctx.write(&*flag, 1u64)?;
                ctx.signal(&cv)?;
                Ok(())
            });
        })
    };

    let post_seen = Arc::clone(&seen);
    Scenario {
        // Consumer first: the default (rank-0) schedule parks it before the
        // producer runs, exercising the commit-then-block path on the very
        // first schedule.
        threads: vec![consumer, producer],
        init,
        post: Box::new(move |_| {
            let v = post_seen.load_direct();
            if v != 55 {
                return Err(format!("consumer recorded {v}, expected 55"));
            }
            Ok(())
        }),
    }
}

/// The handoff scenario with either side (or both) driven through the async
/// waker path under [`block_on_manual`]. A sync producer signalling an async
/// consumer exercises waker delivery from the condvar-notify path; an async
/// producer waking a sync waiter exercises the reverse; both-async covers
/// the executor-shaped end-to-end flow. A lost or misdelivered waker shows
/// up as a deadlock, a torn handoff as an opacity violation.
pub fn handoff_scenario_async(
    mode: AlgoMode,
    algo: StmAlgo,
    async_consumer: bool,
    async_producer: bool,
) -> Scenario {
    let sys = Arc::new(TmSystem::new(mode));
    sys.set_stm_algo(algo);
    let lock = Arc::new(ElidableMutex::new("check-handoff-async"));
    let cv = Arc::new(TxCondvar::new());
    let flag = Arc::new(TCell::new(0u64));
    let value = Arc::new(TCell::new(0u64));
    let seen = Arc::new(TCell::new(0u64));
    let init = vec![(flag.addr(), 0), (value.addr(), 0), (seen.addr(), 0)];

    let consumer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        let seen = Arc::clone(&seen);
        Box::new(move || {
            let th = sys.register();
            let got = if async_consumer {
                block_on_manual(th.tx(&lock).run_async(|ctx| {
                    if ctx.read(&*flag)? == 0 {
                        return ctx.wait(&cv, None).map(|_| 0);
                    }
                    let v = ctx.read(&*value)?;
                    ctx.write(&*seen, v)?;
                    Ok(v)
                }))
            } else {
                th.tx(&lock).run(|ctx| {
                    if ctx.read(&*flag)? == 0 {
                        return ctx.wait(&cv, None).map(|_| 0);
                    }
                    let v = ctx.read(&*value)?;
                    ctx.write(&*seen, v)?;
                    Ok(v)
                })
            };
            assert_eq!(got, 55, "consumer woke before the handoff under {mode:?}");
        })
    };
    let producer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        Box::new(move || {
            let th = sys.register();
            if async_producer {
                block_on_manual(th.tx(&lock).run_async(|ctx| {
                    ctx.write(&*value, 55u64)?;
                    ctx.write(&*flag, 1u64)?;
                    ctx.signal(&cv)?;
                    Ok(())
                }));
            } else {
                th.tx(&lock).run(|ctx| {
                    ctx.write(&*value, 55u64)?;
                    ctx.write(&*flag, 1u64)?;
                    ctx.signal(&cv)?;
                    Ok(())
                });
            }
        })
    };

    let post_seen = Arc::clone(&seen);
    Scenario {
        threads: vec![consumer, producer],
        init,
        post: Box::new(move |_| {
            let v = post_seen.load_direct();
            if v != 55 {
                return Err(format!("consumer recorded {v}, expected 55"));
            }
            Ok(())
        }),
    }
}
