//! Deterministic coverage of the *waker path*: the async runner's condvar
//! waits (`run_async` / `try_run_async`) explored under the model checker.
//!
//! The scenario threads drive their futures through
//! [`common::block_on_manual`] — no executor, every poll and every waker
//! delivery happens inside a vthread — so the explorer controls the exact
//! interleaving of commit-then-block registration, `Waiter::poll_signaled`
//! waker arming, and the signaller's commit-deferred `Waiter::notify`:
//!
//! - **commit-then-block (async)**: the wait registration commits before
//!   the task suspends, across every algorithm mode — a lost wakeup
//!   freezes the step counter and fails the schedule as a deadlock;
//! - **cross-path wakeups**: a sync signaller must deliver to an armed
//!   async waker, and an async signaller must unpark a sync OS waiter —
//!   both directions share one `Waiter` channel;
//! - **signal races timeout (async)**: a timed async wait (degraded
//!   hot-polling timer — no executor) racing a signaller must leave the
//!   ring consistent whichever wins, including the `cancel_wait_async`
//!   removal transactions;
//! - **deferred signal (async)**: an aborted async signaller attempt must
//!   wake no one; only the committed retry delivers.

mod common;

use common::{block_on_manual, handoff_scenario_async};
use std::sync::Arc;
use std::time::Duration;
use tle_base::TCell;
use tle_check::{explore, Config, Scenario};
use tle_core::{AlgoMode, ElidableMutex, TmSystem, TxCondvar};
use tle_stm::StmAlgo;

#[test]
fn commit_then_block_async_stm_mlwt() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario_async(AlgoMode::StmCondvar, StmAlgo::MlWt, true, true)
    })
    .assert_clean();
}

#[test]
fn commit_then_block_async_stm_norec() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario_async(AlgoMode::StmCondvar, StmAlgo::Norec, true, true)
    })
    .assert_clean();
}

/// Spin mode never arms a waker: the committed wait degrades to re-running
/// the section after a forced rotation (`block_on_async`'s poll path), so
/// this case pins the polling degradation rather than waker delivery.
#[test]
fn commit_then_block_async_stm_spin() {
    explore(&Config::dfs(2, 200), || {
        handoff_scenario_async(AlgoMode::StmSpin, StmAlgo::MlWt, true, true)
    })
    .assert_clean();
}

#[test]
fn commit_then_block_async_htm() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario_async(AlgoMode::HtmCondvar, StmAlgo::MlWt, true, true)
    })
    .assert_clean();
}

#[test]
fn commit_then_block_async_adaptive_htm() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario_async(AlgoMode::AdaptiveHtm, StmAlgo::MlWt, true, true)
    })
    .assert_clean();
}

#[test]
fn commit_then_block_async_baseline() {
    explore(&Config::dfs(2, 200), || {
        handoff_scenario_async(AlgoMode::Baseline, StmAlgo::MlWt, true, true)
    })
    .assert_clean();
}

/// Sync producer, async consumer: the condvar-notify commit path must find
/// and fire the waker armed by `poll_signaled`.
#[test]
fn sync_signal_wakes_async_waiter_stm() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario_async(AlgoMode::StmCondvar, StmAlgo::MlWt, true, false)
    })
    .assert_clean();
}

#[test]
fn sync_signal_wakes_async_waiter_htm() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario_async(AlgoMode::HtmCondvar, StmAlgo::MlWt, true, false)
    })
    .assert_clean();
}

/// Async producer, sync consumer: the deferred notify fired from a polled
/// future must unpark an OS-parked waiter.
#[test]
fn async_signal_wakes_sync_waiter_stm() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario_async(AlgoMode::StmCondvar, StmAlgo::MlWt, false, true)
    })
    .assert_clean();
}

#[test]
fn async_signal_wakes_sync_waiter_htm() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario_async(AlgoMode::HtmCondvar, StmAlgo::MlWt, false, true)
    })
    .assert_clean();
}

/// Async twin of `condvar_check::timed_handoff`: the timed wait runs with
/// no executor, so the timer degrades to hot re-polling (`exec::Sleep`
/// outside a worker wakes immediately) and the timeout edge exercises
/// `cancel_wait_async` — the transactional ring removal with async gate
/// entry and transient slot claims. Whichever wins, the consumer must
/// observe the value.
fn timed_handoff_async(mode: AlgoMode, signal: bool) -> Scenario {
    let sys = Arc::new(TmSystem::new(mode));
    let lock = Arc::new(ElidableMutex::new("check-timed-async"));
    let cv = Arc::new(TxCondvar::new());
    let flag = Arc::new(TCell::new(0u64));
    let value = Arc::new(TCell::new(0u64));
    let seen = Arc::new(TCell::new(0u64));
    let init = vec![(flag.addr(), 0), (value.addr(), 0), (seen.addr(), 0)];

    let consumer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        let seen = Arc::clone(&seen);
        Box::new(move || {
            let th = sys.register();
            let got = block_on_manual(th.tx(&lock).run_async(|ctx| {
                if ctx.read(&*flag)? == 0 {
                    // Short timeout: the producer runs while we are
                    // suspended (or while we hot-poll the degraded timer),
                    // so a timed-out retry re-reads the flag as set.
                    return ctx.wait(&cv, Some(Duration::from_millis(3))).map(|_| 0);
                }
                let v = ctx.read(&*value)?;
                ctx.write(&*seen, v)?;
                Ok(v)
            }));
            assert_eq!(got, 55, "consumer finished without the handoff");
        })
    };
    let producer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        Box::new(move || {
            let th = sys.register();
            block_on_manual(th.tx(&lock).run_async(|ctx| {
                ctx.write(&*value, 55u64)?;
                ctx.write(&*flag, 1u64)?;
                if signal {
                    ctx.signal(&cv)?;
                }
                Ok(())
            }));
        })
    };

    let post_seen = Arc::clone(&seen);
    Scenario {
        threads: vec![consumer, producer],
        init,
        post: Box::new(move |_| {
            let v = post_seen.load_direct();
            if v != 55 {
                return Err(format!("consumer recorded {v}, expected 55"));
            }
            Ok(())
        }),
    }
}

#[test]
fn signal_races_timeout_async_stm() {
    explore(&Config::dfs(2, 120), || {
        timed_handoff_async(AlgoMode::StmCondvar, true)
    })
    .assert_clean();
}

#[test]
fn signal_races_timeout_async_htm() {
    explore(&Config::dfs(2, 120), || {
        timed_handoff_async(AlgoMode::HtmCondvar, true)
    })
    .assert_clean();
}

/// No signal at all: every async wakeup is a timeout, every timeout runs
/// `cancel_wait_async`, and the consumer still converges because the
/// producer's flag write lands in the meantime.
#[test]
fn timeout_cancellation_converges_async() {
    explore(&Config::dfs(2, 120), || {
        timed_handoff_async(AlgoMode::StmCondvar, false)
    })
    .assert_clean();
}

/// Async twin of `condvar_check::aborted_signaller`: the async producer's
/// first attempt writes, signals, then cancels — the aborted attempt's
/// deferred notify must roll back with it (no waker fires), and only the
/// committed retry wakes the suspended consumer.
fn aborted_signaller_async(mode: AlgoMode) -> Scenario {
    let sys = Arc::new(TmSystem::new(mode));
    let lock = Arc::new(ElidableMutex::new("check-abort-sig-async"));
    let cv = Arc::new(TxCondvar::new());
    let flag = Arc::new(TCell::new(0u64));
    let value = Arc::new(TCell::new(0u64));
    let seen = Arc::new(TCell::new(0u64));
    let init = vec![(flag.addr(), 0), (value.addr(), 0), (seen.addr(), 0)];

    let consumer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        let seen = Arc::clone(&seen);
        Box::new(move || {
            let th = sys.register();
            let got = block_on_manual(th.tx(&lock).run_async(|ctx| {
                if ctx.read(&*flag)? == 0 {
                    return ctx.wait(&cv, None).map(|_| 0);
                }
                let v = ctx.read(&*value)?;
                ctx.write(&*seen, v)?;
                Ok(v)
            }));
            assert_eq!(got, 55, "consumer woke without the committed handoff");
        })
    };
    let producer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        Box::new(move || {
            let th = sys.register();
            let mut cancelled = false;
            block_on_manual(th.tx(&lock).run_async(|ctx| {
                ctx.write(&*value, 55u64)?;
                ctx.write(&*flag, 1u64)?;
                ctx.signal(&cv)?;
                // Cancel only inside a real transaction: retries that burn
                // the HTM budget fall back to serial-irrevocable mode,
                // where cancel is (correctly) a panic.
                if !cancelled && ctx.is_transactional() {
                    cancelled = true;
                    return Err(ctx.cancel());
                }
                Ok(())
            }));
        })
    };

    let post_seen = Arc::clone(&seen);
    Scenario {
        threads: vec![consumer, producer],
        init,
        post: Box::new(move |_| {
            let v = post_seen.load_direct();
            if v != 55 {
                return Err(format!("consumer recorded {v}, expected 55"));
            }
            Ok(())
        }),
    }
}

#[test]
fn aborted_signal_wakes_no_one_async_stm() {
    explore(&Config::dfs(2, 200), || {
        aborted_signaller_async(AlgoMode::StmCondvar)
    })
    .assert_clean();
}

#[test]
fn aborted_signal_wakes_no_one_async_htm() {
    explore(&Config::dfs(2, 200), || {
        aborted_signaller_async(AlgoMode::HtmCondvar)
    })
    .assert_clean();
}
