//! Explorer sanity over the *unmutated* kernels: deterministic exploration
//! of small snapshot/handoff scenarios must come back clean under every
//! algorithm family, and a printed schedule token must reproduce its run
//! exactly.
//!
//! The mutation matrix (`tests/mutants.rs`) is the other half of this
//! suite's argument: these tests show the harness accepts correct kernels,
//! that one shows it rejects broken ones.

mod common;

use common::{handoff_scenario, snapshot_scenario};
use std::time::Duration;
use tle_check::{explore, replay, Config, FailKind, Scenario};
use tle_core::AlgoMode;
use tle_stm::StmAlgo;

#[test]
fn dfs_clean_stm_mlwt() {
    let cfg = Config::dfs(2, 300);
    explore(&cfg, || {
        snapshot_scenario(AlgoMode::StmCondvar, StmAlgo::MlWt, 2, 2, 2)
    })
    .assert_clean();
}

#[test]
fn dfs_clean_stm_mlwt_noquiesce() {
    let cfg = Config::dfs(2, 300);
    explore(&cfg, || {
        snapshot_scenario(AlgoMode::StmCondvarNoQuiesce, StmAlgo::MlWt, 2, 2, 2)
    })
    .assert_clean();
}

#[test]
fn dfs_clean_stm_norec() {
    let cfg = Config::dfs(2, 300);
    explore(&cfg, || {
        snapshot_scenario(AlgoMode::StmCondvar, StmAlgo::Norec, 2, 2, 2)
    })
    .assert_clean();
}

#[test]
fn dfs_clean_htm() {
    let cfg = Config::dfs(2, 300);
    explore(&cfg, || {
        snapshot_scenario(AlgoMode::HtmCondvar, StmAlgo::MlWt, 2, 2, 2)
    })
    .assert_clean();
}

#[test]
fn dfs_clean_adaptive_htm() {
    let cfg = Config::dfs(2, 300);
    explore(&cfg, || {
        snapshot_scenario(AlgoMode::AdaptiveHtm, StmAlgo::MlWt, 2, 2, 2)
    })
    .assert_clean();
}

#[test]
fn dfs_clean_baseline() {
    let cfg = Config::dfs(2, 200);
    explore(&cfg, || {
        snapshot_scenario(AlgoMode::Baseline, StmAlgo::MlWt, 2, 2, 2)
    })
    .assert_clean();
}

#[test]
fn dfs_clean_three_threads() {
    // Three virtual threads widen every decision to arity 3; keep the
    // per-thread work minimal so the budget-2 tree stays small.
    let cfg = Config::dfs(2, 400);
    explore(&cfg, || {
        snapshot_scenario(AlgoMode::StmCondvar, StmAlgo::MlWt, 3, 1, 2)
    })
    .assert_clean();
}

#[test]
fn random_sampling_clean_across_modes() {
    for (mode, algo) in [
        (AlgoMode::StmCondvar, StmAlgo::MlWt),
        (AlgoMode::StmCondvar, StmAlgo::Norec),
        (AlgoMode::HtmCondvar, StmAlgo::MlWt),
    ] {
        let cfg = Config::random(0xBADC0DE, 40);
        explore(&cfg, || snapshot_scenario(mode, algo, 2, 2, 2)).assert_clean();
    }
}

#[test]
fn dfs_clean_condvar_handoff() {
    let cfg = Config::dfs(2, 300);
    explore(&cfg, || {
        handoff_scenario(AlgoMode::StmCondvar, StmAlgo::MlWt)
    })
    .assert_clean();
}

/// An *application-level* race the kernels cannot save: read in one
/// critical section, write back in another. Every single section is
/// perfectly atomic, so the opacity oracle stays happy — only the
/// post-condition (and a preempting schedule) exposes the lost update.
/// This is the canary for the explorer itself: DFS must find the
/// interleaving, and the printed token must reproduce it.
fn racy_two_step() -> Scenario {
    use std::sync::Arc;
    use tle_base::TCell;
    use tle_core::{ElidableMutex, TmSystem};

    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = Arc::new(ElidableMutex::new("racy"));
    let cell = Arc::new(TCell::new(0u64));
    let init = vec![(cell.addr(), 0)];
    let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for _ in 0..2 {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cell = Arc::clone(&cell);
        threads.push(Box::new(move || {
            let th = sys.register();
            let v = th.tx(&lock).run(|ctx| ctx.read(&*cell));
            th.tx(&lock).run(|ctx| ctx.write(&*cell, v + 1));
        }));
    }
    let post_cell = Arc::clone(&cell);
    Scenario {
        threads,
        init,
        post: Box::new(move |_| {
            let v = post_cell.load_direct();
            if v != 2 {
                return Err(format!("lost update: cell = {v}, expected 2"));
            }
            Ok(())
        }),
    }
}

#[test]
fn dfs_finds_app_level_race_and_token_replays_it() {
    let cfg = Config::dfs(2, 500);
    let report = explore(&cfg, racy_two_step);
    let (token, kind) = report.expect_failure();
    assert!(
        matches!(kind, FailKind::Post(_)),
        "expected a post-condition failure, got: {kind}"
    );
    assert!(token.starts_with("d:"), "DFS token expected, got {token}");

    // The token alone must reproduce the failure on a fresh instance.
    let replayed = replay(&token, racy_two_step(), Duration::from_secs(2));
    match replayed {
        Some(FailKind::Post(_)) => {}
        other => panic!("replay of {token} diverged: {other:?}"),
    }

    // And replaying it again must keep reproducing it (determinism).
    let again = replay(&token, racy_two_step(), Duration::from_secs(2));
    assert!(
        matches!(again, Some(FailKind::Post(_))),
        "second replay of {token} diverged: {again:?}"
    );
}

#[test]
fn random_token_replays_deterministically() {
    // Find nothing (clean scenario), but verify that an `r:` token re-runs
    // without failure and without wedging — the seeded stream is stable.
    let fail = replay(
        "r:12345",
        snapshot_scenario(AlgoMode::StmCondvar, StmAlgo::MlWt, 2, 1, 2),
        Duration::from_secs(2),
    );
    assert!(
        fail.is_none(),
        "clean scenario failed under r:12345: {fail:?}"
    );
    let fail = replay(
        "r:12345",
        snapshot_scenario(AlgoMode::StmCondvar, StmAlgo::MlWt, 2, 1, 2),
        Duration::from_secs(2),
    );
    assert!(fail.is_none(), "replay diverged under r:12345: {fail:?}");
}
