//! Explorer suites for the HTM invalidation primitives — the operations
//! every elision lock path (eager *and* lazy) leans on. Each test states a
//! coherence-ordering property as an in-closure assert or post-condition
//! and exhausts a bounded DFS over the interleavings; the suite passing
//! means no schedule violates the property.
//!
//! - [`HtmGlobal::invalidate`]: a non-transactional writer's store is
//!   ordered *after* any transaction already past its commit point (the
//!   writer-committing wait-out), and every reader in the line's bitmap is
//!   doomed before the store lands.
//! - [`HtmGlobal::try_invalidate`]: the async lock path's re-doom loop
//!   (`false` → yield → re-call) converges to the same guarantee.
//! - [`HtmGlobal::doom_all_active`] / `try_doom_all_active`: the lazy
//!   lock path's sweep dooms every active transaction even though none of
//!   them holds the contested line.

mod common;

use std::sync::Arc;
use tle_base::history;
use tle_base::sched::{self, YieldPoint};
use tle_base::trace::TxMode;
use tle_base::{AbortCause, TCell};
use tle_check::{explore, Config, Scenario};
use tle_htm::{HtmConfig, HtmGlobal};

fn quiet_htm() -> Arc<HtmGlobal> {
    Arc::new(HtmGlobal::new(HtmConfig {
        event_prob: 0.0,
        ..HtmConfig::default()
    }))
}

/// A direct store recorded as a one-store locked section, the way the
/// elision lock paths record theirs — the opacity oracle needs the event
/// to order transactional reads against.
fn locked_store(c: &TCell<u64>, v: u64) {
    history::begin(TxMode::Locked);
    c.store_direct(v);
    history::write(c.addr(), v);
    history::commit();
}

/// Run one raw hardware-transaction attempt: begin on `slot`, apply `body`,
/// commit. Any abort (doomed mid-flight or at the commit CAS) is fine —
/// the suites assert ordering, not success.
fn one_attempt(
    htm: &HtmGlobal,
    slot: usize,
    body: impl FnOnce(&mut tle_htm::HtmTx<'_>) -> Result<(), tle_base::AbortCause>,
) {
    let mut tx = htm.begin(slot);
    match body(&mut tx) {
        Ok(()) => {
            let _ = tx.commit();
        }
        Err(cause) => tx.abort(cause),
    }
}

/// Writer-committing wait-out: T0 transactionally turns X from 0 into 1;
/// T1 performs `invalidate(X)` followed by a direct store of 2. If T0 runs
/// entirely after T1 it reads 2 and writes nothing; in every overlapping
/// schedule `invalidate` must either doom T0 (nothing publishes) or wait
/// out its in-flight commit, ordering the redo publish *before* the direct
/// store. Either way X ends at 2; a 1 means the publish leaked past the
/// invalidation.
fn invalidate_waitout_scenario() -> Scenario {
    let htm = quiet_htm();
    let x = Arc::new(TCell::new(0u64));
    let init = vec![(x.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (htm, x) = (Arc::clone(&htm), Arc::clone(&x));
        Box::new(move || {
            one_attempt(&htm, 0, |tx| {
                if tx.read(&*x)? == 0 {
                    tx.write(&*x, 1u64)?;
                }
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (htm, x) = (Arc::clone(&htm), Arc::clone(&x));
        Box::new(move || {
            htm.invalidate(&*x);
            locked_store(&x, 2u64);
        })
    };
    let post_x = Arc::clone(&x);
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(move |_| {
            let v = post_x.load_direct();
            if v != 2 {
                return Err(format!(
                    "invalidate returned before the committing writer finished \
                     publishing: X = {v}, expected the direct store's 2"
                ));
            }
            Ok(())
        }),
    }
}

#[test]
fn invalidate_waits_out_committing_writer() {
    let report = explore(&Config::dfs(3, 4_000), invalidate_waitout_scenario);
    assert!(
        report.failure.is_none(),
        "writer-committing wait-out violated: {:?}",
        report.failure
    );
    assert!(
        report.schedules > 1,
        "exploration degenerated to one schedule"
    );
}

/// Reader-bitmap doom: T0 subscribes X (transactional read) and reads it
/// twice; T1 invalidates the line and stores directly in between.
/// `invalidate` must doom every reader in the line's bitmap before the
/// store lands, so T0 can never observe both the old and the new value in
/// one transaction — its second read errors out instead.
fn invalidate_reader_doom_scenario() -> Scenario {
    let htm = quiet_htm();
    let x = Arc::new(TCell::new(0u64));
    let init = vec![(x.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (htm, x) = (Arc::clone(&htm), Arc::clone(&x));
        Box::new(move || {
            one_attempt(&htm, 0, |tx| {
                let va = tx.read(&*x)?;
                let vb = tx.read(&*x)?;
                assert_eq!(
                    va, vb,
                    "reader saw the invalidating store without being doomed"
                );
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (htm, x) = (Arc::clone(&htm), Arc::clone(&x));
        Box::new(move || {
            htm.invalidate(&*x);
            locked_store(&x, 2u64);
        })
    };
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(|_| Ok(())),
    }
}

#[test]
fn invalidate_dooms_line_readers() {
    let report = explore(&Config::dfs(3, 4_000), invalidate_reader_doom_scenario);
    assert!(
        report.failure.is_none(),
        "reader-bitmap doom violated: {:?}",
        report.failure
    );
}

/// The async path's re-doom loop: `try_invalidate` refuses to spin on a
/// mid-commit victim and the caller re-calls after yielding. Re-dooming is
/// idempotent, the loop terminates (a livelock would trip the stall
/// timeout), and the converged guarantee matches the blocking form.
fn try_invalidate_loop_scenario() -> Scenario {
    let htm = quiet_htm();
    let x = Arc::new(TCell::new(0u64));
    let init = vec![(x.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (htm, x) = (Arc::clone(&htm), Arc::clone(&x));
        Box::new(move || {
            one_attempt(&htm, 0, |tx| {
                if tx.read(&*x)? == 0 {
                    tx.write(&*x, 1u64)?;
                }
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (htm, x) = (Arc::clone(&htm), Arc::clone(&x));
        Box::new(move || {
            while !htm.try_invalidate(&*x) {
                sched::spin_hint(YieldPoint::LockWord);
            }
            locked_store(&x, 2u64);
        })
    };
    let post_x = Arc::clone(&x);
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(move |_| {
            let v = post_x.load_direct();
            if v != 2 {
                return Err(format!(
                    "try_invalidate loop converged before the committing writer \
                     finished publishing: X = {v}, expected 2"
                ));
            }
            Ok(())
        }),
    }
}

#[test]
fn try_invalidate_re_doom_loop_converges() {
    let report = explore(&Config::dfs(3, 4_000), try_invalidate_loop_scenario);
    assert!(
        report.failure.is_none(),
        "try_invalidate re-doom loop violated ordering: {:?}",
        report.failure
    );
}

/// The lazy lock path's sweep: T0's transaction holds *no* line in common
/// with the lock word, so only `doom_all_active` can stop it from running
/// on as a zombie across T1's direct pair-store. The in-closure assert is
/// the torn-snapshot witness.
///
/// The sweep alone covers transactions that began *before* it; one that
/// begins mid-store-section must refuse itself, exactly as the lazy lock
/// path's begin-refusal (G1) does. The `held` flag emulates that guard:
/// T1 raises it before sweeping and lowers it after the stores, and T0
/// checks it first thing after begin. T0's slot goes active before the
/// check, and the sweep runs after the raise — so a T0 that saw the flag
/// down had begun before the sweep and gets doomed by it.
fn doom_all_scenario(blocking: bool) -> Scenario {
    let htm = quiet_htm();
    let a = Arc::new(TCell::new(0u64));
    let b = Arc::new(TCell::new(0u64));
    let held = Arc::new(TCell::new(0u64));
    let init = vec![(a.addr(), 0), (b.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (htm, a, b) = (Arc::clone(&htm), Arc::clone(&a), Arc::clone(&b));
        let held = Arc::clone(&held);
        Box::new(move || {
            one_attempt(&htm, 0, |tx| {
                if held.load_direct() == 1 {
                    return Err(AbortCause::Conflict);
                }
                let va = tx.read(&*a)?;
                let vb = tx.read(&*b)?;
                assert_eq!(va, vb, "torn snapshot: sweep missed an active slot");
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (htm, a, b) = (Arc::clone(&htm), Arc::clone(&a), Arc::clone(&b));
        let held = Arc::clone(&held);
        Box::new(move || {
            held.store_direct(1u64);
            if blocking {
                htm.doom_all_active();
            } else {
                while !htm.try_doom_all_active() {
                    sched::spin_hint(YieldPoint::TxState);
                }
            }
            // Direct stores, deliberately *without* touching the lines the
            // reader subscribed: only the sweep protects the pair. Recorded
            // as one locked section, with a yield between the stores so the
            // explorer can interleave the reader mid-pair.
            history::begin(TxMode::Locked);
            a.store_direct(1u64);
            history::write(a.addr(), 1);
            sched::yield_point(YieldPoint::MemStore);
            b.store_direct(1u64);
            history::write(b.addr(), 1);
            history::commit();
            held.store_direct(0u64);
        })
    };
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(|_| Ok(())),
    }
}

#[test]
fn doom_all_active_stops_unsubscribed_zombies() {
    let report = explore(&Config::dfs(3, 4_000), || doom_all_scenario(true));
    assert!(
        report.failure.is_none(),
        "doom_all_active sweep violated: {:?}",
        report.failure
    );
}

#[test]
fn try_doom_all_active_loop_matches_blocking_sweep() {
    let report = explore(&Config::dfs(3, 4_000), || doom_all_scenario(false));
    assert!(
        report.failure.is_none(),
        "try_doom_all_active loop violated: {:?}",
        report.failure
    );
}
