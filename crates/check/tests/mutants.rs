//! The mutation matrix: a checker that has never caught a bug is untested
//! code. Each test re-introduces one classic TM bug via
//! `tle_base::mutant` (feature `check-mutants`), asserts the explorer
//! catches it with a **replayable schedule token**, verifies the token
//! reproduces the failure, and then re-runs the same exploration unmutated
//! to show the real kernels pass clean.
//!
//! Arming is process-global, so every test serializes on [`MATRIX_LOCK`]
//! and disarms via drop guard even on panic. `scenario_for` matches
//! exhaustively over [`Mutant`]: adding a mutant without a detection
//! scenario breaks the build.

mod common;

use common::handoff_scenario;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use tle_base::mutant::{self, Mutant};
use tle_base::TCell;
use tle_check::{explore, replay, Config, Scenario};
use tle_core::{AlgoMode, ElidableMutex, TmSystem};
use tle_stm::StmAlgo;

static MATRIX_LOCK: Mutex<()> = Mutex::new(());

struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Armed {
    fn new(m: Mutant) -> Self {
        let guard = MATRIX_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        mutant::arm(m);
        Armed(guard)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        mutant::disarm();
    }
}

/// `ml_wt` lost update: T0 reads A then writes C from it; T1 overwrites A
/// in between. With commit-time validation skipped, T0 commits on the stale
/// read and the oracle's strict commit-order replay flags the mismatch.
fn stale_read_scenario() -> Scenario {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    sys.set_stm_algo(StmAlgo::MlWt);
    let lock = Arc::new(ElidableMutex::new("mut-staleread"));
    let a = Arc::new(TCell::new(0u64));
    let c = Arc::new(TCell::new(0u64));
    let init = vec![(a.addr(), 0), (c.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let (a, c) = (Arc::clone(&a), Arc::clone(&c));
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                let va = ctx.read(&*a)?;
                ctx.write(&*c, va + 1)?;
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let a = Arc::clone(&a);
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| ctx.write(&*a, 1u64));
        })
    };
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(|_| Ok(())),
    }
}

/// Privatization (paper §IV): T1 transactionally flips the flag that stops
/// T0 from touching X, then stores to X *directly*. Without the
/// post-commit quiescence drain, T1's direct store lands while zombie T0
/// still holds undo state for X — T0's rollback then clobbers it. The
/// post-condition pins X to the privatizer's value.
fn privatization_scenario() -> Scenario {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    sys.set_stm_algo(StmAlgo::MlWt);
    let lock = Arc::new(ElidableMutex::new("mut-priv"));
    let flag = Arc::new(TCell::new(0u64));
    let x = Arc::new(TCell::new(0u64));
    let init = vec![(flag.addr(), 0), (x.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let (flag, x) = (Arc::clone(&flag), Arc::clone(&x));
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                if ctx.read(&*flag)? == 0 {
                    ctx.write(&*x, 42u64)?;
                }
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let (flag, x) = (Arc::clone(&flag), Arc::clone(&x));
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| ctx.write(&*flag, 1u64));
            // Privatized: the committed flag write plus the quiescence
            // drain make X ours alone; no transaction needed.
            x.store_direct(7);
        })
    };
    let post_x = Arc::clone(&x);
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(move |_| {
            let v = post_x.load_direct();
            if v != 7 {
                return Err(format!(
                    "privatized store clobbered: X = {v}, expected 7 \
                     (zombie rollback raced the privatizer)"
                ));
            }
            Ok(())
        }),
    }
}

/// Torn rollback: T0's first attempt dirties X (orec held), then cancels —
/// rollback must replay the undo log *before* releasing the orec. Released
/// early, T1's read slips into the window and sees the dirty 42 — an
/// opacity violation (no consistent prefix T1 spans ever has X == 42,
/// since T0's committed retry lands only after T1 is done).
fn dirty_read_scenario() -> Scenario {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    sys.set_stm_algo(StmAlgo::MlWt);
    let lock = Arc::new(ElidableMutex::new("mut-dirtyread"));
    let x = Arc::new(TCell::new(0u64));
    let init = vec![(x.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let x = Arc::clone(&x);
        Box::new(move || {
            let th = sys.register();
            let mut cancelled = false;
            th.tx(&lock).run(|ctx| {
                ctx.write(&*x, 42u64)?;
                if !cancelled {
                    cancelled = true;
                    return Err(ctx.cancel());
                }
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let x = Arc::clone(&x);
        Box::new(move || {
            let th = sys.register();
            let _ = th.tx(&lock).run(|ctx| ctx.read(&*x));
        })
    };
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(|_| Ok(())),
    }
}

/// Zombie torn snapshot in the simulated HTM: T1's commit dooms reader T0
/// mid-transaction; with the doom checks skipped, T0 keeps reading across
/// T1's publish and can see (old A, new B). The invariant assert inside
/// the closure panics the vthread.
fn htm_torn_pair_scenario() -> Scenario {
    let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
    let lock = Arc::new(ElidableMutex::new("mut-torn"));
    let a = Arc::new(TCell::new(0u64));
    let b = Arc::new(TCell::new(0u64));
    let init = vec![(a.addr(), 0), (b.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                let va = ctx.read(&*a)?;
                let vb = ctx.read(&*b)?;
                assert_eq!(va, vb, "torn snapshot: doomed reader kept going");
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                ctx.write(&*a, 1u64)?;
                ctx.write(&*b, 1u64)?;
                Ok(())
            });
        })
    };
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(|_| Ok(())),
    }
}

/// Lazy-subscription lost update: T0 runs the glibc-style lock path
/// (`unsafe_op` forces it) doing read A → write A+1; T1 elides the same
/// increment. With the begin-refusal deleted, T1 may begin *during* T0's
/// hold — and the commit-time window check cannot see it, because the
/// holder bumps the seqlock only at acquire/release, so an entirely-inside
/// window looks clean. T1 commits on the stale read and one increment is
/// lost; the post-condition pins the sum.
fn lazy_lost_update_scenario() -> Scenario {
    let sys = Arc::new(TmSystem::new(AlgoMode::AdaptiveHtmLazy));
    let lock = Arc::new(ElidableMutex::new("mut-lazyheld"));
    let a = Arc::new(TCell::new(0u64));
    let init = vec![(a.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let a = Arc::clone(&a);
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                ctx.unsafe_op()?;
                let va = ctx.read(&*a)?;
                ctx.write(&*a, va + 1)?;
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let a = Arc::clone(&a);
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                let va = ctx.read(&*a)?;
                ctx.write(&*a, va + 1)?;
                Ok(())
            });
        })
    };
    let post_a = Arc::clone(&a);
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(move |_| {
            let v = post_a.load_direct();
            if v != 2 {
                return Err(format!(
                    "lost update: counter = {v}, expected 2 \
                     (lazy transaction committed inside the lock holder's window)"
                ));
            }
            Ok(())
        }),
    }
}

/// Lazy-subscription torn snapshot, parameterized by mode. T1 runs the
/// lock path (`unsafe_op`) writing the A/B pair; T0 speculates a read of
/// both. Lazy transactions never subscribe the lock word, so the *only*
/// thing that stops T0 from running on as a zombie across T1's serial
/// stores is the acquire-side doom sweep (safe mode) — which the naive
/// unsafe mode omits by design and `LazyZombieEscape` deletes from the
/// safe mode. The in-closure assert panics the vthread on a torn pair.
fn lazy_torn_pair_scenario(mode: AlgoMode) -> Scenario {
    let sys = Arc::new(TmSystem::new(mode));
    let lock = Arc::new(ElidableMutex::new("mut-lazytorn"));
    let a = Arc::new(TCell::new(0u64));
    let b = Arc::new(TCell::new(0u64));
    let init = vec![(a.addr(), 0), (b.addr(), 0)];

    let t0: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                let va = ctx.read(&*a)?;
                let vb = ctx.read(&*b)?;
                assert_eq!(va, vb, "torn snapshot: lazy zombie outlived the acquire");
                Ok(())
            });
        })
    };
    let t1: Box<dyn FnOnce() + Send> = {
        let (sys, lock) = (Arc::clone(&sys), Arc::clone(&lock));
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                ctx.unsafe_op()?;
                ctx.write(&*a, 1u64)?;
                ctx.write(&*b, 1u64)?;
                Ok(())
            });
        })
    };
    Scenario {
        threads: vec![t0, t1],
        init,
        post: Box::new(|_| Ok(())),
    }
}

/// Detection scenario + exploration config per mutant. Exhaustive on
/// purpose: a new `Mutant` variant fails to compile until it gets a
/// scenario here.
fn scenario_for(m: Mutant) -> (fn() -> Scenario, Config) {
    match m {
        Mutant::SkipCommitValidation => (stale_read_scenario, Config::dfs(2, 400)),
        Mutant::DropQuiesce => (privatization_scenario, Config::dfs(2, 400)),
        Mutant::EarlyOrecRelease => (dirty_read_scenario, Config::dfs(2, 800)),
        Mutant::LostSignal => {
            let mut cfg = Config::dfs(2, 60);
            // The lost wakeup shows up as a frozen run; keep the stall
            // window short so the failing schedule reports quickly.
            cfg.stall_timeout = Duration::from_millis(800);
            (
                (|| handoff_scenario(AlgoMode::StmCondvar, StmAlgo::MlWt)) as fn() -> Scenario,
                cfg,
            )
        }
        Mutant::SkipDoomCheck => (htm_torn_pair_scenario, Config::dfs(2, 400)),
        Mutant::LazyCommitWithLockHeld => (lazy_lost_update_scenario, Config::dfs(2, 800)),
        Mutant::LazyZombieEscape => (
            (|| lazy_torn_pair_scenario(AlgoMode::AdaptiveHtmLazy)) as fn() -> Scenario,
            Config::dfs(2, 800),
        ),
        // The reorder hazard needs the same torn-pair witness: the hoisted
        // window capture opens a begin-side gap the acquire's doom sweep
        // cannot see, so the zombie read is what actually goes wrong.
        Mutant::LazySubscriptionReorder => (
            (|| lazy_torn_pair_scenario(AlgoMode::AdaptiveHtmLazy)) as fn() -> Scenario,
            Config::dfs(2, 800),
        ),
    }
}

/// The shared matrix body: armed → the explorer must fail and the printed
/// token must reproduce the failure; disarmed → the same exploration must
/// pass clean.
fn detects(m: Mutant) {
    let (factory, cfg) = scenario_for(m);

    let (token, kind) = {
        let _armed = Armed::new(m);
        let report = explore(&cfg, factory);
        let (token, kind) = report.expect_failure();
        println!(
            "mutant {m}: caught by schedule {token} after {} schedules: {kind}",
            report.schedules
        );

        let replayed = replay(&token, factory(), cfg.stall_timeout);
        assert!(
            replayed.is_some(),
            "mutant {m}: schedule {token} did not reproduce on replay"
        );
        (token, kind)
    }; // disarmed here, even if the asserts above panic

    // Re-take the matrix lock for the disarmed run: arming is
    // process-global, so under the default parallel test runner a sibling
    // test's armed window must not leak into this clean exploration.
    let clean = {
        let _serial = MATRIX_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        explore(&cfg, factory)
    };
    if let Some((clean_token, clean_kind)) = &clean.failure {
        panic!(
            "unmutated kernel failed {m}'s scenario at {clean_token}: {clean_kind} \
             (mutant run failed at {token}: {kind})"
        );
    }
}

#[test]
fn catches_skip_commit_validation() {
    detects(Mutant::SkipCommitValidation);
}

#[test]
fn catches_drop_quiesce() {
    detects(Mutant::DropQuiesce);
}

#[test]
fn catches_early_orec_release() {
    detects(Mutant::EarlyOrecRelease);
}

#[test]
fn catches_lost_signal() {
    detects(Mutant::LostSignal);
}

/// The same lost-wakeup bug hunted through the *waker path*: the mutant
/// suppresses the task-waker delivery along with the condvar notify, so an
/// async consumer suspended under `block_on_manual` never re-polls and the
/// explorer's step counter freezes — proving the async suites would catch
/// a real lost waker, not just the sync park variant.
#[test]
fn catches_lost_signal_async() {
    let factory =
        || common::handoff_scenario_async(AlgoMode::StmCondvar, StmAlgo::MlWt, true, true);
    let mut cfg = Config::dfs(2, 60);
    cfg.stall_timeout = Duration::from_millis(800);

    let (token, kind) = {
        let _armed = Armed::new(Mutant::LostSignal);
        let report = explore(&cfg, factory);
        let (token, kind) = report.expect_failure();
        println!(
            "mutant LostSignal (async): caught by schedule {token} after {} schedules: {kind}",
            report.schedules
        );
        let replayed = replay(&token, factory(), cfg.stall_timeout);
        assert!(
            replayed.is_some(),
            "mutant LostSignal (async): schedule {token} did not reproduce on replay"
        );
        (token, kind)
    }; // disarmed here, even if the asserts above panic

    // Same serialization as `detects`: the disarmed run must not overlap a
    // sibling test's armed window.
    let clean = {
        let _serial = MATRIX_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        explore(&cfg, factory)
    };
    if let Some((clean_token, clean_kind)) = &clean.failure {
        panic!(
            "unmutated async waker path failed at {clean_token}: {clean_kind} \
             (mutant run failed at {token}: {kind})"
        );
    }
}

#[test]
fn catches_skip_doom_check() {
    detects(Mutant::SkipDoomCheck);
}

#[test]
fn catches_lazy_commit_with_lock_held() {
    detects(Mutant::LazyCommitWithLockHeld);
}

#[test]
fn catches_lazy_zombie_escape() {
    detects(Mutant::LazyZombieEscape);
}

#[test]
fn catches_lazy_subscription_reorder() {
    detects(Mutant::LazySubscriptionReorder);
}

/// The naive lazy-subscription mode needs no mutant: its published hazard
/// (zombies surviving a lock acquisition because nothing dooms them) is in
/// the shipped code on purpose. The explorer finds it, the token replays
/// it — and the *safe* lazy mode passes the identical scenario clean.
#[test]
fn lazy_unsafe_mode_exhibits_published_hazard() {
    let _serial = MATRIX_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = Config::dfs(2, 800);

    let factory = || lazy_torn_pair_scenario(AlgoMode::AdaptiveHtmLazyUnsafe);
    let report = explore(&cfg, factory);
    let (token, kind) = report.expect_failure();
    println!(
        "lazy-unsafe hazard: caught by schedule {token} after {} schedules: {kind}",
        report.schedules
    );
    let replayed = replay(&token, factory(), cfg.stall_timeout);
    assert!(
        replayed.is_some(),
        "lazy-unsafe hazard: schedule {token} did not reproduce on replay"
    );

    let safe = explore(&cfg, || lazy_torn_pair_scenario(AlgoMode::AdaptiveHtmLazy));
    if let Some((safe_token, safe_kind)) = &safe.failure {
        panic!("safe lazy mode failed the same scenario at {safe_token}: {safe_kind}");
    }
}

/// Belt and braces for the matrix itself: every declared mutant resolves to
/// a scenario (the exhaustive match makes this a compile-time fact; this
/// test keeps it visible in the run log) and the feature is compiled in.
#[test]
fn matrix_covers_every_mutant() {
    assert!(mutant::compiled(), "check-mutants must be enabled here");
    for m in Mutant::ALL {
        let (_factory, cfg) = scenario_for(m);
        match cfg.strategy {
            tle_check::Strategy::Dfs { max_schedules, .. } => {
                assert!(max_schedules > 0, "{m}: empty exploration")
            }
            tle_check::Strategy::Random { schedules, .. } => {
                assert!(schedules > 0, "{m}: empty exploration")
            }
        }
    }
}
