//! Deterministic condvar coverage (Wang-style transaction-friendly
//! condition variables, paper §VI-d) under the model checker:
//!
//! - **commit-then-block**: the predicate check and the waiter registration
//!   commit atomically, so no interleaving of producer and consumer loses
//!   the wakeup — explored exhaustively per mode instead of hoping the
//!   stress scheduler hits the bad window;
//! - **signal races timeout**: a timed waiter and a signaller race; either
//!   winner must leave the ring consistent (the loser's entry is removed or
//!   falls on the floor harmlessly);
//! - **deferred signal**: a signaller whose attempt aborts after calling
//!   `signal` must wake no one — only the committed retry delivers.

mod common;

use common::handoff_scenario;
use std::sync::Arc;
use std::time::Duration;
use tle_base::TCell;
use tle_check::{explore, Config, Scenario};
use tle_core::{AlgoMode, ElidableMutex, TmSystem, TxCondvar};
use tle_stm::StmAlgo;

#[test]
fn commit_then_block_stm_mlwt() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario(AlgoMode::StmCondvar, StmAlgo::MlWt)
    })
    .assert_clean();
}

#[test]
fn commit_then_block_stm_norec() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario(AlgoMode::StmCondvar, StmAlgo::Norec)
    })
    .assert_clean();
}

#[test]
fn commit_then_block_htm() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario(AlgoMode::HtmCondvar, StmAlgo::MlWt)
    })
    .assert_clean();
}

#[test]
fn commit_then_block_adaptive_htm() {
    explore(&Config::dfs(2, 300), || {
        handoff_scenario(AlgoMode::AdaptiveHtm, StmAlgo::MlWt)
    })
    .assert_clean();
}

#[test]
fn commit_then_block_baseline() {
    explore(&Config::dfs(2, 200), || {
        handoff_scenario(AlgoMode::Baseline, StmAlgo::MlWt)
    })
    .assert_clean();
}

/// A timed waiter whose signal may land before, after, or instead of the
/// timeout. Whoever wins, the consumer must end up observing the value:
/// a signal delivery hands it over directly, a timeout cancels the ring
/// entry (`cancel_wait`) and the re-run closure reads the flag. A stale or
/// misdelivered ring entry would strand the consumer (deadlock) or wake it
/// into a torn state (opacity/assert failure).
fn timed_handoff(mode: AlgoMode, signal: bool) -> Scenario {
    let sys = Arc::new(TmSystem::new(mode));
    let lock = Arc::new(ElidableMutex::new("check-timed"));
    let cv = Arc::new(TxCondvar::new());
    let flag = Arc::new(TCell::new(0u64));
    let value = Arc::new(TCell::new(0u64));
    let seen = Arc::new(TCell::new(0u64));
    let init = vec![(flag.addr(), 0), (value.addr(), 0), (seen.addr(), 0)];

    let consumer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        let seen = Arc::clone(&seen);
        Box::new(move || {
            let th = sys.register();
            let got = th.tx(&lock).run(|ctx| {
                if ctx.read(&*flag)? == 0 {
                    // Short timeout: the producer runs while we are parked,
                    // so a timed-out retry re-reads the flag as set.
                    return ctx.wait(&cv, Some(Duration::from_millis(3))).map(|_| 0);
                }
                let v = ctx.read(&*value)?;
                ctx.write(&*seen, v)?;
                Ok(v)
            });
            assert_eq!(got, 55, "consumer finished without the handoff");
        })
    };
    let producer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        Box::new(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                ctx.write(&*value, 55u64)?;
                ctx.write(&*flag, 1u64)?;
                if signal {
                    ctx.signal(&cv)?;
                }
                Ok(())
            });
        })
    };

    let post_seen = Arc::clone(&seen);
    Scenario {
        threads: vec![consumer, producer],
        init,
        post: Box::new(move |_| {
            let v = post_seen.load_direct();
            if v != 55 {
                return Err(format!("consumer recorded {v}, expected 55"));
            }
            Ok(())
        }),
    }
}

#[test]
fn signal_races_timeout_stm() {
    explore(&Config::dfs(2, 150), || {
        timed_handoff(AlgoMode::StmCondvar, true)
    })
    .assert_clean();
}

#[test]
fn signal_races_timeout_htm() {
    explore(&Config::dfs(2, 150), || {
        timed_handoff(AlgoMode::HtmCondvar, true)
    })
    .assert_clean();
}

/// No signal at all: every wakeup is a timeout, every timeout runs
/// `cancel_wait` (the transactional ring removal), and the consumer still
/// converges because the producer's flag write lands while it is parked.
#[test]
fn timeout_cancellation_converges_without_signal() {
    explore(&Config::dfs(2, 150), || {
        timed_handoff(AlgoMode::StmCondvar, false)
    })
    .assert_clean();
}

/// Deferred-signal semantics: the signaller's first attempt writes, signals
/// and then cancels; the aborted attempt must wake no one (its dequeue
/// rolls back with it). Only the committed retry delivers — so the woken
/// consumer always observes the flag set. An eager signal delivery would
/// either wake the consumer into flag == 0 or strand it with a consumed
/// ring entry.
fn aborted_signaller(mode: AlgoMode) -> Scenario {
    let sys = Arc::new(TmSystem::new(mode));
    let lock = Arc::new(ElidableMutex::new("check-abort-sig"));
    let cv = Arc::new(TxCondvar::new());
    let flag = Arc::new(TCell::new(0u64));
    let value = Arc::new(TCell::new(0u64));
    let seen = Arc::new(TCell::new(0u64));
    let init = vec![(flag.addr(), 0), (value.addr(), 0), (seen.addr(), 0)];

    let consumer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        let seen = Arc::clone(&seen);
        Box::new(move || {
            let th = sys.register();
            let got = th.tx(&lock).run(|ctx| {
                if ctx.read(&*flag)? == 0 {
                    return ctx.wait(&cv, None).map(|_| 0);
                }
                let v = ctx.read(&*value)?;
                ctx.write(&*seen, v)?;
                Ok(v)
            });
            assert_eq!(got, 55, "consumer woke without the committed handoff");
        })
    };
    let producer: Box<dyn FnOnce() + Send> = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        let value = Arc::clone(&value);
        Box::new(move || {
            let th = sys.register();
            let mut cancelled = false;
            th.tx(&lock).run(|ctx| {
                ctx.write(&*value, 55u64)?;
                ctx.write(&*flag, 1u64)?;
                ctx.signal(&cv)?;
                // Cancel only inside a real transaction: retries that burn
                // the HTM budget fall back to serial-irrevocable mode,
                // where cancel is (correctly) a panic.
                if !cancelled && ctx.is_transactional() {
                    cancelled = true;
                    return Err(ctx.cancel());
                }
                Ok(())
            });
        })
    };

    let post_seen = Arc::clone(&seen);
    Scenario {
        threads: vec![consumer, producer],
        init,
        post: Box::new(move |_| {
            let v = post_seen.load_direct();
            if v != 55 {
                return Err(format!("consumer recorded {v}, expected 55"));
            }
            Ok(())
        }),
    }
}

#[test]
fn aborted_signal_wakes_no_one_stm() {
    explore(&Config::dfs(2, 200), || {
        aborted_signaller(AlgoMode::StmCondvar)
    })
    .assert_clean();
}

#[test]
fn aborted_signal_wakes_no_one_htm() {
    explore(&Config::dfs(2, 200), || {
        aborted_signaller(AlgoMode::HtmCondvar)
    })
    .assert_clean();
}
