//! The cooperative virtual-thread core.
//!
//! Real OS threads run the scenario closures, but a token serializes them:
//! exactly one *virtual thread* executes at any moment, and every
//! TM-relevant atomic (announced through [`tle_base::sched`] hooks) is a
//! place where the token may move. Which thread the token moves to is
//! decided by a [`Cursor`] — a replayable schedule description — so a run is
//! a pure function of its cursor and the harness can enumerate or replay
//! interleavings at will.
//!
//! Hook semantics (the contract with `tle_base::sched`):
//!
//! - `yield_point` is a **preemption candidate**: the cursor picks which
//!   runnable thread continues (rank 0 = stay on the current thread).
//! - `spin_hint` is a **forced rotation**: the spinning thread cannot make
//!   progress until someone else acts, so the token moves round-robin to the
//!   next runnable thread without consuming a cursor decision. A streak of
//!   rotations with no intervening yield point trips the livelock bound.
//! - `block_enter`/`block_exit` bracket a real OS block (condvar park, raw
//!   mutex). The thread leaves the runnable set, hands the token over, and
//!   re-joins when the OS wakes it.
//!
//! Deadlocks are detected positionally: when the step counter freezes with
//! no runnable thread for [`Config::stall_timeout`](crate::explore::Config),
//! the run is declared dead and the parked threads are abandoned (the run
//! already failed; leaking a few parked threads is harmless in a test
//! process).

use crate::cursor::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tle_base::sched::{self, Scheduler, YieldPoint};

/// Sentinel: no thread holds the token.
const NOBODY: usize = usize::MAX;

/// Rotations allowed without an intervening yield point before the run is
/// declared livelocked. TM spin loops resolve in a handful of rotations;
/// a six-digit streak means no thread can make progress.
const LIVELOCK_BOUND: u64 = 200_000;

/// Lifecycle of one virtual thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VState {
    /// May be handed the token.
    Runnable,
    /// Between `block_enter` and `block_exit` (parked or about to park).
    Blocked,
    /// Returned (or unwound) from its closure.
    Done,
}

/// Why a schedule run failed.
#[derive(Debug, Clone)]
pub enum Failure {
    /// A virtual thread panicked (assertion inside a closure, kernel
    /// invariant, or the livelock bound).
    Panic(String),
    /// Every live thread was blocked and the step counter froze: a lost
    /// wakeup or a real deadlock.
    Deadlock(String),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Panic(m) => write!(f, "panic: {m}"),
            Failure::Deadlock(m) => write!(f, "deadlock: {m}"),
        }
    }
}

/// Outcome of running one schedule to completion (or to failure).
#[derive(Debug)]
pub struct RunResult {
    /// First failure observed, if any.
    pub failure: Option<Failure>,
    /// Cursor state after the run (replay prefix + extensions), for DFS
    /// backtracking and failure-token printing.
    pub cursor: Cursor,
    /// Scheduling steps executed (yields + rotations + block events).
    pub steps: u64,
}

struct State {
    states: Vec<VState>,
    current: usize,
    ready: usize,
    cursor: Cursor,
    /// Consecutive spin rotations since the last yield point.
    spin_streak: u64,
    failures: Vec<Failure>,
}

struct Core {
    m: Mutex<State>,
    cv: Condvar,
    /// Progress counter read lock-free by the supervising thread.
    steps: AtomicU64,
}

impl Core {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicking virtual thread poisons nothing interesting: the state
        // is just the token bookkeeping, kept consistent before any panic.
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tick(&self) {
        self.steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Move the token to `next` (or give it up) and wake everyone waiting.
    fn handoff(&self, st: &mut State, next: usize) {
        st.current = next;
        self.cv.notify_all();
    }

    /// Runnable threads, current thread first, then the rest ascending —
    /// the rank order the cursor chooses from.
    fn rank_order(st: &State, me: usize) -> Vec<usize> {
        let mut order = vec![me];
        order.extend((0..st.states.len()).filter(|&i| i != me && st.states[i] == VState::Runnable));
        order
    }

    /// Next runnable thread cyclically after `me`, excluding `me`.
    fn next_runnable_after(st: &State, me: usize) -> Option<usize> {
        let n = st.states.len();
        (1..=n)
            .map(|k| (me + k) % n)
            .find(|&i| i != me && st.states[i] == VState::Runnable)
    }

    fn wait_for_token(&self, mut st: MutexGuard<'_, State>, me: usize) {
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The per-thread driver installed via [`tle_base::sched::register`].
struct Driver {
    core: Arc<Core>,
    id: usize,
}

impl Scheduler for Driver {
    fn yield_point(&self, _p: YieldPoint) {
        let core = &*self.core;
        let mut st = core.lock();
        debug_assert_eq!(st.current, self.id, "yield from a thread without the token");
        core.tick();
        st.spin_streak = 0;
        let order = Core::rank_order(&st, self.id);
        if order.len() > 1 {
            let rank = st.cursor.choose(order.len());
            let next = order[rank];
            if next != self.id {
                core.handoff(&mut st, next);
                core.wait_for_token(st, self.id);
            }
        }
    }

    fn spin_hint(&self, p: YieldPoint) {
        let core = &*self.core;
        let mut st = core.lock();
        debug_assert_eq!(st.current, self.id, "spin from a thread without the token");
        core.tick();
        st.spin_streak += 1;
        if st.spin_streak > LIVELOCK_BOUND {
            let msg = format!(
                "livelock suspected at {p:?}: {LIVELOCK_BOUND} spin rotations \
                 with no yield point (states {:?})",
                st.states
            );
            drop(st);
            panic!("{msg}");
        }
        if let Some(next) = Core::next_runnable_after(&st, self.id) {
            core.handoff(&mut st, next);
            core.wait_for_token(st, self.id);
        }
        // Nobody else runnable: keep spinning — the thread we wait for is
        // blocked in the OS and will rejoin via block_exit.
    }

    fn block_enter(&self) {
        let core = &*self.core;
        let mut st = core.lock();
        core.tick();
        st.spin_streak = 0;
        st.states[self.id] = VState::Blocked;
        let next = Core::next_runnable_after(&st, self.id).unwrap_or(NOBODY);
        core.handoff(&mut st, next);
        // Fall through *without* the token: the caller is about to park in
        // the OS, concurrently with whoever got the token.
    }

    fn block_exit(&self) {
        let core = &*self.core;
        let mut st = core.lock();
        core.tick();
        st.states[self.id] = VState::Runnable;
        if st.current == NOBODY {
            st.current = self.id;
        }
        core.wait_for_token(st, self.id);
    }
}

/// Run `threads` under the schedule described by `cursor`. Returns once all
/// threads finished or the run was declared dead (`stall_timeout` with no
/// progress). Deterministic for a fixed cursor as long as the closures are.
pub fn run_schedule(
    cursor: Cursor,
    threads: Vec<Box<dyn FnOnce() + Send>>,
    stall_timeout: Duration,
) -> RunResult {
    let n = threads.len();
    assert!(n > 0, "a schedule needs at least one thread");
    let core = Arc::new(Core {
        m: Mutex::new(State {
            states: vec![VState::Runnable; n],
            current: NOBODY,
            ready: 0,
            cursor,
            spin_streak: 0,
            failures: Vec::new(),
        }),
        cv: Condvar::new(),
        steps: AtomicU64::new(0),
    });

    let handles: Vec<_> = threads
        .into_iter()
        .enumerate()
        .map(|(id, f)| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || vthread_main(core, id, f))
        })
        .collect();

    // Start gate: wait until everyone registered, then give thread 0 the
    // token (the cursor's rank order makes the first decision from there).
    {
        let mut st = core.lock();
        while st.ready < n {
            st = core.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        core.handoff(&mut st, 0);
    }

    // Supervise: join on completion, declare the run dead on a frozen step
    // counter. The counter moves on every hook, so freezing means every
    // live thread is parked in the OS waiting for a wakeup that can only
    // come from another parked thread — a deadlock.
    let mut last_steps = core.steps.load(Ordering::Relaxed);
    let mut last_change = Instant::now();
    let deadlocked = loop {
        std::thread::sleep(Duration::from_millis(2));
        let st = core.lock();
        if st.states.iter().all(|&s| s == VState::Done) {
            break false;
        }
        drop(st);
        let steps = core.steps.load(Ordering::Relaxed);
        if steps != last_steps {
            last_steps = steps;
            last_change = Instant::now();
        } else if last_change.elapsed() >= stall_timeout {
            break true;
        }
    };

    let mut st = core.lock();
    if deadlocked {
        let msg = format!(
            "no progress for {stall_timeout:?}; thread states {:?}",
            st.states
        );
        st.failures.push(Failure::Deadlock(msg));
        // Unpark any thread still waiting for a token it will never get
        // (none should be, but don't risk hanging the supervisor).
        st.current = NOBODY;
    }
    let failure = st.failures.first().cloned();
    let cursor = st.cursor.clone();
    drop(st);
    if !deadlocked {
        for h in handles {
            let _ = h.join();
        }
    }
    // On deadlock the handles are dropped: the parked threads are leaked
    // deliberately (the process is a test binary; the run already failed).
    RunResult {
        failure,
        cursor,
        steps: core.steps.load(Ordering::Relaxed),
    }
}

fn vthread_main(core: Arc<Core>, id: usize, f: Box<dyn FnOnce() + Send>) {
    sched::register(Arc::new(Driver {
        core: Arc::clone(&core),
        id,
    }));
    // Ready barrier, then wait for the token.
    {
        let mut st = core.lock();
        st.ready += 1;
        core.cv.notify_all();
        core.wait_for_token(st, id);
    }

    let result = catch_unwind(AssertUnwindSafe(f));
    sched::unregister();

    let mut st = core.lock();
    core.tick();
    st.states[id] = VState::Done;
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        st.failures
            .push(Failure::Panic(format!("vthread {id}: {msg}")));
    }
    let next = Core::next_runnable_after(&st, id).unwrap_or(NOBODY);
    core.handoff(&mut st, next);
}
