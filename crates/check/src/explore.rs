//! Schedule enumeration: DFS with bounded preemptions, or seeded random
//! sampling, over [`run_schedule`].
//!
//! Each schedule runs a *fresh* scenario (the factory builds new state and
//! new thread closures every time), records the transactional history, and
//! judges the run three ways:
//!
//! 1. the virtual-thread core's own outcome (panic inside a closure, or a
//!    deadlock / livelock);
//! 2. the offline opacity checker over the recorded history;
//! 3. the scenario's post-condition over final state.
//!
//! The first failure stops exploration and is reported with its replayable
//! **schedule token** (`d:...` rank list or `r:seed`); feed the token to
//! [`replay`] to reproduce the exact interleaving.

use crate::cursor::Cursor;
use crate::oracle::{self, Verdict};
use crate::vthread::{run_schedule, Failure};
use std::time::Duration;
use tle_base::history::{self, HistEvent};

/// How to enumerate schedules.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Depth-first over recorded decisions with at most `budget`
    /// preemptions per schedule, capped at `max_schedules` runs.
    Dfs {
        /// Preemptions allowed per schedule.
        budget: u32,
        /// Hard cap on schedules explored.
        max_schedules: usize,
    },
    /// `schedules` runs with seeds derived from `seed`.
    Random {
        /// Base seed; schedule i runs with seed `splitmix(seed, i)`.
        seed: u64,
        /// Number of schedules to sample.
        schedules: usize,
    },
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Enumeration strategy.
    pub strategy: Strategy,
    /// How long the step counter may freeze before a run is declared dead.
    pub stall_timeout: Duration,
}

impl Config {
    /// DFS with the given preemption budget and schedule cap.
    pub fn dfs(budget: u32, max_schedules: usize) -> Self {
        Config {
            strategy: Strategy::Dfs {
                budget,
                max_schedules,
            },
            stall_timeout: Duration::from_secs(2),
        }
    }

    /// Random sampling.
    pub fn random(seed: u64, schedules: usize) -> Self {
        Config {
            strategy: Strategy::Random { seed, schedules },
            stall_timeout: Duration::from_secs(2),
        }
    }
}

/// One scenario instance: thread closures plus a post-condition.
pub struct Scenario {
    /// The virtual threads (fresh state captured inside).
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    /// Known initial `(addr, value)` pairs for the opacity checker (closes
    /// the first-read binding blind spot).
    pub init: Vec<(usize, u64)>,
    /// Post-condition over the final state, run after the threads joined.
    /// Return `Err` to fail the schedule.
    #[allow(clippy::type_complexity)]
    pub post: Box<dyn FnOnce(&[HistEvent]) -> Result<(), String>>,
}

/// Why an explored schedule failed.
#[derive(Debug, Clone)]
pub enum FailKind {
    /// Panic or deadlock inside the run.
    Run(String),
    /// The opacity checker rejected the recorded history.
    Opacity(String),
    /// The scenario's post-condition failed.
    Post(String),
}

impl std::fmt::Display for FailKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailKind::Run(m) => write!(f, "run failed: {m}"),
            FailKind::Opacity(m) => write!(f, "opacity violation: {m}"),
            FailKind::Post(m) => write!(f, "post-condition failed: {m}"),
        }
    }
}

/// Result of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// First failing schedule, if any: (replayable token, failure).
    pub failure: Option<(String, FailKind)>,
}

impl Report {
    /// Panic (with the replay token) if any schedule failed.
    pub fn assert_clean(&self) {
        if let Some((token, kind)) = &self.failure {
            panic!(
                "schedule {token} failed after {} schedules: {kind}",
                self.schedules
            );
        }
    }

    /// Panic unless some schedule failed; returns the token and failure.
    pub fn expect_failure(&self) -> (String, FailKind) {
        match &self.failure {
            Some((token, kind)) => (token.clone(), kind.clone()),
            None => panic!(
                "expected a failing schedule, but {} schedules passed clean",
                self.schedules
            ),
        }
    }
}

/// Run one schedule described by `cursor` over a fresh scenario.
fn run_one(
    cursor: Cursor,
    scenario: Scenario,
    stall_timeout: Duration,
) -> (Cursor, Option<FailKind>) {
    let rec = history::record();
    let result = run_schedule(cursor, scenario.threads, stall_timeout);
    let events = rec.finish();
    let fail = match result.failure {
        Some(Failure::Panic(m)) => Some(FailKind::Run(m)),
        Some(Failure::Deadlock(m)) => Some(FailKind::Run(format!("deadlock: {m}"))),
        None => match oracle::check_history_with_init(&events, scenario.init.iter().copied()) {
            Verdict::Violation { prefix_len, reason } => Some(FailKind::Opacity(format!(
                "minimal prefix {prefix_len}: {reason}"
            ))),
            Verdict::Consistent { .. } => (scenario.post)(&events).err().map(FailKind::Post),
        },
    };
    (result.cursor, fail)
}

/// Explore schedules of `factory`-built scenarios under `cfg`. Stops at the
/// first failure (reported with its schedule token) or when the strategy is
/// exhausted.
pub fn explore<F>(cfg: &Config, mut factory: F) -> Report
where
    F: FnMut() -> Scenario,
{
    match cfg.strategy {
        Strategy::Dfs {
            budget,
            max_schedules,
        } => {
            let mut cursor = Cursor::dfs(budget);
            let mut schedules = 0;
            loop {
                schedules += 1;
                let (after, fail) = run_one(cursor, factory(), cfg.stall_timeout);
                cursor = after;
                if let Some(kind) = fail {
                    return Report {
                        schedules,
                        failure: Some((cursor.token(), kind)),
                    };
                }
                if schedules >= max_schedules || !cursor.advance() {
                    return Report {
                        schedules,
                        failure: None,
                    };
                }
                cursor.rewind(budget);
            }
        }
        Strategy::Random { seed, schedules } => {
            for i in 0..schedules {
                let mut s = seed.wrapping_add(i as u64);
                let derived = tle_base::rng::splitmix64(&mut s);
                let cursor = Cursor::random(derived);
                let token = cursor.token();
                let (_, fail) = run_one(cursor, factory(), cfg.stall_timeout);
                if let Some(kind) = fail {
                    return Report {
                        schedules: i + 1,
                        failure: Some((token, kind)),
                    };
                }
            }
            Report {
                schedules,
                failure: None,
            }
        }
    }
}

/// Re-run a single schedule from a printed token (`d:...` or `r:...`).
pub fn replay(token: &str, scenario: Scenario, stall_timeout: Duration) -> Option<FailKind> {
    let cursor = Cursor::parse(token).unwrap_or_else(|e| panic!("bad schedule token: {e}"));
    run_one(cursor, scenario, stall_timeout).1
}
