//! Offline opacity / serializability checker.
//!
//! Input: the globally ordered event log recorded by [`tle_base::history`]
//! (feature `check-history`). The kernels guarantee (see that module's
//! placement contract) that a writer's `Commit` event lands in the log
//! *before* its writes become visible to any other recorded read — so the
//! order of `Commit` events is the only serialization order that needs
//! checking, not one of many to search for.
//!
//! The checker verifies **transactional sequential consistency** (the
//! paper's §IV formulation of opacity):
//!
//! 1. **Committed writers replay strictly.** Replaying every committed
//!    writing transaction in commit-event order against a sequential memory
//!    must reproduce each of their reads (with own writes shadowing).
//! 2. **Everyone else saw some consistent snapshot.** A read-only committed
//!    transaction, an aborted transaction, and an in-flight (zombie) tail
//!    must each have all its reads explained by a *single* prefix of the
//!    committed writers — any prefix between "commits before its begin" and
//!    "commits before its end". Doomed zombies matter: TLE kernels let
//!    transactions run doomed, and the paper's opacity requirement is
//!    exactly that they still never see a torn snapshot.
//! 3. **Initial values bind at first read.** The log does not include
//!    initial memory; the first read of an address (scanning committed
//!    writers first, then the rest) defines it, and every later read must
//!    agree.
//!
//! On violation the checker re-runs itself on successively longer prefixes
//! of the log and reports the *minimal violating prefix* — the earliest
//! event at which no consistent explanation exists — plus a human-readable
//! reason.

use std::collections::HashMap;
use tle_base::history::{HistEvent, HistKind};
use tle_base::trace::TxMode;

/// One reconstructed transaction (or serial/locked section).
#[derive(Debug, Clone)]
struct Tx {
    thread: u32,
    mode: TxMode,
    begin_seq: u64,
    /// Seq of the Commit/Abort terminator; `u64::MAX` for in-flight tails.
    end_seq: u64,
    /// Read/Write events in program order.
    ops: Vec<HistEvent>,
    committed: bool,
}

impl Tx {
    fn writes(&self) -> impl Iterator<Item = &HistEvent> {
        self.ops.iter().filter(|e| e.kind == HistKind::Write)
    }

    fn is_writer(&self) -> bool {
        self.writes().next().is_some()
    }
}

/// Checker verdict.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every transaction is explained by the sequential oracle.
    Consistent {
        /// Total reconstructed transactions (including zombies).
        txs: usize,
        /// Committed transactions among them.
        commits: usize,
    },
    /// No consistent explanation exists.
    Violation {
        /// Length of the minimal violating prefix of the event log.
        prefix_len: usize,
        /// What failed, on that minimal prefix.
        reason: String,
    },
}

impl Verdict {
    /// Whether the history passed.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Verdict::Consistent { .. })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Consistent { txs, commits } => {
                write!(f, "consistent ({txs} transactions, {commits} committed)")
            }
            Verdict::Violation { prefix_len, reason } => {
                write!(f, "VIOLATION at event {prefix_len}: {reason}")
            }
        }
    }
}

/// Check a recorded history with no prior knowledge of initial memory
/// (first reads bind it). See the module docs for the algorithm.
pub fn check_history(events: &[HistEvent]) -> Verdict {
    check_history_with_init(events, [])
}

/// [`check_history`] with known initial values. Supplying them closes the
/// first-read blind spot: a dirty read of an in-flight value that nothing
/// later contradicts would otherwise *define* the initial value instead of
/// being flagged. Harness scenarios know their cells' addresses and starting
/// contents, so they should always use this form.
pub fn check_history_with_init(
    events: &[HistEvent],
    init: impl IntoIterator<Item = (usize, u64)>,
) -> Verdict {
    let init: HashMap<usize, u64> = init.into_iter().collect();
    match check_once(events, &init) {
        Ok((txs, commits)) => Verdict::Consistent { txs, commits },
        Err(full_reason) => {
            // Minimal violating prefix: smallest n with check(events[..n])
            // failing. Truncation only removes constraints, so failure is
            // monotone in n and a linear scan from the front is exact.
            for n in 1..=events.len() {
                if let Err(reason) = check_once(&events[..n], &init) {
                    return Verdict::Violation {
                        prefix_len: n,
                        reason,
                    };
                }
            }
            Verdict::Violation {
                prefix_len: events.len(),
                reason: full_reason,
            }
        }
    }
}

/// Split the log into transactions, preserving global order inside each.
fn reconstruct(events: &[HistEvent]) -> Result<Vec<Tx>, String> {
    let mut done: Vec<Tx> = Vec::new();
    let mut open: HashMap<u32, Tx> = HashMap::new();
    for e in events {
        match e.kind {
            HistKind::Begin => {
                if let Some(prev) = open.insert(
                    e.thread,
                    Tx {
                        thread: e.thread,
                        mode: e.mode,
                        begin_seq: e.seq,
                        end_seq: u64::MAX,
                        ops: Vec::new(),
                        committed: false,
                    },
                ) {
                    // A Begin with no terminator: the recorder contract says
                    // every attempt ends in Commit or Abort, so a new Begin
                    // on the same thread means the previous attempt's tail
                    // was cut off (prefix truncation) — treat as in-flight.
                    done.push(prev);
                }
            }
            HistKind::Read | HistKind::Write => {
                let tx = open
                    .get_mut(&e.thread)
                    .ok_or_else(|| format!("event {e:?} outside any transaction"))?;
                tx.ops.push(*e);
            }
            HistKind::Commit | HistKind::Abort => {
                let mut tx = open
                    .remove(&e.thread)
                    .ok_or_else(|| format!("terminator {e:?} without a Begin"))?;
                tx.end_seq = e.seq;
                tx.committed = e.kind == HistKind::Commit;
                done.push(tx);
            }
        }
    }
    done.extend(open.into_values());
    done.sort_by_key(|t| t.begin_seq);
    Ok(done)
}

/// Replay a transaction's ops against `base` (memory after some committed
/// prefix) with own-write shadowing. Reads of addresses no committed writer
/// has touched consult — and on first sight bind — `init`; bindings are
/// staged into `staged` so a failed probe leaks nothing.
fn simulate(
    tx: &Tx,
    base: &HashMap<usize, u64>,
    init: &HashMap<usize, u64>,
    staged: &mut HashMap<usize, u64>,
) -> Result<(), String> {
    let mut own: HashMap<usize, u64> = HashMap::new();
    for op in &tx.ops {
        match op.kind {
            HistKind::Write => {
                own.insert(op.addr, op.val);
            }
            HistKind::Read => {
                let expected = own
                    .get(&op.addr)
                    .or_else(|| base.get(&op.addr))
                    .or_else(|| init.get(&op.addr))
                    .or_else(|| staged.get(&op.addr))
                    .copied();
                match expected {
                    Some(v) if v == op.val => {}
                    Some(v) => {
                        return Err(format!(
                            "thread {} ({:?}) read {:#x}={} at event {}, expected {}",
                            tx.thread, tx.mode, op.addr, op.val, op.seq, v
                        ));
                    }
                    None => {
                        staged.insert(op.addr, op.val);
                    }
                }
            }
            _ => unreachable!("ops hold only reads and writes"),
        }
    }
    Ok(())
}

fn check_once(
    events: &[HistEvent],
    known_init: &HashMap<usize, u64>,
) -> Result<(usize, usize), String> {
    let txs = reconstruct(events)?;
    let n_txs = txs.len();
    let n_commits = txs.iter().filter(|t| t.committed).count();

    // Committed writers in commit order; `states[k]` = memory after the
    // first k of them.
    let writers: Vec<&Tx> = {
        let mut w: Vec<&Tx> = txs
            .iter()
            .filter(|t| t.committed && t.is_writer())
            .collect();
        w.sort_by_key(|t| t.end_seq);
        w
    };
    let mut states: Vec<HashMap<usize, u64>> = vec![HashMap::new()];
    let mut init: HashMap<usize, u64> = known_init.clone();

    // Pass 1: strict replay of committed writers (binds inits as it goes).
    for (k, w) in writers.iter().enumerate() {
        let mut staged = HashMap::new();
        simulate(w, &states[k], &init, &mut staged)
            .map_err(|e| format!("committed writer at commit position {k} inconsistent: {e}"))?;
        init.extend(staged);
        let mut next = states[k].clone();
        for op in w.writes() {
            next.insert(op.addr, op.val);
        }
        states.push(next);
    }

    // Pass 2: snapshot-existence for everyone else. A transaction that
    // began after `lo` commits and ended before the `hi+1`-th must match
    // memory after some k in [lo, hi].
    let commits_before = |seq: u64| writers.iter().filter(|w| w.end_seq < seq).count();
    for tx in &txs {
        if tx.committed && tx.is_writer() {
            continue; // pass 1
        }
        if tx.ops.iter().all(|e| e.kind != HistKind::Read) {
            continue; // nothing observable
        }
        let lo = commits_before(tx.begin_seq);
        let hi = commits_before(tx.end_seq);
        let mut last_err = String::new();
        let mut ok = false;
        for state in states.iter().take(hi + 1).skip(lo) {
            let mut staged = HashMap::new();
            match simulate(tx, state, &init, &mut staged) {
                Ok(()) => {
                    init.extend(staged);
                    ok = true;
                    break;
                }
                Err(e) => last_err = e,
            }
        }
        if !ok {
            let kind = if tx.committed {
                "read-only committed"
            } else if tx.end_seq == u64::MAX {
                "in-flight"
            } else {
                "aborted"
            };
            return Err(format!(
                "{kind} transaction saw no consistent snapshot \
                 (tried commit prefixes {lo}..={hi}): {last_err}"
            ));
        }
    }
    Ok((n_txs, n_commits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, thread: u32, kind: HistKind, addr: usize, val: u64) -> HistEvent {
        HistEvent {
            seq,
            thread,
            kind,
            mode: TxMode::Stm,
            addr,
            val,
        }
    }

    use HistKind::{Abort, Begin, Commit, Read, Write};

    #[test]
    fn empty_history_is_consistent() {
        assert!(check_history(&[]).is_consistent());
    }

    #[test]
    fn serial_increments_are_consistent() {
        // T0: read A=0, write A=1, commit. T1: read A=1, write A=2, commit.
        let h = [
            ev(0, 0, Begin, 0, 0),
            ev(1, 0, Read, 0xa, 0),
            ev(2, 0, Write, 0xa, 1),
            ev(3, 0, Commit, 0, 0),
            ev(4, 1, Begin, 0, 0),
            ev(5, 1, Read, 0xa, 1),
            ev(6, 1, Write, 0xa, 2),
            ev(7, 1, Commit, 0, 0),
        ];
        assert!(check_history(&h).is_consistent());
    }

    #[test]
    fn lost_update_is_flagged_with_minimal_prefix() {
        // Both read A=0, both write and commit: the second committer's read
        // is stale — the classic skipped-validation symptom.
        let h = [
            ev(0, 0, Begin, 0, 0),
            ev(1, 0, Read, 0xa, 0),
            ev(2, 1, Begin, 0, 0),
            ev(3, 1, Read, 0xa, 0),
            ev(4, 1, Write, 0xa, 1),
            ev(5, 1, Commit, 0, 0),
            ev(6, 0, Write, 0xa, 1),
            ev(7, 0, Commit, 0, 0),
        ];
        let v = check_history(&h);
        match v {
            Verdict::Violation { prefix_len, .. } => {
                // The violation needs both commits: minimal prefix is the
                // whole history.
                assert_eq!(prefix_len, 8);
            }
            Verdict::Consistent { .. } => panic!("lost update not flagged"),
        }
    }

    #[test]
    fn torn_zombie_snapshot_is_flagged() {
        // Writer keeps A == B. Zombie reads A before the commit and B after:
        // no single prefix explains (A=0, B=1).
        let h = [
            ev(0, 0, Begin, 0, 0),
            ev(1, 0, Read, 0xa, 0),
            ev(2, 1, Begin, 0, 0),
            ev(3, 1, Write, 0xa, 1),
            ev(4, 1, Write, 0xb, 1),
            ev(5, 1, Commit, 0, 0),
            ev(6, 0, Read, 0xb, 1),
            ev(7, 0, Abort, 0, 0),
        ];
        // Without init knowledge the read of B=1 could *define* initial B;
        // with it, no single commit prefix explains (A=0, B=1).
        let v = check_history_with_init(&h, [(0xa, 0), (0xb, 0)]);
        assert!(!v.is_consistent(), "torn zombie snapshot passed: {v}");
    }

    #[test]
    fn zombie_with_consistent_snapshot_passes() {
        // Same shape, but the zombie's reads both predate the commit.
        let h = [
            ev(0, 0, Begin, 0, 0),
            ev(1, 0, Read, 0xa, 0),
            ev(2, 0, Read, 0xb, 0),
            ev(3, 1, Begin, 0, 0),
            ev(4, 1, Write, 0xa, 1),
            ev(5, 1, Write, 0xb, 1),
            ev(6, 1, Commit, 0, 0),
            ev(7, 0, Abort, 0, 0),
        ];
        assert!(check_history(&h).is_consistent());
    }

    #[test]
    fn in_flight_tail_is_treated_as_zombie() {
        // Thread 0 never terminates; its single read is still explained.
        let h = [
            ev(0, 0, Begin, 0, 0),
            ev(1, 0, Read, 0xa, 0),
            ev(2, 1, Begin, 0, 0),
            ev(3, 1, Write, 0xa, 5),
            ev(4, 1, Commit, 0, 0),
        ];
        assert!(check_history(&h).is_consistent());
    }

    #[test]
    fn read_of_uncommitted_value_is_flagged() {
        // Thread 1 reads a value no committed writer ever produced (the
        // early-orec-release symptom: in-place dirty data behind a clean
        // orec). With unknown initial memory the dirty 42 would *become*
        // the initial value; the known-init form closes that blind spot.
        let h = [
            ev(0, 0, Begin, 0, 0),
            ev(1, 0, Write, 0xa, 42),
            ev(2, 1, Begin, 0, 0),
            ev(3, 1, Read, 0xa, 42),
            ev(4, 1, Commit, 0, 0),
            ev(5, 0, Abort, 0, 0),
        ];
        assert!(
            check_history(&h).is_consistent(),
            "without init knowledge the dirty read defines initial memory"
        );
        let v = check_history_with_init(&h, [(0xa, 0)]);
        assert!(!v.is_consistent(), "dirty read passed: {v}");
    }

    #[test]
    fn own_writes_shadow_reads() {
        let h = [
            ev(0, 0, Begin, 0, 0),
            ev(1, 0, Write, 0xa, 9),
            ev(2, 0, Read, 0xa, 9),
            ev(3, 0, Commit, 0, 0),
        ];
        assert!(check_history(&h).is_consistent());
    }

    #[test]
    fn first_read_binds_initial_value() {
        // Initial A is nonzero; both threads must agree on it.
        let consistent = [
            ev(0, 0, Begin, 0, 0),
            ev(1, 0, Read, 0xa, 7),
            ev(2, 0, Commit, 0, 0),
            ev(3, 1, Begin, 0, 0),
            ev(4, 1, Read, 0xa, 7),
            ev(5, 1, Commit, 0, 0),
        ];
        assert!(check_history(&consistent).is_consistent());
        let divergent = [
            ev(0, 0, Begin, 0, 0),
            ev(1, 0, Read, 0xa, 7),
            ev(2, 0, Commit, 0, 0),
            ev(3, 1, Begin, 0, 0),
            ev(4, 1, Read, 0xa, 8),
            ev(5, 1, Commit, 0, 0),
        ];
        assert!(!check_history(&divergent).is_consistent());
    }
}
