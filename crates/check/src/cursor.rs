//! Replayable schedule descriptions.
//!
//! Every yield point where more than one thread is runnable asks the cursor
//! for a **rank**: 0 means "stay on the current thread", `k > 0` means
//! "preempt to the k-th other runnable thread" (in the deterministic order
//! built by the virtual-thread core). A run is therefore fully described by
//! its rank sequence, and a rank sequence is what failure reports print:
//!
//! - `d:0.2.0.1` — an explicit rank list (DFS paths and replays);
//! - `r:42` — the rank sequence drawn from a seeded RNG.
//!
//! [`Cursor::Dfs`] both replays its recorded prefix and *extends* it lazily:
//! decisions past the prefix default to rank 0 and are recorded, and
//! [`Cursor::advance`] backtracks depth-first (increment the deepest
//! decision that has siblings left, truncate the rest). Preemptions
//! (rank > 0) are charged against a budget; once spent, later decisions
//! are forced to rank 0 and not recorded, which bounds the tree
//! (bounded-preemption search — most TM bugs need only 1–2 preemptions).

use tle_base::rng::splitmix64;

/// Maximum recorded decisions per schedule; past this, rank 0 is forced.
/// Bounds DFS memory on long scenarios (the interesting preemptions in a
/// small scenario happen long before this).
pub const MAX_DECISIONS: usize = 4_096;

/// A replayable schedule. See the module docs.
#[derive(Debug, Clone)]
pub enum Cursor {
    /// Replay `path` (rank, arity) pairs, then extend with rank 0,
    /// recording arities for backtracking.
    Dfs {
        /// Decision history: (chosen rank, number of choices offered).
        path: Vec<(u16, u16)>,
        /// Next decision index.
        pos: usize,
        /// Preemptions still allowed when extending.
        budget: u32,
    },
    /// Draw ranks from a seeded splitmix stream: with probability 1/3
    /// preempt to a uniformly chosen other thread.
    Random {
        /// RNG state (the seed before the run starts).
        state: u64,
    },
    /// Replay a fixed rank list (parsed from a printed token); rank 0 past
    /// the end. Out-of-range ranks clamp to the arity offered.
    Fixed {
        /// The rank list.
        ranks: Vec<u16>,
        /// Next decision index.
        pos: usize,
    },
}

impl Cursor {
    /// A fresh DFS cursor with the given preemption budget.
    pub fn dfs(budget: u32) -> Self {
        Cursor::Dfs {
            path: Vec::new(),
            pos: 0,
            budget,
        }
    }

    /// A seeded random cursor.
    pub fn random(seed: u64) -> Self {
        Cursor::Random { state: seed }
    }

    /// Decide the next rank given `arity` choices (arity ≥ 2). Public so
    /// downstream property tests can drive a parsed cursor through an
    /// arity sequence and check the decisions against the documented spec.
    pub fn choose(&mut self, arity: usize) -> usize {
        match self {
            Cursor::Dfs { path, pos, budget } => {
                if *pos < path.len() {
                    let (rank, _) = path[*pos];
                    *pos += 1;
                    if rank > 0 {
                        *budget = budget.saturating_sub(1);
                    }
                    (rank as usize).min(arity - 1)
                } else if *budget == 0 || path.len() >= MAX_DECISIONS {
                    0
                } else {
                    path.push((0, arity as u16));
                    *pos += 1;
                    0
                }
            }
            Cursor::Random { state } => {
                let draw = splitmix64(state);
                if draw.is_multiple_of(3) {
                    1 + ((draw >> 32) as usize % (arity - 1))
                } else {
                    0
                }
            }
            Cursor::Fixed { ranks, pos } => {
                let rank = ranks.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                (rank as usize).min(arity - 1)
            }
        }
    }

    /// Backtrack to the next unexplored DFS schedule: increment the deepest
    /// decision with siblings left, drop everything below it. Returns
    /// `false` when the (budget-bounded) tree is exhausted. Panics on
    /// non-DFS cursors.
    pub fn advance(&mut self) -> bool {
        match self {
            Cursor::Dfs { path, pos, .. } => {
                while let Some((rank, arity)) = path.pop() {
                    if rank + 1 < arity {
                        path.push((rank + 1, arity));
                        *pos = 0;
                        return true;
                    }
                }
                *pos = 0;
                false
            }
            _ => panic!("advance() is only meaningful for DFS cursors"),
        }
    }

    /// Reset the replay position (for re-running the same schedule) and
    /// restore the DFS budget to `budget`.
    pub fn rewind(&mut self, budget: u32) {
        match self {
            Cursor::Dfs { pos, budget: b, .. } => {
                *pos = 0;
                *b = budget;
            }
            Cursor::Fixed { pos, .. } => *pos = 0,
            Cursor::Random { .. } => {}
        }
    }

    /// The printable, replayable token for this schedule.
    pub fn token(&self) -> String {
        match self {
            Cursor::Dfs { path, .. } => {
                let ranks: Vec<String> = path.iter().map(|(r, _)| r.to_string()).collect();
                format!("d:{}", ranks.join("."))
            }
            Cursor::Random { state } => format!("r:{state}"),
            Cursor::Fixed { ranks, .. } => {
                let ranks: Vec<String> = ranks.iter().map(|r| r.to_string()).collect();
                format!("d:{}", ranks.join("."))
            }
        }
    }

    /// Parse a token printed by [`Cursor::token`].
    pub fn parse(token: &str) -> Result<Self, String> {
        if let Some(list) = token.strip_prefix("d:") {
            let ranks = if list.is_empty() {
                Vec::new()
            } else {
                list.split('.')
                    .map(|s| s.parse::<u16>().map_err(|e| format!("bad rank {s:?}: {e}")))
                    .collect::<Result<Vec<_>, _>>()?
            };
            Ok(Cursor::Fixed { ranks, pos: 0 })
        } else if let Some(seed) = token.strip_prefix("r:") {
            let state = seed
                .parse::<u64>()
                .map_err(|e| format!("bad seed {seed:?}: {e}"))?;
            Ok(Cursor::Random { state })
        } else {
            Err(format!("unknown schedule token {token:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_extends_with_rank_zero_and_backtracks() {
        let mut c = Cursor::dfs(2);
        assert_eq!(c.choose(2), 0);
        assert_eq!(c.choose(3), 0);
        assert!(c.advance());
        // Deepest decision advanced: second choice now rank 1.
        c.rewind(2);
        assert_eq!(c.choose(2), 0);
        assert_eq!(c.choose(3), 1);
        // Exhaust: 0.2, then 1.*, ...
        assert!(c.advance());
        c.rewind(2);
        assert_eq!(c.choose(2), 0);
        assert_eq!(c.choose(3), 2);
        assert!(c.advance());
        c.rewind(2);
        assert_eq!(c.choose(2), 1);
    }

    #[test]
    fn dfs_budget_limits_preemptions() {
        let mut c = Cursor::dfs(0);
        // Budget 0: every extension is forced rank 0 and unrecorded.
        assert_eq!(c.choose(4), 0);
        assert_eq!(c.choose(4), 0);
        assert!(!c.advance(), "no recorded decisions to backtrack");
    }

    #[test]
    fn token_roundtrip() {
        let mut c = Cursor::dfs(3);
        c.choose(2);
        c.choose(3);
        c.advance();
        let tok = c.token();
        assert_eq!(tok, "d:0.1");
        let mut replay = Cursor::parse(&tok).unwrap();
        assert_eq!(replay.choose(2), 0);
        assert_eq!(replay.choose(3), 1);
        assert_eq!(replay.choose(5), 0, "past the token: rank 0");

        let r = Cursor::parse("r:42").unwrap();
        assert_eq!(r.token(), "r:42");
        assert!(Cursor::parse("x:1").is_err());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = Cursor::random(7);
        let mut b = Cursor::random(7);
        let da: Vec<usize> = (0..64).map(|_| a.choose(3)).collect();
        let db: Vec<usize> = (0..64).map(|_| b.choose(3)).collect();
        assert_eq!(da, db);
        assert!(
            da.iter().any(|&r| r > 0),
            "seed 7 never preempts in 64 draws"
        );
    }
}
