//! # tle-check — deterministic model checking for the TLE TM kernels
//!
//! Stress tests sample whatever interleavings the OS happens to produce;
//! the bugs that matter in a TM runtime (a validation skipped, a quiescence
//! drain dropped, orecs released a few instructions early, one lost condvar
//! signal) hide in interleavings the OS may never produce on a given
//! machine. This crate *drives* the interleavings instead:
//!
//! - [`vthread`] — a loom-style cooperative scheduler: real OS threads, one
//!   token, a switch decision at every TM-relevant atomic (announced by the
//!   kernels through `tle_base::sched`, feature `check-sched`).
//! - [`cursor`] — replayable schedule descriptions: DFS paths with bounded
//!   preemptions, seeded random streams, and printed `d:…` / `r:…` tokens.
//! - [`oracle`] — an offline opacity checker replaying the transactional
//!   history (`tle_base::history`, feature `check-history`) against a
//!   sequential oracle: committed writers must replay strictly in commit
//!   order, and every other transaction — including doomed zombies — must
//!   have seen *some* consistent snapshot. Violations come with a minimal
//!   violating prefix.
//! - [`explore()`] — ties them together: enumerate schedules over fresh
//!   scenario instances, judge each by run outcome + opacity verdict +
//!   post-condition, report the first failure with its replay token.
//!
//! The harness validates itself by **mutation**: `tle_base::mutant`
//! (feature `check-mutants`) seeds known TM bugs — skipped commit
//! validation, dropped quiescence, early orec release, a lost condvar
//! signal, a skipped HTM doom check — and the `check_mutants` test binary
//! asserts the explorer catches every one with a replayable schedule, while
//! the unmutated kernels pass the same exploration clean.

pub mod cursor;
pub mod explore;
pub mod oracle;
pub mod vthread;

pub use cursor::Cursor;
pub use explore::{explore, replay, Config, FailKind, Report, Scenario, Strategy};
pub use oracle::{check_history, check_history_with_init, Verdict};
pub use vthread::{run_schedule, Failure, RunResult};
