//! The serial→parallel→serial pipeline (PBZip2's architecture).
//!
//! A producer splits the input into blocks and feeds a bounded [`TleFifo`];
//! `workers` consumer threads compress/decompress blocks; an
//! [`OrderedSink`] reassembles output in block order. All synchronization
//! goes through the TLE runtime, so the whole pipeline runs under any of
//! the paper's five algorithms unchanged — this is the program measured in
//! Figure 2.

use crate::block::{compress_block, decompress_block};
use crate::fifo::TleFifo;
use crate::sink::OrderedSink;
use crate::CodecError;
use std::sync::Arc;
use tle_core::TmSystem;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of consumer (worker) threads; the producer and the benchmark
    /// harness thread are extra, as in the paper's setup.
    pub workers: usize,
    /// Input block size in bytes (the paper sweeps 100K/300K/900K).
    pub block_size: usize,
    /// Capacity of the inter-stage queue.
    pub fifo_cap: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 4,
            block_size: 900 * 1000,
            fifo_cap: 16,
        }
    }
}

struct WorkItem {
    id: u64,
    data: Vec<u8>,
}

/// Compress `input` in parallel; output is a framed stream of compressed
/// blocks (readable by [`decompress_parallel`] and [`decompress_serial`]).
pub fn compress_parallel(sys: &Arc<TmSystem>, input: &[u8], cfg: &PipelineConfig) -> Vec<u8> {
    run_pipeline(sys, cfg, split_blocks(input, cfg.block_size), |d| {
        compress_block(&d)
    })
}

/// Decompress a stream produced by the compressor, in parallel.
pub fn decompress_parallel(
    sys: &Arc<TmSystem>,
    compressed: &[u8],
    cfg: &PipelineConfig,
) -> Result<Vec<u8>, CodecError> {
    let frames = OrderedSink::split_frames(compressed)?;
    let blocks: Vec<Vec<u8>> = frames.iter().map(|f| f.to_vec()).collect();
    let framed = run_pipeline(sys, cfg, blocks, |d| {
        decompress_block(&d).expect("corrupt block in parallel decompress")
    });
    // The sink re-frames; flatten back to raw bytes.
    let out_frames = OrderedSink::split_frames(&framed)?;
    let mut out = Vec::with_capacity(out_frames.iter().map(|f| f.len()).sum());
    for f in out_frames {
        out.extend_from_slice(f);
    }
    Ok(out)
}

fn split_blocks(input: &[u8], block_size: usize) -> Vec<Vec<u8>> {
    if input.is_empty() {
        return Vec::new();
    }
    input
        .chunks(block_size.max(1))
        .map(|c| c.to_vec())
        .collect()
}

/// The generic serial→parallel→serial skeleton.
fn run_pipeline(
    sys: &Arc<TmSystem>,
    cfg: &PipelineConfig,
    blocks: Vec<Vec<u8>>,
    work: impl Fn(Vec<u8>) -> Vec<u8> + Send + Sync + 'static,
) -> Vec<u8> {
    let queue: Arc<TleFifo<WorkItem>> = Arc::new(TleFifo::new("pbz-input", cfg.fifo_cap));
    let sink = Arc::new(OrderedSink::new());
    // Enroll the pipeline's locks in the per-lock adaptive controller
    // (no-ops unless the system was built with `.adaptive(true)`).
    sys.adopt_lock(queue.lock());
    sys.adopt_lock(sink.lock());
    let work = Arc::new(work);

    let consumers: Vec<_> = (0..cfg.workers.max(1))
        .map(|_| {
            let sys = Arc::clone(sys);
            let queue = Arc::clone(&queue);
            let sink = Arc::clone(&sink);
            let work = Arc::clone(&work);
            std::thread::spawn(move || {
                let th = sys.register();
                while let Some(item) = queue.pop(&th) {
                    let WorkItem { id, data } = *item;
                    // The heavy lifting happens outside every critical
                    // section, exactly as in PBZip2.
                    let out = work(data);
                    sink.submit(&th, id, &out);
                }
            })
        })
        .collect();

    // Producer stage (this thread).
    {
        let th = sys.register();
        for (id, data) in blocks.into_iter().enumerate() {
            queue
                .push(
                    &th,
                    Box::new(WorkItem {
                        id: id as u64,
                        data,
                    }),
                )
                .unwrap_or_else(|_| panic!("queue closed during production"));
        }
        queue.close(&th);
    }
    for c in consumers {
        c.join().unwrap();
    }
    Arc::try_unwrap(sink)
        .ok()
        .expect("all pipeline threads joined")
        .into_bytes()
}

/// Single-threaded reference compressor (same stream format).
pub fn compress_serial(input: &[u8], block_size: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for block in split_blocks(input, block_size) {
        let c = compress_block(&block);
        out.extend_from_slice(&(c.len() as u64).to_le_bytes());
        out.extend_from_slice(&c);
    }
    out
}

/// Single-threaded reference decompressor.
pub fn decompress_serial(compressed: &[u8]) -> Result<Vec<u8>, CodecError> {
    let frames = OrderedSink::split_frames(compressed)?;
    let mut out = Vec::new();
    for f in frames {
        out.extend_from_slice(&decompress_block(f)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::gen_text;
    use tle_core::{AlgoMode, TmSystem, ALL_MODES};

    fn cfg(workers: usize, block: usize) -> PipelineConfig {
        PipelineConfig {
            workers,
            block_size: block,
            fifo_cap: 4,
        }
    }

    #[test]
    fn serial_roundtrip() {
        let data = gen_text(11, 50_000);
        let c = compress_serial(&data, 8_000);
        assert!(c.len() < data.len());
        assert_eq!(decompress_serial(&c).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let c = compress_parallel(&sys, &[], &cfg(2, 1000));
        assert_eq!(decompress_parallel(&sys, &c, &cfg(2, 1000)).unwrap(), b"");
        assert_eq!(decompress_serial(&compress_serial(&[], 100)).unwrap(), b"");
    }

    #[test]
    fn parallel_output_equals_serial_output() {
        // Deterministic pipeline: same blocks, same order, same bytes.
        let data = gen_text(5, 60_000);
        let serial = compress_serial(&data, 7_000);
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let parallel = compress_parallel(&sys, &data, &cfg(3, 7_000));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn roundtrip_every_mode() {
        let data = gen_text(21, 40_000);
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let c = compress_parallel(&sys, &data, &cfg(3, 5_000));
            let d = decompress_parallel(&sys, &c, &cfg(3, 5_000)).unwrap();
            assert_eq!(d, data, "pipeline corrupted data under {mode:?}");
        }
    }

    #[test]
    fn roundtrip_under_adaptive_controller() {
        // The pipeline adopts its queue/sink locks; with an aggressive
        // controller interval the run may flip lock modes mid-stream, and
        // the output must still be byte-identical to the serial codec.
        let data = gen_text(33, 40_000);
        let sys = Arc::new(
            TmSystem::builder()
                .mode(AlgoMode::HtmCondvar)
                .adaptive(true)
                .build(),
        );
        let ctrl = sys.start_controller(std::time::Duration::from_micros(100));
        let c = compress_parallel(&sys, &data, &cfg(3, 5_000));
        let d = decompress_parallel(&sys, &c, &cfg(3, 5_000)).unwrap();
        ctrl.stop();
        assert_eq!(d, data, "pipeline corrupted data under adaptation");
        assert_eq!(c, compress_serial(&data, 5_000));
    }

    #[test]
    fn block_boundary_edge_cases() {
        let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
        for len in [1usize, 999, 1000, 1001, 2000, 2001] {
            let data = gen_text(len as u64, len);
            let c = compress_parallel(&sys, &data, &cfg(2, 1000));
            let d = decompress_parallel(&sys, &c, &cfg(2, 1000)).unwrap();
            assert_eq!(d, data, "len {len}");
        }
    }

    #[test]
    fn cross_compatibility_serial_and_parallel() {
        let data = gen_text(77, 30_000);
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let c_par = compress_parallel(&sys, &data, &cfg(4, 4_000));
        assert_eq!(decompress_serial(&c_par).unwrap(), data);
        let c_ser = compress_serial(&data, 4_000);
        assert_eq!(
            decompress_parallel(&sys, &c_ser, &cfg(4, 4_000)).unwrap(),
            data
        );
    }
}
