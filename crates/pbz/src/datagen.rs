//! Deterministic synthetic input generation.
//!
//! Stands in for the paper's 650 MB test file (DESIGN.md substitution §3.5):
//! a seeded mixture of dictionary words, punctuation and digit runs whose
//! compression ratio (~3-4x) is in the range of real text, so the
//! compute-per-block of the pipeline is realistic.

use tle_base::rng::XorShift64;

const WORDS: &[&str] = &[
    "the",
    "quick",
    "brown",
    "fox",
    "jumps",
    "over",
    "lazy",
    "dog",
    "lorem",
    "ipsum",
    "dolor",
    "sit",
    "amet",
    "consectetur",
    "adipiscing",
    "elit",
    "transaction",
    "memory",
    "lock",
    "elision",
    "quiescence",
    "commit",
    "abort",
    "serial",
    "hardware",
    "software",
    "thread",
    "queue",
    "producer",
    "consumer",
    "pipeline",
    "block",
    "compress",
    "encode",
    "wavefront",
];

/// Generate `len` bytes of compressible text-like data from `seed`.
pub fn gen_text(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        match rng.below(20) {
            0 => {
                // A digit run (timestamps, counters).
                let n = rng.below(8) + 1;
                for _ in 0..n {
                    out.push(b'0' + rng.below(10) as u8);
                }
                out.push(b' ');
            }
            1 => out.extend_from_slice(b".\n"),
            2 => out.push(b','),
            _ => {
                let w = WORDS[rng.below(WORDS.len() as u64) as usize];
                out.extend_from_slice(w.as_bytes());
                out.push(b' ');
            }
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(gen_text(1, 10_000), gen_text(1, 10_000));
        assert_ne!(gen_text(1, 10_000), gen_text(2, 10_000));
    }

    #[test]
    fn exact_length() {
        for len in [0usize, 1, 100, 12345] {
            assert_eq!(gen_text(7, len).len(), len);
        }
    }

    #[test]
    fn is_compressible() {
        let data = gen_text(3, 100_000);
        let c = crate::compress_block(&data);
        assert!(
            c.len() * 2 < data.len(),
            "synthetic text should compress >2x: {} -> {}",
            data.len(),
            c.len()
        );
    }

    #[test]
    fn mostly_printable() {
        let data = gen_text(9, 10_000);
        let printable = data
            .iter()
            .filter(|&&b| (0x20..0x7F).contains(&b) || b == b'\n')
            .count();
        assert!(printable == data.len());
    }
}
