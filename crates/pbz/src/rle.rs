//! BZip2's initial run-length pass ("RLE1").
//!
//! Runs of 4-255 identical bytes become the 4 bytes followed by a count
//! byte (0-251 extra repetitions). This bounds the damage pathological
//! inputs can do to the sorting stage and is part of the real BZip2 format.

use crate::CodecError;

/// Encode `data` with the RLE1 scheme.
pub fn rle1_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + data.len() / 128 + 4);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        if run >= 4 {
            out.extend_from_slice(&[b, b, b, b]);
            out.push((run - 4) as u8);
        } else {
            for _ in 0..run {
                out.push(b);
            }
        }
        i += run;
    }
    out
}

/// Decode the RLE1 scheme.
pub fn rle1_decode(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        // Detect a literal run of four identical bytes: a count follows.
        if i + 3 < data.len() && data[i + 1] == b && data[i + 2] == b && data[i + 3] == b {
            let count = *data.get(i + 4).ok_or(CodecError::Truncated)? as usize;
            for _ in 0..4 + count {
                out.push(b);
            }
            i += 5;
        } else {
            out.push(b);
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let enc = rle1_encode(data);
        let dec = rle1_decode(&enc).expect("decode failed");
        assert_eq!(dec, data, "roundtrip mismatch for {data:?}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aaa");
    }

    #[test]
    fn exact_run_boundaries() {
        roundtrip(b"aaaa"); // run of exactly 4
        roundtrip(b"aaaaa"); // 5
        roundtrip(&[b'x'; 255]); // max single run
        roundtrip(&[b'x'; 256]);
        roundtrip(&[b'x'; 259]); // 255 + 4
        roundtrip(&[b'x'; 1000]);
    }

    #[test]
    fn mixed_content() {
        roundtrip(b"aaaabbbbccccdddd");
        roundtrip(b"noRunsAtAllHere123");
        roundtrip(b"aaab aaaa b aaaaaaaaaab");
        let mut v = Vec::new();
        for i in 0..500u32 {
            for _ in 0..(i % 9) {
                v.push((i % 251) as u8);
            }
        }
        roundtrip(&v);
    }

    #[test]
    fn runs_shrink_output() {
        let data = [b'z'; 200];
        let enc = rle1_encode(&data);
        assert!(enc.len() < data.len() / 10);
    }

    #[test]
    fn truncated_count_byte_is_an_error() {
        // Four identical bytes with no count byte following.
        assert_eq!(rle1_decode(b"qqqq"), Err(CodecError::Truncated));
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8)
            .flat_map(|b| vec![b; (b as usize % 7) + 1])
            .collect();
        roundtrip(&data);
    }
}
