//! Streaming `io::Write`/`io::Read` adapters over the parallel pipeline —
//! the interface a PBZip2-style tool exposes to file-oriented callers.
//!
//! [`StreamCompressor`] buffers writes into pipeline blocks and compresses
//! each full block in parallel; [`StreamDecompressor`] parses the framed
//! stream and yields decompressed bytes incrementally.

use crate::pipeline::{compress_parallel, PipelineConfig};
use crate::sink::OrderedSink;
use crate::{decompress_block, CodecError};
use std::io::{self, Read, Write};
use std::sync::Arc;
use tle_core::TmSystem;

/// A `Write` sink that compresses its input with the parallel pipeline.
///
/// Data is accumulated until `block_size` bytes are available, then the
/// whole backlog is flushed through [`compress_parallel`] on
/// [`StreamCompressor::finish`] (or when the backlog exceeds
/// `flush_threshold` blocks). Output frames append to the inner writer in
/// order, so concatenated flushes form one valid stream.
pub struct StreamCompressor<W: Write> {
    sys: Arc<TmSystem>,
    cfg: PipelineConfig,
    inner: W,
    backlog: Vec<u8>,
    /// Flush the backlog once it holds this many full blocks.
    flush_threshold_blocks: usize,
    bytes_in: u64,
    bytes_out: u64,
}

impl<W: Write> StreamCompressor<W> {
    /// Wrap `inner` with the given pipeline configuration.
    pub fn new(sys: Arc<TmSystem>, cfg: PipelineConfig, inner: W) -> Self {
        StreamCompressor {
            sys,
            cfg,
            inner,
            backlog: Vec::new(),
            flush_threshold_blocks: 16,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// Total uncompressed bytes accepted so far.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Total compressed bytes emitted so far (excludes the open backlog).
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    fn flush_backlog(&mut self, all: bool) -> io::Result<()> {
        let keep = if all {
            0
        } else {
            self.backlog.len() % self.cfg.block_size
        };
        let cut = self.backlog.len() - keep;
        if cut == 0 {
            return Ok(());
        }
        let tail = self.backlog.split_off(cut);
        let full_blocks = std::mem::replace(&mut self.backlog, tail);
        let compressed = compress_parallel(&self.sys, &full_blocks, &self.cfg);
        self.bytes_out += compressed.len() as u64;
        self.inner.write_all(&compressed)?;
        Ok(())
    }

    /// Compress any remaining buffered data and return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_backlog(true)?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for StreamCompressor<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.backlog.extend_from_slice(buf);
        self.bytes_in += buf.len() as u64;
        if self.backlog.len() >= self.flush_threshold_blocks * self.cfg.block_size {
            self.flush_backlog(false)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Only full blocks can flush early; the remainder waits for
        // `finish` (block framing must not split).
        self.flush_backlog(false)?;
        self.inner.flush()
    }
}

/// A `Read` source that decompresses a framed stream incrementally
/// (block by block — bounded memory regardless of stream size).
pub struct StreamDecompressor<R: Read> {
    inner: R,
    current: Vec<u8>,
    pos: usize,
    done: bool,
}

impl<R: Read> StreamDecompressor<R> {
    /// Wrap a framed compressed stream.
    pub fn new(inner: R) -> Self {
        StreamDecompressor {
            inner,
            current: Vec::new(),
            pos: 0,
            done: false,
        }
    }

    fn refill(&mut self) -> io::Result<()> {
        let mut len8 = [0u8; 8];
        match self.inner.read_exact(&mut len8) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.done = true;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let len = u64::from_le_bytes(len8) as usize;
        if len > 1 << 30 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "implausible frame length",
            ));
        }
        let mut frame = vec![0u8; len];
        self.inner.read_exact(&mut frame)?;
        self.current = decompress_block(&frame).map_err(codec_to_io)?;
        self.pos = 0;
        Ok(())
    }
}

fn codec_to_io(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl<R: Read> Read for StreamDecompressor<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.pos < self.current.len() {
                let n = (self.current.len() - self.pos).min(buf.len());
                buf[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            if self.done {
                return Ok(0);
            }
            self.refill()?;
        }
    }
}

/// Convenience: split frames written by [`OrderedSink`] and decompress all.
pub fn decompress_all(compressed: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    for f in OrderedSink::split_frames(compressed)? {
        out.extend_from_slice(&decompress_block(f)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::gen_text;
    use tle_core::AlgoMode;

    fn sys() -> Arc<TmSystem> {
        Arc::new(TmSystem::new(AlgoMode::StmCondvar))
    }

    fn cfg(block: usize) -> PipelineConfig {
        PipelineConfig {
            workers: 2,
            block_size: block,
            fifo_cap: 4,
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let data = gen_text(31, 100_000);
        let mut c = StreamCompressor::new(sys(), cfg(8_000), Vec::new());
        // Dribble in odd-sized chunks.
        for chunk in data.chunks(1234) {
            c.write_all(chunk).unwrap();
        }
        assert_eq!(c.bytes_in(), data.len() as u64);
        let compressed = c.finish().unwrap();
        assert!(compressed.len() < data.len());

        let mut d = StreamDecompressor::new(&compressed[..]);
        let mut out = Vec::new();
        d.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn empty_stream() {
        let c = StreamCompressor::new(sys(), cfg(1000), Vec::new());
        let compressed = c.finish().unwrap();
        assert!(compressed.is_empty());
        let mut d = StreamDecompressor::new(&compressed[..]);
        let mut out = Vec::new();
        d.read_to_end(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn early_flush_produces_valid_concatenation() {
        let data = gen_text(5, 50_000);
        let mut c = StreamCompressor::new(sys(), cfg(4_000), Vec::new());
        c.write_all(&data[..30_000]).unwrap();
        c.flush().unwrap(); // full blocks flushed, remainder retained
        c.write_all(&data[30_000..]).unwrap();
        let compressed = c.finish().unwrap();
        assert_eq!(decompress_all(&compressed).unwrap(), data);
    }

    #[test]
    fn small_reads_from_decompressor() {
        let data = gen_text(9, 20_000);
        let mut c = StreamCompressor::new(sys(), cfg(3_000), Vec::new());
        c.write_all(&data).unwrap();
        let compressed = c.finish().unwrap();
        let mut d = StreamDecompressor::new(&compressed[..]);
        let mut out = Vec::new();
        let mut buf = [0u8; 7]; // deliberately tiny reads
        loop {
            let n = d.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn corrupt_stream_is_io_error_not_panic() {
        let data = gen_text(2, 10_000);
        let mut c = StreamCompressor::new(sys(), cfg(2_000), Vec::new());
        c.write_all(&data).unwrap();
        let mut compressed = c.finish().unwrap();
        let n = compressed.len();
        compressed[n / 2] ^= 0xFF;
        let mut d = StreamDecompressor::new(&compressed[..]);
        let mut out = Vec::new();
        assert!(d.read_to_end(&mut out).is_err());
    }

    #[test]
    fn compressor_stream_matches_oneshot() {
        let data = gen_text(77, 64_000);
        let mut c = StreamCompressor::new(sys(), cfg(8_000), Vec::new());
        c.write_all(&data).unwrap();
        let streamed = c.finish().unwrap();
        let oneshot = crate::compress_serial(&data, 8_000);
        assert_eq!(
            streamed, oneshot,
            "stream framing must match one-shot output"
        );
    }
}
