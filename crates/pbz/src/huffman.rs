//! Canonical Huffman coding over a small symbol alphabet, plus the
//! BZip2-style zero-run ("RUNA/RUNB") front end.
//!
//! After MTF the stream is mostly zeros; BZip2 replaces zero runs with a
//! bijective base-2 numeral over two symbols before entropy coding. The
//! combined alphabet is:
//!
//! - `RUNA` (0) and `RUNB` (1): zero-run digits,
//! - `2..=256`: the MTF byte `b` encoded as `b + 1` (for `b >= 1`),
//! - `EOB` (257): end of block.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Total alphabet size.
pub const ALPHA: usize = 258;
/// Zero-run digit "1".
pub const RUNA: u16 = 0;
/// Zero-run digit "2".
pub const RUNB: u16 = 1;
/// End of block.
pub const EOB: u16 = 257;
/// Maximum code length we will emit (rescaling enforces it).
pub const MAX_LEN: u32 = 20;

/// Convert an MTF byte stream into the RUNA/RUNB symbol stream (with EOB).
pub fn to_symbols(mtf: &[u8]) -> Vec<u16> {
    let mut out = Vec::with_capacity(mtf.len() / 2 + 8);
    let mut zeros = 0u64;
    let flush = |zeros: &mut u64, out: &mut Vec<u16>| {
        // Bijective base-2: n -> digits in {1,2} (RUNA=1, RUNB=2).
        let mut n = *zeros;
        while n > 0 {
            if n & 1 == 1 {
                out.push(RUNA);
                n = (n - 1) / 2;
            } else {
                out.push(RUNB);
                n = (n - 2) / 2;
            }
        }
        *zeros = 0;
    };
    for &b in mtf {
        if b == 0 {
            zeros += 1;
        } else {
            flush(&mut zeros, &mut out);
            out.push(b as u16 + 1);
        }
    }
    flush(&mut zeros, &mut out);
    out.push(EOB);
    out
}

/// Convert a symbol stream (ending in EOB) back to MTF bytes.
pub fn from_symbols(syms: &[u16]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(syms.len() * 2);
    let mut run = 0u64;
    let mut place = 1u64;
    let mut in_run = false;
    let flush = |run: &mut u64, place: &mut u64, in_run: &mut bool, out: &mut Vec<u8>| {
        for _ in 0..*run {
            out.push(0);
        }
        *run = 0;
        *place = 1;
        *in_run = false;
    };
    for &s in syms {
        match s {
            RUNA => {
                run += place;
                place *= 2;
                in_run = true;
            }
            RUNB => {
                run += 2 * place;
                place *= 2;
                in_run = true;
            }
            EOB => {
                flush(&mut run, &mut place, &mut in_run, &mut out);
                return Ok(out);
            }
            b => {
                flush(&mut run, &mut place, &mut in_run, &mut out);
                if b as usize >= ALPHA {
                    return Err(CodecError::Malformed("symbol out of range"));
                }
                out.push((b - 1) as u8);
            }
        }
    }
    Err(CodecError::Malformed("missing EOB"))
}

/// Compute canonical code lengths for the given symbol frequencies.
/// Frequencies are rescaled until the deepest code fits in [`MAX_LEN`].
pub fn code_lengths(freqs: &[u64; ALPHA]) -> [u8; ALPHA] {
    let mut f: Vec<u64> = freqs.to_vec();
    loop {
        let lens = huffman_lengths(&f);
        if lens.iter().all(|&l| (l as u32) <= MAX_LEN) {
            let mut out = [0u8; ALPHA];
            out.copy_from_slice(&lens);
            return out;
        }
        // zlib-style flattening: halve (rounding up) and retry.
        for x in f.iter_mut() {
            if *x > 0 {
                *x = x.div_ceil(2);
            }
        }
    }
}

/// Plain Huffman code lengths (unbounded) for non-zero frequencies.
fn huffman_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let present: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lens = vec![0u8; n];
    match present.len() {
        0 => return lens,
        1 => {
            lens[present[0]] = 1;
            return lens;
        }
        _ => {}
    }
    // Heap of (weight, node-id); internal nodes get ids >= n.
    #[derive(PartialEq, Eq)]
    struct Item(u64, usize);
    impl Ord for Item {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Min-heap via reversed compare; tie-break on id for determinism.
            (o.0, o.1).cmp(&(self.0, self.1))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    let mut heap = std::collections::BinaryHeap::new();
    let mut parent = vec![usize::MAX; n + present.len()];
    for &i in &present {
        heap.push(Item(freqs[i], i));
    }
    let mut next_id = n;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.1] = next_id;
        parent[b.1] = next_id;
        heap.push(Item(a.0 + b.0, next_id));
        next_id += 1;
    }
    let root = heap.pop().unwrap().1;
    for &i in &present {
        let mut d = 0u8;
        let mut x = i;
        while x != root {
            x = parent[x];
            d += 1;
        }
        lens[i] = d;
    }
    lens
}

/// Assign canonical codes from lengths: shorter codes first, ties by symbol.
pub fn canonical_codes(lens: &[u8; ALPHA]) -> [u32; ALPHA] {
    let mut pairs: Vec<(u8, usize)> = lens
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 0)
        .map(|(s, &l)| (l, s))
        .collect();
    pairs.sort_unstable();
    let mut codes = [0u32; ALPHA];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for (l, s) in pairs {
        code <<= l - prev_len;
        codes[s] = code;
        code += 1;
        prev_len = l;
    }
    codes
}

/// Encode `syms` with the canonical code described by `lens`.
pub fn encode_symbols(syms: &[u16], lens: &[u8; ALPHA], w: &mut BitWriter) {
    let codes = canonical_codes(lens);
    for &s in syms {
        let l = lens[s as usize];
        debug_assert!(l > 0, "symbol {s} has no code");
        w.put(codes[s as usize], l as u32);
    }
}

/// Canonical decoding tables.
pub struct Decoder {
    /// For each length `l`: (first code of length l, first canonical index).
    limits: Vec<(u32, u32, u32)>, // (len, max_code_exclusive, base_index)
    /// Symbols in canonical order.
    symbols: Vec<u16>,
}

impl Decoder {
    /// Build a decoder from code lengths.
    pub fn new(lens: &[u8; ALPHA]) -> Result<Self, CodecError> {
        let mut pairs: Vec<(u8, u16)> = lens
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(s, &l)| (l, s as u16))
            .collect();
        pairs.sort_unstable();
        if pairs.is_empty() {
            return Err(CodecError::Malformed("empty Huffman table"));
        }
        let symbols: Vec<u16> = pairs.iter().map(|&(_, s)| s).collect();
        let mut limits = Vec::new();
        let mut code = 0u32;
        let mut idx = 0u32;
        let mut prev_len = 0u8;
        let mut i = 0;
        while i < pairs.len() {
            let l = pairs[i].0;
            code <<= l - prev_len;
            let start = i;
            while i < pairs.len() && pairs[i].0 == l {
                i += 1;
            }
            let count = (i - start) as u32;
            limits.push((l as u32, code + count, idx));
            code += count;
            idx += count;
            prev_len = l;
        }
        Ok(Decoder { limits, symbols })
    }

    /// Decode one symbol.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        let mut code = 0u32;
        let mut len = 0u32;
        for &(l, max_code, base) in &self.limits {
            while len < l {
                code = (code << 1) | r.bit().ok_or(CodecError::Truncated)?;
                len += 1;
            }
            if code < max_code {
                // Offset within this length class: count codes before it.
                let first_code = max_code - (self.count_at(l));
                let off = code - first_code;
                return Ok(self.symbols[(base + off) as usize]);
            }
        }
        Err(CodecError::Malformed("invalid Huffman code"))
    }

    fn count_at(&self, l: u32) -> u32 {
        // Number of codes with length l.
        for (i, &(ll, max_code, base)) in self.limits.iter().enumerate() {
            if ll == l {
                let next_base = self
                    .limits
                    .get(i + 1)
                    .map(|&(_, _, b)| b)
                    .unwrap_or(self.symbols.len() as u32);
                let _ = max_code;
                return next_base - base;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freq_of(syms: &[u16]) -> [u64; ALPHA] {
        let mut f = [0u64; ALPHA];
        for &s in syms {
            f[s as usize] += 1;
        }
        f
    }

    fn roundtrip_syms(syms: &[u16]) {
        let f = freq_of(syms);
        let lens = code_lengths(&f);
        let mut w = BitWriter::new();
        encode_symbols(syms, &lens, &mut w);
        let bytes = w.finish();
        let dec = Decoder::new(&lens).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in syms {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn zero_run_bijective_coding() {
        for n in 0..200usize {
            let mtf = vec![0u8; n];
            let syms = to_symbols(&mtf);
            let back = from_symbols(&syms).unwrap();
            assert_eq!(back, mtf, "zero-run of length {n}");
        }
    }

    #[test]
    fn symbols_roundtrip_mixed_content() {
        let mtf = [0u8, 0, 0, 5, 0, 1, 255, 0, 0, 0, 0, 7];
        let syms = to_symbols(&mtf);
        assert_eq!(from_symbols(&syms).unwrap(), mtf);
        assert_eq!(*syms.last().unwrap(), EOB);
    }

    #[test]
    fn missing_eob_is_error() {
        assert!(from_symbols(&[RUNA, RUNB, 5]).is_err());
    }

    #[test]
    fn huffman_single_symbol() {
        roundtrip_syms(&[EOB]);
        roundtrip_syms(&[7, 7, 7, 7, EOB]);
    }

    #[test]
    fn huffman_two_symbols() {
        let syms: Vec<u16> = (0..100).map(|i| if i % 3 == 0 { 5 } else { 9 }).collect();
        roundtrip_syms(&syms);
    }

    #[test]
    fn huffman_skewed_distribution() {
        let mut syms = vec![2u16; 10_000];
        syms.extend_from_slice(&[3, 4, 5, 6, 7, 8, EOB]);
        roundtrip_syms(&syms);
    }

    #[test]
    fn huffman_full_alphabet() {
        let syms: Vec<u16> = (0..ALPHA as u16).cycle().take(5000).collect();
        roundtrip_syms(&syms);
    }

    #[test]
    fn code_lengths_respect_limit() {
        // Fibonacci-ish frequencies force deep trees without rescaling.
        let mut f = [0u64; ALPHA];
        let mut a = 1u64;
        let mut b = 1u64;
        for slot in f.iter_mut().take(50) {
            *slot = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = code_lengths(&f);
        assert!(lens.iter().all(|&l| (l as u32) <= MAX_LEN));
        // Kraft inequality must hold (valid prefix code).
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft violated: {kraft}");
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut f = [0u64; ALPHA];
        for (i, slot) in f.iter_mut().enumerate() {
            *slot = (i as u64 % 17) + 1;
        }
        let lens = code_lengths(&f);
        let codes = canonical_codes(&lens);
        for a in 0..ALPHA {
            for b in 0..ALPHA {
                if a == b || lens[a] == 0 || lens[b] == 0 || lens[a] > lens[b] {
                    continue;
                }
                let shifted = codes[b] >> (lens[b] - lens[a]);
                assert!(shifted != codes[a], "code {a} is a prefix of code {b}");
            }
        }
    }

    #[test]
    fn end_to_end_mtf_to_bits() {
        let mtf: Vec<u8> = (0..2000u32).map(|i| ((i * i) % 7) as u8).collect();
        let syms = to_symbols(&mtf);
        let f = freq_of(&syms);
        let lens = code_lengths(&f);
        let mut w = BitWriter::new();
        encode_symbols(&syms, &lens, &mut w);
        let bytes = w.finish();
        let dec = Decoder::new(&lens).unwrap();
        let mut r = BitReader::new(&bytes);
        let mut got = Vec::new();
        loop {
            let s = dec.decode(&mut r).unwrap();
            got.push(s);
            if s == EOB {
                break;
            }
        }
        assert_eq!(from_symbols(&got).unwrap(), mtf);
    }
}
