//! The per-block codec: RLE1 → BWT → MTF → zero-run symbols → canonical
//! Huffman, with a CRC-checked header. This is the unit of work PBZip2's
//! consumer threads execute outside any critical section.

use crate::bitio::{BitReader, BitWriter};
use crate::bwt::{bwt_decode, bwt_encode};
use crate::crc::crc32;
use crate::huffman::{self, ALPHA, EOB};
use crate::mtf::{mtf_decode, mtf_encode};
use crate::rle::{rle1_decode, rle1_encode};
use crate::CodecError;

/// Block magic ("TZB1" — TLE-repro bzip-like block, v1).
const MAGIC: u32 = 0x545A_4231;

/// Compress one block.
pub fn compress_block(data: &[u8]) -> Vec<u8> {
    let crc = crc32(data);
    let rle = rle1_encode(data);
    let (bwt, primary) = bwt_encode(&rle);
    let mtf = mtf_encode(&bwt);
    let syms = huffman::to_symbols(&mtf);
    let mut freqs = [0u64; ALPHA];
    for &s in &syms {
        freqs[s as usize] += 1;
    }
    let lens = huffman::code_lengths(&freqs);

    let mut w = BitWriter::new();
    w.put_u32(MAGIC);
    w.put_u32(data.len() as u32);
    w.put_u32(crc);
    w.put_u32(rle.len() as u32);
    w.put_u32(primary);
    // Code-length table: 5 bits per symbol (MAX_LEN = 20 < 32).
    for &l in lens.iter() {
        w.put(l as u32, 5);
    }
    huffman::encode_symbols(&syms, &lens, &mut w);
    w.finish()
}

/// Decompress one block produced by [`compress_block`].
pub fn decompress_block(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut r = BitReader::new(data);
    if r.get_u32().ok_or(CodecError::Truncated)? != MAGIC {
        return Err(CodecError::Malformed("bad block magic"));
    }
    let orig_len = r.get_u32().ok_or(CodecError::Truncated)? as usize;
    let crc = r.get_u32().ok_or(CodecError::Truncated)?;
    let rle_len = r.get_u32().ok_or(CodecError::Truncated)? as usize;
    let primary = r.get_u32().ok_or(CodecError::Truncated)?;
    let mut lens = [0u8; ALPHA];
    for l in lens.iter_mut() {
        *l = r.get(5).ok_or(CodecError::Truncated)? as u8;
    }
    if orig_len == 0 {
        return Ok(Vec::new());
    }
    let dec = huffman::Decoder::new(&lens)?;
    let mut syms = Vec::with_capacity(rle_len / 2 + 8);
    loop {
        let s = dec.decode(&mut r)?;
        syms.push(s);
        if s == EOB {
            break;
        }
        if syms.len() > rle_len.saturating_mul(2) + 64 {
            return Err(CodecError::Malformed("runaway symbol stream"));
        }
    }
    let mtf = huffman::from_symbols(&syms)?;
    if mtf.len() != rle_len {
        return Err(CodecError::Malformed("RLE length mismatch"));
    }
    if primary as usize > rle_len {
        return Err(CodecError::Malformed("primary index out of range"));
    }
    let bwt = mtf_decode(&mtf);
    let rle = bwt_decode(&bwt, primary);
    let out = rle1_decode(&rle)?;
    if out.len() != orig_len {
        return Err(CodecError::Malformed("original length mismatch"));
    }
    let actual = crc32(&out);
    if actual != crc {
        return Err(CodecError::CrcMismatch {
            expected: crc,
            actual,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress_block(data);
        let d = decompress_block(&c).expect("decompress failed");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_block() {
        roundtrip(b"");
    }

    #[test]
    fn tiny_blocks() {
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aaaa");
        roundtrip(&[0u8]);
        roundtrip(&[255u8; 3]);
    }

    #[test]
    fn text_block_compresses() {
        let text = b"To be, or not to be, that is the question: Whether 'tis nobler in the mind to suffer the slings and arrows of outrageous fortune.".repeat(50);
        let c = compress_block(&text);
        assert!(
            c.len() < text.len() / 2,
            "expected >2x compression on repetitive text: {} -> {}",
            text.len(),
            c.len()
        );
        roundtrip(&text);
    }

    #[test]
    fn incompressible_block_roundtrips() {
        let mut rng = tle_base::rng::XorShift64::new(1);
        let data: Vec<u8> = (0..50_000).map(|_| rng.next_u64() as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn highly_repetitive_block() {
        roundtrip(&vec![b'x'; 100_000]);
        let mut v = Vec::new();
        for i in 0..1000u32 {
            v.extend_from_slice(&i.to_le_bytes());
        }
        roundtrip(&v);
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut c = compress_block(b"hello world hello world");
        c[0] ^= 0xFF;
        assert!(matches!(
            decompress_block(&c),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn corrupted_payload_detected() {
        let data = b"some moderately long content for the block codec".repeat(20);
        let c = compress_block(&data);
        // Corrupt a byte well past the header.
        let mut bad = c.clone();
        let idx = bad.len() - 3;
        bad[idx] ^= 0x55;
        // CRC mismatch, malformed, or truncated: any Err is fine.
        if let Ok(out) = decompress_block(&bad) {
            panic!("corruption not detected; got {} bytes", out.len());
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        let c = compress_block(b"truncate me please, thanks");
        for cut in [0, 2, 8, c.len() / 2] {
            assert!(decompress_block(&c[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn blocks_are_independent() {
        let a = compress_block(b"first block");
        let b = compress_block(b"second block");
        assert_eq!(decompress_block(&a).unwrap(), b"first block");
        assert_eq!(decompress_block(&b).unwrap(), b"second block");
    }
}
