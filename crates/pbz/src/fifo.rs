//! The TLE-elidable bounded FIFO — PBZip2's inter-stage queue.
//!
//! The critical sections here are exactly what the paper says dominates
//! PBZip2's synchronization: small transactions over queue metadata (head,
//! tail, closed flag), with the payload transferred by pointer and the
//! heavy compression work outside. The paper's Listing 2 discipline is
//! applied: the producer never privatizes (`TM_NoQuiesce`), the consumer
//! quiesces only when it actually extracts an element.

use std::sync::atomic::{AtomicU64, Ordering};
use tle_base::TCell;
use tle_core::{ElidableMutex, ThreadHandle, TxCondvar};

/// A bounded multi-producer multi-consumer queue of boxed items, protected
/// by one elidable lock and two condition variables (not-empty, not-full).
pub struct TleFifo<T: Send> {
    lock: ElidableMutex,
    not_empty: TxCondvar,
    not_full: TxCondvar,
    head: TCell<u64>,
    tail: TCell<u64>,
    closed: TCell<bool>,
    slots: Box<[TCell<*mut ()>]>,
    /// Count of push/pop critical-section executions (paper §VII-A reports
    /// transaction counts for PBZip2).
    ops: AtomicU64,
    _t: std::marker::PhantomData<T>,
}

// SAFETY: items are transferred by ownership through the queue; the raw
// pointers are only materialized back into `Box<T>` by exactly one popper.
unsafe impl<T: Send> Send for TleFifo<T> {}
unsafe impl<T: Send> Sync for TleFifo<T> {}

impl<T: Send> TleFifo<T> {
    /// A queue with capacity `cap`.
    pub fn new(name: &'static str, cap: usize) -> Self {
        assert!(cap > 0);
        TleFifo {
            lock: ElidableMutex::new(name),
            not_empty: TxCondvar::new(),
            not_full: TxCondvar::new(),
            head: TCell::new(0),
            tail: TCell::new(0),
            closed: TCell::new(false),
            slots: (0..cap).map(|_| TCell::new(std::ptr::null_mut())).collect(),
            ops: AtomicU64::new(0),
            _t: std::marker::PhantomData,
        }
    }

    /// The queue's elidable lock, so owners can enroll it in a system's
    /// per-lock adaptive policy ([`TmSystem::adopt_lock`]) or tune its
    /// retry budgets.
    ///
    /// [`TmSystem::adopt_lock`]: tle_core::TmSystem::adopt_lock
    pub fn lock(&self) -> &ElidableMutex {
        &self.lock
    }

    /// Push an item, blocking while the queue is full. Returns the item
    /// back if the queue was closed.
    pub fn push(&self, th: &ThreadHandle, item: Box<T>) -> Result<(), Box<T>> {
        let raw = Box::into_raw(item) as *mut ();
        let cap = self.slots.len() as u64;
        self.ops.fetch_add(1, Ordering::Relaxed);
        let accepted = th.tx(&self.lock).run(|ctx| {
            if ctx.read(&self.closed)? {
                return Ok(false);
            }
            let h = ctx.read(&self.head)?;
            let t = ctx.read(&self.tail)?;
            if t - h >= cap {
                // Full: wait for a consumer. Nothing privatized.
                ctx.no_quiesce();
                return ctx.wait(&self.not_full, None).map(|_| false);
            }
            ctx.write(&self.slots[(t % cap) as usize], raw)?;
            ctx.write(&self.tail, t + 1)?;
            ctx.signal(&self.not_empty)?;
            // Publication only (paper Listing 2: the producer need never
            // quiesce).
            ctx.no_quiesce();
            Ok(true)
        });
        if accepted {
            Ok(())
        } else {
            // SAFETY: the rejected pointer was never published.
            Err(unsafe { Box::from_raw(raw as *mut T) })
        }
    }

    /// Pop an item, blocking while the queue is empty. Returns `None` once
    /// the queue is closed *and* drained.
    pub fn pop(&self, th: &ThreadHandle) -> Option<Box<T>> {
        let cap = self.slots.len() as u64;
        self.ops.fetch_add(1, Ordering::Relaxed);
        let raw = th.tx(&self.lock).run(|ctx| {
            let h = ctx.read(&self.head)?;
            let t = ctx.read(&self.tail)?;
            if h == t {
                if ctx.read(&self.closed)? {
                    return Ok(std::ptr::null_mut());
                }
                // Empty: no data extracted, so no privatization -> skip the
                // drain and wait (paper Listing 2's consumer fast path).
                ctx.no_quiesce();
                return ctx
                    .wait(&self.not_empty, None)
                    .map(|_| std::ptr::null_mut());
            }
            let idx = (h % cap) as usize;
            let p = ctx.read(&self.slots[idx])?;
            ctx.write(&self.slots[idx], std::ptr::null_mut::<()>())?;
            ctx.write(&self.head, h + 1)?;
            ctx.signal(&self.not_full)?;
            // This transaction privatizes the payload: default quiescence
            // applies (no TM_NoQuiesce here).
            Ok(p)
        });
        if raw.is_null() {
            None
        } else {
            // SAFETY: exactly one popper observed this pointer (the slot was
            // cleared in the same transaction), and the pusher's commit
            // happened-before ours.
            Some(unsafe { Box::from_raw(raw as *mut T) })
        }
    }

    /// Close the queue: pushes fail, pops drain then return `None`.
    pub fn close(&self, th: &ThreadHandle) {
        th.tx(&self.lock).run(|ctx| {
            ctx.write(&self.closed, true)?;
            ctx.broadcast(&self.not_empty)?;
            ctx.broadcast(&self.not_full)?;
            ctx.no_quiesce();
            Ok(())
        });
    }

    /// Number of push/pop critical sections executed (statistics).
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Approximate occupancy (racy; diagnostics only).
    pub fn len_approx(&self) -> usize {
        let h = self.head.load_direct();
        let t = self.tail.load_direct();
        t.saturating_sub(h) as usize
    }
}

impl<T: Send> Drop for TleFifo<T> {
    fn drop(&mut self) {
        // Free any items still enqueued.
        let cap = self.slots.len() as u64;
        let h = self.head.load_direct();
        let t = self.tail.load_direct();
        for i in h..t {
            let p = self.slots[(i % cap) as usize].load_direct();
            if !p.is_null() {
                // SAFETY: sole owner during drop.
                unsafe { drop(Box::from_raw(p as *mut T)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tle_core::{AlgoMode, TmSystem, ALL_MODES};

    #[test]
    fn fifo_order_single_thread() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let q: TleFifo<u32> = TleFifo::new("t", 8);
        for i in 0..5u32 {
            q.push(&th, Box::new(i)).unwrap();
        }
        for i in 0..5u32 {
            assert_eq!(*q.pop(&th).unwrap(), i);
        }
        q.close(&th);
        assert!(q.pop(&th).is_none());
    }

    #[test]
    fn push_after_close_returns_item() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let q: TleFifo<String> = TleFifo::new("t", 4);
        q.close(&th);
        let back = q.push(&th, Box::new("hello".to_string()));
        assert_eq!(*back.unwrap_err(), "hello");
    }

    #[test]
    fn drop_frees_remaining_items() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let q: TleFifo<Vec<u8>> = TleFifo::new("t", 8);
        q.push(&th, Box::new(vec![1, 2, 3])).unwrap();
        q.push(&th, Box::new(vec![4, 5])).unwrap();
        drop(q); // must not leak (run under miri/asan to verify)
    }

    #[test]
    fn producer_consumer_every_mode() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let q: Arc<TleFifo<u64>> = Arc::new(TleFifo::new("pc", 4));
            const N: u64 = 2_000;
            const PRODUCERS: u64 = 2;
            const CONSUMERS: usize = 3;

            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let sys = Arc::clone(&sys);
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let th = sys.register();
                        for i in 0..N {
                            q.push(&th, Box::new(p * N + i)).unwrap();
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let sys = Arc::clone(&sys);
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let th = sys.register();
                        let mut got = Vec::new();
                        while let Some(v) = q.pop(&th) {
                            got.push(*v);
                        }
                        got
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            {
                let th = sys.register();
                q.close(&th);
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            let expect: Vec<u64> = (0..PRODUCERS * N).collect();
            assert_eq!(all, expect, "items lost or duplicated under {mode:?}");
        }
    }
}
