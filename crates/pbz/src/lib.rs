//! # tle-pbz — a PBZip2-style parallel block compressor
//!
//! The paper's first application is PBZip2: a parallel BZip2 whose
//! producer/consumer pipeline splits a file into blocks, compresses blocks
//! on worker threads, and reassembles output in order. Its critical sections
//! are small (queue metadata only); compression itself runs outside any
//! lock. This crate rebuilds that whole stack from scratch:
//!
//! - a **BZip2-style block codec** ([`block`]): run-length pre-pass
//!   ([`rle`]), Burrows-Wheeler transform ([`bwt`]), move-to-front
//!   ([`mtf`]), zero-run coding and canonical Huffman ([`huffman`]) over a
//!   bit stream ([`bitio`]), with CRC integrity checks ([`crc`]);
//! - a **serial→parallel→serial pipeline** ([`pipeline`]): producer thread,
//!   worker pool, and an order-restoring writer stage, synchronized by
//!   TLE-elidable locks and transactional condition variables ([`fifo`],
//!   [`sink`]) with the same topology as PBZip2's six locks / six condition
//!   variables;
//! - a **deterministic input generator** ([`datagen`]) standing in for the
//!   paper's 650 MB test file (DESIGN.md substitution §3.5).
//!
//! The pipeline applies the paper's `TM_NoQuiesce` discipline (Listing 2):
//! producers never privatize and skip the drain; consumers quiesce only
//! when they actually extract an element.

pub mod bitio;
pub mod block;
pub mod bwt;
pub mod crc;
pub mod datagen;
pub mod fifo;
pub mod huffman;
pub mod mtf;
pub mod pipeline;
pub mod rle;
pub mod sink;
pub mod stream;

pub use block::{compress_block, decompress_block};
pub use datagen::gen_text;
pub use fifo::TleFifo;
pub use pipeline::{
    compress_parallel, compress_serial, decompress_parallel, decompress_serial, PipelineConfig,
};
pub use sink::OrderedSink;
pub use stream::{StreamCompressor, StreamDecompressor};

/// Errors from the decompression path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended prematurely or a length field is inconsistent.
    Truncated,
    /// A magic number or structural invariant did not match.
    Malformed(&'static str),
    /// The decompressed block failed its CRC check.
    CrcMismatch { expected: u32, actual: u32 },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated compressed stream"),
            CodecError::Malformed(what) => write!(f, "malformed stream: {what}"),
            CodecError::CrcMismatch { expected, actual } => {
                write!(
                    f,
                    "CRC mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}
