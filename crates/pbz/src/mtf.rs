//! Move-to-front coding: converts the BWT's locally-repetitive output into
//! a stream dominated by small values (especially zeros), which the zero-run
//! and Huffman stages then squeeze.

/// MTF-encode `data`.
pub fn mtf_encode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(data.len());
    for &b in data {
        let pos = table.iter().position(|&x| x == b).expect("byte in table") as u8;
        out.push(pos);
        table.copy_within(0..pos as usize, 1);
        table[0] = b;
    }
    out
}

/// MTF-decode `data`.
pub fn mtf_decode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(data.len());
    for &pos in data {
        let b = table[pos as usize];
        out.push(b);
        table.copy_within(0..pos as usize, 1);
        table[0] = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        assert_eq!(mtf_decode(&mtf_encode(data)), data);
    }

    #[test]
    fn empty_and_simple() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"aaabbbccc");
    }

    #[test]
    fn runs_become_zeros() {
        let enc = mtf_encode(b"aaaaab");
        // First 'a' is at position 97, then zeros; 'b' follows 'a' in the
        // shifted table.
        assert_eq!(enc[0], b'a');
        assert!(enc[1..5].iter().all(|&x| x == 0));
        assert_eq!(enc[5], b'b'); // 'b' was shifted to index 98, then 'a' at 0 -> 'b' at 98
    }

    #[test]
    fn recently_seen_bytes_get_small_codes() {
        let enc = mtf_encode(b"abab");
        assert_eq!(enc[2], 1, "'a' is one behind 'b'");
        assert_eq!(enc[3], 1, "'b' is one behind 'a'");
    }

    #[test]
    fn all_bytes_roundtrip() {
        let data: Vec<u8> = (0..=255u8).collect();
        roundtrip(&data);
        let data: Vec<u8> = (0..=255u8).rev().cycle().take(1000).collect();
        roundtrip(&data);
    }

    #[test]
    fn random_roundtrip() {
        let mut rng = tle_base::rng::XorShift64::new(5);
        let data: Vec<u8> = (0..10_000).map(|_| rng.next_u64() as u8).collect();
        roundtrip(&data);
    }
}
