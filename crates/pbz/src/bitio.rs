//! Bit-granular I/O over byte buffers (MSB-first, like BZip2).

/// Write bits into a growing byte vector, most significant bit first.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits accumulated in `acc` (< 8).
    nbits: u32,
    acc: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Append the low `n` bits of `v` (MSB of the field first). `n <= 32`.
    pub fn put(&mut self, v: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || v < (1u32 << n));
        for i in (0..n).rev() {
            let bit = (v >> i) & 1;
            self.acc = (self.acc << 1) | bit as u8;
            self.nbits += 1;
            if self.nbits == 8 {
                self.out.push(self.acc);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Append a full 32-bit value.
    pub fn put_u32(&mut self, v: u32) {
        self.put(v >> 16, 16);
        self.put(v & 0xFFFF, 16);
    }

    /// Number of whole+partial bytes written so far.
    pub fn byte_len(&self) -> usize {
        self.out.len() + usize::from(self.nbits > 0)
    }

    /// Pad to a byte boundary with zero bits and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.acc <<= 8 - self.nbits;
            self.out.push(self.acc);
        }
        self.out
    }
}

/// Read bits from a byte slice, MSB-first.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Remaining bits.
    pub fn remaining(&self) -> usize {
        self.data.len() * 8 - self.pos
    }

    /// Read one bit; `None` at end of input.
    #[inline]
    pub fn bit(&mut self) -> Option<u32> {
        let byte = *self.data.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit as u32)
    }

    /// Read `n` bits as an unsigned value; `None` if fewer remain.
    pub fn get(&mut self, n: u32) -> Option<u32> {
        debug_assert!(n <= 32);
        if self.remaining() < n as usize {
            return None;
        }
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.bit()?;
        }
        Some(v)
    }

    /// Read a full 32-bit value.
    pub fn get_u32(&mut self) -> Option<u32> {
        let hi = self.get(16)?;
        let lo = self.get(16)?;
        Some((hi << 16) | lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [1u32, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            w.put(b, 1);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_fields_roundtrip() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xFFFF, 16);
        w.put(0, 5);
        w.put(0x12345678 & 0x7FFFFFFF, 31);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3), Some(0b101));
        assert_eq!(r.get(16), Some(0xFFFF));
        assert_eq!(r.get(5), Some(0));
        assert_eq!(r.get(31), Some(0x12345678 & 0x7FFFFFFF));
    }

    #[test]
    fn u32_roundtrip() {
        let mut w = BitWriter::new();
        for v in [0u32, 1, 0xDEADBEEF, u32::MAX] {
            w.put_u32(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in [0u32, 1, 0xDEADBEEF, u32::MAX] {
            assert_eq!(r.get_u32(), Some(v));
        }
    }

    #[test]
    fn reading_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.put(0b11, 2);
        let bytes = w.finish(); // one padded byte
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(8), Some(0b1100_0000));
        assert_eq!(r.get(1), None);
        assert_eq!(r.bit(), None);
    }

    #[test]
    fn byte_len_counts_partial() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.put(1, 1);
        assert_eq!(w.byte_len(), 1);
        w.put(0x7F, 7);
        assert_eq!(w.byte_len(), 1);
        w.put(1, 1);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn empty_writer_produces_empty_buffer() {
        assert!(BitWriter::new().finish().is_empty());
    }
}
