//! The order-restoring output stage — PBZip2's serial writer.
//!
//! Consumer threads finish blocks out of order; the writer stage must emit
//! them by block id. Each consumer waits its turn on an elided critical
//! section (`next == my_id`), appends its output while it exclusively owns
//! the turn, then advances the turn and broadcasts — the same
//! lock/condition-variable protocol PBZip2 uses around its output file.

use parking_lot::Mutex;
use tle_base::TCell;
use tle_core::{ElidableMutex, ThreadHandle, TxCondvar};

/// Collects byte chunks in id order.
pub struct OrderedSink {
    lock: ElidableMutex,
    turn_cv: TxCondvar,
    next: TCell<u64>,
    out: Mutex<Vec<u8>>,
}

impl OrderedSink {
    /// An empty sink expecting ids starting at 0.
    pub fn new() -> Self {
        OrderedSink {
            lock: ElidableMutex::new("ordered-sink"),
            turn_cv: TxCondvar::new(),
            next: TCell::new(0),
            out: Mutex::new(Vec::new()),
        }
    }

    /// The sink's elidable lock, so owners can enroll it in a system's
    /// per-lock adaptive policy ([`TmSystem::adopt_lock`]).
    ///
    /// [`TmSystem::adopt_lock`]: tle_core::TmSystem::adopt_lock
    pub fn lock(&self) -> &ElidableMutex {
        &self.lock
    }

    /// Submit chunk `id`; blocks until all earlier ids have been written.
    pub fn submit(&self, th: &ThreadHandle, id: u64, data: &[u8]) {
        // Wait for our turn.
        th.tx(&self.lock).run(|ctx| {
            if ctx.read(&self.next)? != id {
                // Reading only: nothing privatized.
                ctx.no_quiesce();
                return ctx.wait(&self.turn_cv, None);
            }
            Ok(())
        });
        // We exclusively own the turn: write outside any transaction (the
        // paper's privatization-by-turn pattern; in PBZip2 this is the
        // file write, inherently non-transactional).
        {
            let mut out = self.out.lock();
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(data);
        }
        // Pass the turn.
        th.tx(&self.lock).run(|ctx| {
            ctx.write(&self.next, id + 1)?;
            ctx.broadcast(&self.turn_cv)?;
            ctx.no_quiesce();
            Ok(())
        });
    }

    /// The id the sink expects next.
    pub fn next_id(&self) -> u64 {
        self.next.load_direct()
    }

    /// Take the assembled output (call after all submissions).
    pub fn into_bytes(self) -> Vec<u8> {
        self.out.into_inner()
    }

    /// Parse a sink-framed stream back into chunks.
    pub fn split_frames(bytes: &[u8]) -> Result<Vec<&[u8]>, crate::CodecError> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            if i + 8 > bytes.len() {
                return Err(crate::CodecError::Truncated);
            }
            let len = u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap()) as usize;
            i += 8;
            if i + len > bytes.len() {
                return Err(crate::CodecError::Truncated);
            }
            out.push(&bytes[i..i + len]);
            i += len;
        }
        Ok(out)
    }
}

impl Default for OrderedSink {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tle_core::{AlgoMode, TmSystem, ALL_MODES};

    #[test]
    fn in_order_submission() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let sink = OrderedSink::new();
        sink.submit(&th, 0, b"aa");
        sink.submit(&th, 1, b"bbb");
        sink.submit(&th, 2, b"");
        let bytes = sink.into_bytes();
        let frames = OrderedSink::split_frames(&bytes).unwrap();
        assert_eq!(frames, vec![b"aa".as_slice(), b"bbb", b""]);
    }

    #[test]
    fn out_of_order_submission_is_serialized_every_mode() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let sink = Arc::new(OrderedSink::new());
            const N: u64 = 32;
            let handles: Vec<_> = (0..N)
                .map(|id| {
                    let sys = Arc::clone(&sys);
                    let sink = Arc::clone(&sink);
                    std::thread::spawn(move || {
                        let th = sys.register();
                        // Reverse-ish start order to force waiting.
                        std::thread::sleep(std::time::Duration::from_micros((N - id) * 100));
                        let payload = vec![id as u8; (id % 5) as usize + 1];
                        sink.submit(&th, id, &payload);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let sink = Arc::try_unwrap(sink).ok().expect("all submitters done");
            let bytes = sink.into_bytes();
            let frames = OrderedSink::split_frames(&bytes).unwrap();
            assert_eq!(frames.len(), N as usize);
            for (id, f) in frames.iter().enumerate() {
                assert!(
                    f.iter().all(|&b| b == id as u8),
                    "frame {id} out of order under {mode:?}"
                );
            }
        }
    }

    #[test]
    fn split_frames_rejects_truncation() {
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let th = sys.register();
        let sink = OrderedSink::new();
        sink.submit(&th, 0, b"hello");
        let bytes = sink.into_bytes();
        assert!(OrderedSink::split_frames(&bytes[..bytes.len() - 1]).is_err());
        assert!(OrderedSink::split_frames(&bytes[..4]).is_err());
    }
}
