//! CRC-32 (IEEE 802.3 polynomial), table-driven — the integrity check each
//! compressed block carries, as in BZip2.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }

    #[test]
    fn long_input_stable() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31) as u8).collect();
        let c1 = crc32(&data);
        let c2 = crc32(&data);
        assert_eq!(c1, c2);
        assert_ne!(c1, 0);
    }
}
