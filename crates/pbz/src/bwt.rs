//! The Burrows-Wheeler transform.
//!
//! Forward transform via prefix-doubling suffix sorting (O(n log² n) with
//! comparison sorts, n ≤ block size) over the input plus a virtual sentinel;
//! inverse via the standard LF-mapping counting construction. This is the
//! heart of the per-block compression work that PBZip2 parallelizes — the
//! compute that happens *outside* the critical sections the paper elides.

/// Forward BWT. Returns the transformed bytes and the primary index (the
/// row of the sentinel-terminated original string).
pub fn bwt_encode(data: &[u8]) -> (Vec<u8>, u32) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    // Suffix array over data + sentinel (sentinel sorts first and is
    // represented implicitly by suffix index n).
    let sa = suffix_array(data);
    // BWT over the n+1 rotations of data+$, dropping the column entry for
    // the sentinel itself (we record where it was instead).
    let mut out = Vec::with_capacity(n);
    let mut primary = 0u32;
    for (row, &s) in sa.iter().enumerate() {
        if s == 0 {
            // The rotation starting at 0 is preceded by the sentinel; its
            // BWT char would be '$'. Record the row and emit nothing.
            primary = row as u32;
        } else {
            out.push(data[s - 1]);
        }
    }
    debug_assert_eq!(out.len(), n);
    (out, primary)
}

/// Inverse BWT given the output of [`bwt_encode`].
///
/// Works on the conceptual (n+1)-row sorted-rotation matrix of `text + $`:
/// the first column `F` is `$` followed by the sorted bytes of the BWT; the
/// last column `L` is the BWT with `$` re-inserted at row `primary`. The
/// classic occurrence-matching property links the i-th occurrence of byte
/// `c` in `L` (at matrix row `r`) with the i-th occurrence of `c` in `F`
/// (at row `p`): rotation `p` is rotation `r` shifted one position earlier
/// in the text. `next[p] = r` therefore walks the text forward.
pub fn bwt_decode(bwt: &[u8], primary: u32) -> Vec<u8> {
    let n = bwt.len();
    if n == 0 {
        return Vec::new();
    }
    let primary = primary as usize;
    let mut count = [0usize; 256];
    for &b in bwt {
        count[b as usize] += 1;
    }
    // First-column start offsets; the sentinel occupies F row 0.
    let mut starts = [0usize; 256];
    let mut acc = 1usize;
    for b in 0..256 {
        starts[b] = acc;
        acc += count[b];
    }
    let mut next = vec![0u32; n + 1];
    let mut fchar = vec![0u8; n + 1];
    // The sentinel's occurrence pair: F position 0 links to L row `primary`.
    next[0] = primary as u32;
    let mut seen = [0usize; 256];
    for (i, &b) in bwt.iter().enumerate() {
        // BWT index i maps to matrix row i, bumped past the sentinel row.
        let row = if i < primary { i } else { i + 1 };
        let p = starts[b as usize] + seen[b as usize];
        seen[b as usize] += 1;
        next[p] = row as u32;
        fchar[p] = b;
    }
    // Walk forward from the sentinel row, emitting first-column characters.
    let mut out = Vec::with_capacity(n);
    let mut row = next[0] as usize;
    for _ in 0..n {
        out.push(fchar[row]);
        row = next[row] as usize;
    }
    out
}

/// Suffix array of `data + $` (sentinel smaller than every byte), prefix
/// doubling with comparison sorts. Returned array has length n+1 and starts
/// with the sentinel suffix (index n).
pub fn suffix_array(data: &[u8]) -> Vec<usize> {
    let n = data.len() + 1; // includes sentinel suffix
    let mut sa: Vec<usize> = (0..n).collect();
    // rank[i]: current bucket of suffix i. Sentinel = 0, bytes shifted by 1.
    let mut rank: Vec<u32> = (0..n)
        .map(|i| if i == n - 1 { 0 } else { data[i] as u32 + 1 })
        .collect();
    let mut tmp = vec![0u32; n];
    let mut k = 1usize;
    let key = |rank: &Vec<u32>, i: usize, k: usize| -> (u32, u32) {
        let second = if i + k < rank.len() { rank[i + k] } else { 0 };
        (rank[i], second)
    };
    while k < n {
        sa.sort_unstable_by_key(|&i| key(&rank, i, k));
        tmp[sa[0]] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur] = tmp[prev] + u32::from(key(&rank, prev, k) != key(&rank, cur, k));
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1]] as usize == n - 1 {
            break; // all distinct
        }
        k *= 2;
    }
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let (bwt, primary) = bwt_encode(data);
        assert_eq!(bwt.len(), data.len());
        let dec = bwt_decode(&bwt, primary);
        assert_eq!(dec, data, "BWT roundtrip failed for {data:?}");
    }

    #[test]
    fn classic_banana() {
        // Known transform of "banana" with sentinel: "annb$aa" minus '$'.
        let (bwt, _primary) = bwt_encode(b"banana");
        assert_eq!(&bwt, b"annbaa");
        roundtrip(b"banana");
    }

    #[test]
    fn empty_and_single() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"\0");
        roundtrip(&[255]);
    }

    #[test]
    fn repeated_bytes() {
        roundtrip(b"aaaaaaaaaa");
        roundtrip(&[0u8; 100]);
        roundtrip(&[255u8; 37]);
    }

    #[test]
    fn alternating_and_periodic() {
        roundtrip(b"ababababab");
        roundtrip(b"abcabcabcabc");
        roundtrip(b"aabbaabbaabb");
    }

    #[test]
    fn all_byte_values_present() {
        let data: Vec<u8> = (0..=255u8).collect();
        roundtrip(&data);
        let rev: Vec<u8> = (0..=255u8).rev().collect();
        roundtrip(&rev);
    }

    #[test]
    fn english_text() {
        roundtrip(b"the quick brown fox jumps over the lazy dog");
        roundtrip(b"The Burrows-Wheeler transform rearranges a character string into runs of similar characters.");
    }

    #[test]
    fn random_blocks() {
        let mut rng = tle_base::rng::XorShift64::new(2024);
        for len in [2usize, 3, 7, 64, 1000, 4096] {
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn suffix_array_is_sorted() {
        let data = b"mississippi";
        let sa = suffix_array(data);
        assert_eq!(sa.len(), data.len() + 1);
        assert_eq!(sa[0], data.len(), "sentinel suffix sorts first");
        for w in sa.windows(2) {
            let a = &data[w[0]..];
            let b = &data[w[1]..];
            // Compare with implicit sentinel: shorter prefix-equal suffix
            // sorts first.
            assert!(
                a < b || (b.starts_with(a) && a.len() < b.len()),
                "suffixes out of order: {a:?} !< {b:?}"
            );
        }
    }

    #[test]
    fn bwt_groups_similar_context() {
        // For text with repeated contexts, the BWT output should contain
        // longer runs than the input — the property MTF+RLE exploit.
        let text = b"she sells sea shells by the sea shore she sells sea shells by the sea shore"
            .repeat(4);
        let (bwt, _) = bwt_encode(&text);
        let runs = |s: &[u8]| s.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            runs(&bwt) > runs(&text) * 2,
            "BWT did not concentrate runs: {} vs {}",
            runs(&bwt),
            runs(&text)
        );
    }
}
