//! Per-thread publication slots.
//!
//! Both TM flavours need a bounded registry of participating threads:
//!
//! - the STM uses a slot per thread to **publish the start timestamp** of its
//!   running transaction, which is what the post-commit *quiescence* drain
//!   (paper §IV) polls;
//! - the HTM simulator uses slot indices as hardware-transaction identities
//!   inside its per-cache-line reader bitmaps (hence the 64-slot ceiling).
//!
//! Slots are claimed with a CAS and released on drop, so short-lived worker
//! threads (the apps spawn pools per run) recycle them safely.

use crate::Padded;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Maximum number of simultaneously registered threads.
pub const MAX_SLOTS: usize = 64;

/// Published value meaning "no transaction in flight".
pub const INACTIVE: u64 = u64::MAX;

/// The slot registry. See the module docs.
pub struct SlotRegistry {
    claimed: [AtomicBool; MAX_SLOTS],
    values: [Padded<AtomicU64>; MAX_SLOTS],
    /// One past the highest slot index ever claimed; scans stop here.
    high_water: AtomicUsize,
}

impl SlotRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SlotRegistry {
            claimed: std::array::from_fn(|_| AtomicBool::new(false)),
            values: std::array::from_fn(|_| Padded(AtomicU64::new(INACTIVE))),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Claim a free slot. Panics if all [`MAX_SLOTS`] slots are in use —
    /// registering more than 64 concurrent TM threads is outside the
    /// simulator envelope.
    pub fn register(&self) -> Slot<'_> {
        let idx = self.register_raw().unwrap_or_else(|| {
            panic!("SlotRegistry exhausted: more than {MAX_SLOTS} concurrent TM threads")
        });
        Slot { reg: self, idx }
    }

    /// Claim a free slot by index, without RAII. Callers that hold the
    /// registry behind an `Arc` (the `tle-core` thread handles) use this and
    /// pair it with [`SlotRegistry::unregister_raw`].
    pub fn register_raw(&self) -> Option<usize> {
        for idx in 0..MAX_SLOTS {
            if !self.claimed[idx].load(Ordering::Relaxed)
                && self.claimed[idx]
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.values[idx].store(INACTIVE, Ordering::Release);
                self.high_water.fetch_max(idx + 1, Ordering::AcqRel);
                return Some(idx);
            }
        }
        None
    }

    /// Release a slot claimed with [`SlotRegistry::register_raw`].
    pub fn unregister_raw(&self, idx: usize) {
        self.values[idx].store(INACTIVE, Ordering::Release);
        self.claimed[idx].store(false, Ordering::Release);
    }

    /// Publish a value into slot `idx` (raw-index flavour of
    /// [`Slot::publish`]). `SeqCst` so that the quiescence drain and slot
    /// publication interleave in a single total order.
    #[inline]
    pub fn publish_raw(&self, idx: usize, v: u64) {
        self.values[idx].store(v, Ordering::SeqCst);
    }

    /// Read the published value of slot `idx`.
    #[inline]
    pub fn value(&self, idx: usize) -> u64 {
        self.values[idx].load(Ordering::Acquire)
    }

    /// Iterate over `(idx, value)` of every ever-claimed slot. Unclaimed or
    /// released slots read as [`INACTIVE`], so callers can treat the scan as
    /// "all possibly active transactions".
    pub fn scan(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        let hw = self.high_water.load(Ordering::Acquire);
        (0..hw).map(move |i| (i, self.value(i)))
    }

    /// Number of currently claimed slots (diagnostics only).
    pub fn claimed_count(&self) -> usize {
        self.claimed
            .iter()
            .filter(|c| c.load(Ordering::Relaxed))
            .count()
    }
}

impl Default for SlotRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// A claimed slot; releases itself (and resets the published value) on drop.
pub struct Slot<'r> {
    reg: &'r SlotRegistry,
    idx: usize,
}

impl Slot<'_> {
    /// This slot's index (the transaction/thread identity).
    #[inline]
    pub fn idx(&self) -> usize {
        self.idx
    }

    /// Publish a value (for STM: the running transaction's start timestamp).
    #[inline]
    pub fn publish(&self, v: u64) {
        self.reg.values[self.idx].store(v, Ordering::SeqCst);
    }

    /// Publish [`INACTIVE`].
    #[inline]
    pub fn deactivate(&self) {
        self.publish(INACTIVE);
    }

    /// Read back this slot's published value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.reg.value(self.idx)
    }
}

impl Drop for Slot<'_> {
    fn drop(&mut self) {
        self.reg.values[self.idx].store(INACTIVE, Ordering::Release);
        self.reg.claimed[self.idx].store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_claims_distinct_slots() {
        let r = SlotRegistry::new();
        let a = r.register();
        let b = r.register();
        let c = r.register();
        assert_ne!(a.idx(), b.idx());
        assert_ne!(b.idx(), c.idx());
    }

    #[test]
    fn dropped_slots_are_recycled_and_read_inactive() {
        let r = SlotRegistry::new();
        let idx = {
            let s = r.register();
            s.publish(17);
            assert_eq!(r.value(s.idx()), 17);
            s.idx()
        };
        assert_eq!(r.value(idx), INACTIVE, "drop must reset the value");
        let s2 = r.register();
        assert_eq!(s2.idx(), idx, "lowest free slot is reused");
    }

    #[test]
    fn scan_covers_high_water_mark() {
        let r = SlotRegistry::new();
        let a = r.register();
        let b = r.register();
        a.publish(5);
        b.publish(9);
        let seen: Vec<(usize, u64)> = r.scan().collect();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[a.idx()].1, 5);
        assert_eq!(seen[b.idx()].1, 9);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn registry_panics_when_full() {
        let r = SlotRegistry::new();
        let mut slots = Vec::new();
        for _ in 0..MAX_SLOTS {
            slots.push(r.register());
        }
        let _overflow = r.register();
    }

    #[test]
    fn concurrent_registration_is_unique() {
        let r = std::sync::Arc::new(SlotRegistry::new());
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(16));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                let b = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    let s = r.register();
                    let idx = s.idx();
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    idx
                })
            })
            .collect();
        let mut ids: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16, "slot ids must be unique while held");
    }
}
