//! The serial-irrevocability gate.
//!
//! GCC's libitm ensures progress and supports unsafe (irrevocable)
//! operations by *serializing*: it stops admitting concurrent transactions,
//! waits for in-flight ones to drain, runs the irrevocable work alone, and
//! then re-opens the floodgates (paper §II-B). The same mechanism is the
//! fallback path for hardware transactions that keep aborting (paper §VII:
//! "HTM results fall back to a serial mode after hardware transactions fail
//! twice").
//!
//! [`Gate`] is that mechanism: a writer-preferring reader/writer gate where
//! "readers" are concurrent transactions and the single "writer" is serial
//! mode. The fast path is one CAS; blocked sides spin briefly and then
//! yield, because serial sections are short but not bounded.

use crate::sched::{self, YieldPoint};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bit set while a serial section runs.
const SERIAL_HELD: u64 = 1 << 63;
/// Serial waiter count lives in bits 32..63.
const WAITER_UNIT: u64 = 1 << 32;
const WAITER_MASK: u64 = ((1u64 << 31) - 1) << 32;
/// Active concurrent-transaction count lives in bits 0..32.
const ACTIVE_MASK: u64 = (1 << 32) - 1;

/// The global concurrency gate. See the module docs.
#[derive(Debug, Default)]
pub struct Gate {
    state: AtomicU64,
}

/// RAII token for a concurrent-side entry.
#[must_use = "dropping the token exits the concurrent side"]
pub struct ConcurrentToken<'g> {
    gate: &'g Gate,
}

/// RAII token for the exclusive serial side.
#[must_use = "dropping the token exits serial mode"]
pub struct SerialToken<'g> {
    gate: &'g Gate,
}

impl Gate {
    /// A fresh, open gate.
    pub fn new() -> Self {
        Gate::default()
    }

    /// Enter the concurrent side; blocks while a serial section runs or is
    /// pending (writer preference, so serial requests are not starved).
    pub fn enter_concurrent(&self) -> ConcurrentToken<'_> {
        sched::yield_point(YieldPoint::SerialGate);
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & (SERIAL_HELD | WAITER_MASK) == 0 {
                if self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    return ConcurrentToken { gate: self };
                }
            } else {
                Self::pause(&mut spins);
            }
        }
    }

    /// Enter the exclusive serial side; drains concurrent transactions first.
    pub fn enter_serial(&self) -> SerialToken<'_> {
        sched::yield_point(YieldPoint::SerialGate);
        self.state.fetch_add(WAITER_UNIT, Ordering::AcqRel);
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & SERIAL_HELD == 0 && s & ACTIVE_MASK == 0 {
                let target = (s - WAITER_UNIT) | SERIAL_HELD;
                if self
                    .state
                    .compare_exchange_weak(s, target, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    return SerialToken { gate: self };
                }
            } else {
                Self::pause(&mut spins);
            }
        }
    }

    /// Whether a serial section currently holds the gate (diagnostics).
    pub fn serial_held(&self) -> bool {
        self.state.load(Ordering::Acquire) & SERIAL_HELD != 0
    }

    /// Number of transactions currently on the concurrent side.
    pub fn active_count(&self) -> usize {
        (self.state.load(Ordering::Acquire) & ACTIVE_MASK) as usize
    }

    #[inline]
    fn pause(spins: &mut u32) {
        *spins += 1;
        sched::spin_hint(YieldPoint::SerialGate);
        if *spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

impl Drop for ConcurrentToken<'_> {
    fn drop(&mut self) {
        self.gate.state.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Drop for SerialToken<'_> {
    fn drop(&mut self) {
        self.gate.state.fetch_and(!SERIAL_HELD, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn concurrent_entries_coexist() {
        let g = Gate::new();
        let a = g.enter_concurrent();
        let b = g.enter_concurrent();
        assert_eq!(g.active_count(), 2);
        drop(a);
        drop(b);
        assert_eq!(g.active_count(), 0);
    }

    #[test]
    fn serial_excludes_everyone() {
        let g = Arc::new(Gate::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let g = Arc::clone(&g);
                let counter = Arc::clone(&counter);
                let max_seen = Arc::clone(&max_seen);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if i % 2 == 0 {
                            let _t = g.enter_concurrent();
                            counter.fetch_add(1, Ordering::SeqCst);
                            counter.fetch_sub(1, Ordering::SeqCst);
                        } else {
                            let _t = g.enter_serial();
                            let inside = counter.load(Ordering::SeqCst);
                            max_seen.fetch_max(inside, Ordering::SeqCst);
                            assert_eq!(inside, 0, "serial section saw concurrent activity");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn serial_sections_are_mutually_exclusive() {
        let g = Arc::new(Gate::new());
        let in_serial = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                let in_serial = Arc::clone(&in_serial);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let _t = g.enter_serial();
                        assert_eq!(in_serial.fetch_add(1, Ordering::SeqCst), 0);
                        in_serial.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn gate_reopens_after_serial() {
        let g = Gate::new();
        {
            let _s = g.enter_serial();
            assert!(g.serial_held());
        }
        assert!(!g.serial_held());
        let _c = g.enter_concurrent();
        assert_eq!(g.active_count(), 1);
    }
}
