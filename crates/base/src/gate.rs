//! The serial-irrevocability gate.
//!
//! GCC's libitm ensures progress and supports unsafe (irrevocable)
//! operations by *serializing*: it stops admitting concurrent transactions,
//! waits for in-flight ones to drain, runs the irrevocable work alone, and
//! then re-opens the floodgates (paper §II-B). The same mechanism is the
//! fallback path for hardware transactions that keep aborting (paper §VII:
//! "HTM results fall back to a serial mode after hardware transactions fail
//! twice").
//!
//! [`Gate`] is that mechanism: a writer-preferring reader/writer gate where
//! "readers" are concurrent transactions and the single "writer" is serial
//! mode. The fast path is one CAS; blocked sides spin briefly and then
//! yield, because serial sections are short but not bounded.
//!
//! ## Waker-driven entry
//!
//! The async runner (`critical_async` in `tle-core`) must not spin-or-yield
//! an executor worker while the gate is closed, so the gate also exposes
//! non-blocking and pollable forms: [`Gate::try_enter_concurrent`],
//! [`Gate::request_serial`] + [`SerialRequest::try_acquire`], and the
//! futures [`Gate::enter_concurrent_async`] / [`Gate::enter_serial_async`].
//! Pending entries park a task [`Waker`] in a side registry; the three state
//! transitions that can open the gate for someone — serial exit, the last
//! concurrent exit while serial waiters queue, and an abandoned serial
//! request — wake the whole registry, and woken futures re-run the ordinary
//! try-path (the classic try → register → re-try → `Pending` protocol, so a
//! transition racing with registration is never lost).

use crate::sched::{self, YieldPoint};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::task::{Context, Poll, Waker};

/// Bit set while a serial section runs.
const SERIAL_HELD: u64 = 1 << 63;
/// Serial waiter count lives in bits 32..63.
const WAITER_UNIT: u64 = 1 << 32;
const WAITER_MASK: u64 = ((1u64 << 31) - 1) << 32;
/// Active concurrent-transaction count lives in bits 0..32.
const ACTIVE_MASK: u64 = (1 << 32) - 1;

/// The global concurrency gate. See the module docs.
#[derive(Debug, Default)]
pub struct Gate {
    state: AtomicU64,
    /// Wakers parked by pollable entries; drained wholesale on any gate
    /// transition that could admit a waiter.
    wakers: Mutex<Vec<Waker>>,
    /// Fast-path guard so the sync paths never touch the waker mutex.
    has_wakers: AtomicBool,
}

/// RAII token for a concurrent-side entry.
#[must_use = "dropping the token exits the concurrent side"]
pub struct ConcurrentToken<'g> {
    gate: &'g Gate,
}

/// RAII token for the exclusive serial side.
#[must_use = "dropping the token exits serial mode"]
pub struct SerialToken<'g> {
    gate: &'g Gate,
}

/// A pending claim on the serial side ([`Gate::request_serial`]): counts as
/// a waiter (blocking new concurrent entries) until acquired or abandoned.
#[must_use = "dropping the request abandons the serial claim"]
pub struct SerialRequest<'g> {
    gate: &'g Gate,
    granted: bool,
}

impl<'g> SerialRequest<'g> {
    /// Attempt to take the serial side now: succeeds only when no serial
    /// section runs and the concurrent side has drained. On success the
    /// waiter unit is consumed atomically with setting `SERIAL_HELD`.
    pub fn try_acquire(&mut self) -> Option<SerialToken<'g>> {
        debug_assert!(!self.granted, "serial request acquired twice");
        loop {
            let s = self.gate.state.load(Ordering::Acquire);
            if s & SERIAL_HELD != 0 || s & ACTIVE_MASK != 0 {
                return None;
            }
            let target = (s - WAITER_UNIT) | SERIAL_HELD;
            if self
                .gate
                .state
                .compare_exchange_weak(s, target, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.granted = true;
                return Some(SerialToken { gate: self.gate });
            }
            std::hint::spin_loop();
        }
    }
}

impl Drop for SerialRequest<'_> {
    fn drop(&mut self) {
        if !self.granted {
            self.gate.state.fetch_sub(WAITER_UNIT, Ordering::AcqRel);
            // Removing a waiter unit may unblock concurrent entries that
            // were refused under writer preference.
            self.gate.wake_all();
        }
    }
}

/// Future returned by [`Gate::enter_concurrent_async`].
pub struct EnterConcurrent<'g> {
    gate: &'g Gate,
}

impl<'g> Future for EnterConcurrent<'g> {
    type Output = ConcurrentToken<'g>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.gate.poll_enter_concurrent(cx)
    }
}

/// Future returned by [`Gate::enter_serial_async`].
pub struct EnterSerial<'g> {
    gate: &'g Gate,
    req: Option<SerialRequest<'g>>,
}

impl<'g> Future for EnterSerial<'g> {
    type Output = SerialToken<'g>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let gate = self.gate;
        let req = self.req.get_or_insert_with(|| gate.request_serial());
        if let Some(t) = req.try_acquire() {
            self.req = None; // granted: drop is a no-op
            return Poll::Ready(t);
        }
        gate.register_waker(cx.waker());
        let req = self.req.as_mut().expect("request installed above");
        match req.try_acquire() {
            Some(t) => {
                self.req = None;
                Poll::Ready(t)
            }
            None => Poll::Pending,
        }
    }
}

impl Gate {
    /// A fresh, open gate.
    pub fn new() -> Self {
        Gate::default()
    }

    /// Enter the concurrent side; blocks while a serial section runs or is
    /// pending (writer preference, so serial requests are not starved).
    pub fn enter_concurrent(&self) -> ConcurrentToken<'_> {
        sched::yield_point(YieldPoint::SerialGate);
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & (SERIAL_HELD | WAITER_MASK) == 0 {
                if self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    return ConcurrentToken { gate: self };
                }
            } else {
                Self::pause(&mut spins);
            }
        }
    }

    /// Enter the exclusive serial side; drains concurrent transactions first.
    pub fn enter_serial(&self) -> SerialToken<'_> {
        sched::yield_point(YieldPoint::SerialGate);
        self.state.fetch_add(WAITER_UNIT, Ordering::AcqRel);
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & SERIAL_HELD == 0 && s & ACTIVE_MASK == 0 {
                let target = (s - WAITER_UNIT) | SERIAL_HELD;
                if self
                    .state
                    .compare_exchange_weak(s, target, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    return SerialToken { gate: self };
                }
            } else {
                Self::pause(&mut spins);
            }
        }
    }

    /// Non-blocking concurrent entry: `None` while a serial section runs or
    /// is pending. Retries only on CAS races with other concurrent entries,
    /// so it never waits on another thread.
    pub fn try_enter_concurrent(&self) -> Option<ConcurrentToken<'_>> {
        sched::yield_point(YieldPoint::SerialGate);
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & (SERIAL_HELD | WAITER_MASK) != 0 {
                return None;
            }
            if self
                .state
                .compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(ConcurrentToken { gate: self });
            }
            std::hint::spin_loop();
        }
    }

    /// Join the serial-waiter queue without blocking. The returned request
    /// holds a waiter unit (so new concurrent entries are refused — writer
    /// preference) until it is either acquired or dropped; dropping an
    /// unacquired request removes the unit and re-wakes pending entries.
    pub fn request_serial(&self) -> SerialRequest<'_> {
        sched::yield_point(YieldPoint::SerialGate);
        self.state.fetch_add(WAITER_UNIT, Ordering::AcqRel);
        SerialRequest {
            gate: self,
            granted: false,
        }
    }

    /// Pollable concurrent entry (the body of [`Gate::enter_concurrent_async`]).
    pub fn poll_enter_concurrent(&self, cx: &mut Context<'_>) -> Poll<ConcurrentToken<'_>> {
        if let Some(t) = self.try_enter_concurrent() {
            return Poll::Ready(t);
        }
        self.register_waker(cx.waker());
        // Re-try after registering: a serial exit between the first try and
        // the registration must not strand this task.
        match self.try_enter_concurrent() {
            Some(t) => Poll::Ready(t),
            None => Poll::Pending,
        }
    }

    /// Future form of [`Gate::enter_concurrent`].
    pub fn enter_concurrent_async(&self) -> EnterConcurrent<'_> {
        EnterConcurrent { gate: self }
    }

    /// Future form of [`Gate::enter_serial`]. The waiter unit is taken on
    /// first poll and released if the future is dropped unacquired.
    pub fn enter_serial_async(&self) -> EnterSerial<'_> {
        EnterSerial {
            gate: self,
            req: None,
        }
    }

    fn register_waker(&self, w: &Waker) {
        let mut ws = self.wakers.lock().expect("gate waker registry poisoned");
        self.has_wakers.store(true, Ordering::Release);
        ws.push(w.clone());
    }

    fn wake_all(&self) {
        if !self.has_wakers.load(Ordering::Acquire) {
            return;
        }
        let drained = {
            let mut ws = self.wakers.lock().expect("gate waker registry poisoned");
            self.has_wakers.store(false, Ordering::Release);
            std::mem::take(&mut *ws)
        };
        for w in drained {
            w.wake();
        }
    }

    /// Whether a serial section currently holds the gate (diagnostics).
    pub fn serial_held(&self) -> bool {
        self.state.load(Ordering::Acquire) & SERIAL_HELD != 0
    }

    /// Number of transactions currently on the concurrent side.
    pub fn active_count(&self) -> usize {
        (self.state.load(Ordering::Acquire) & ACTIVE_MASK) as usize
    }

    #[inline]
    fn pause(spins: &mut u32) {
        *spins += 1;
        sched::spin_hint(YieldPoint::SerialGate);
        if *spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

impl Drop for ConcurrentToken<'_> {
    fn drop(&mut self) {
        let prev = self.gate.state.fetch_sub(1, Ordering::AcqRel);
        let now = prev - 1;
        // Last concurrent exit with serial waiters queued: one of them can
        // now acquire — wake the pollable entries.
        if now & ACTIVE_MASK == 0 && now & WAITER_MASK != 0 {
            self.gate.wake_all();
        }
    }
}

impl Drop for SerialToken<'_> {
    fn drop(&mut self) {
        self.gate.state.fetch_and(!SERIAL_HELD, Ordering::AcqRel);
        // Serial exit admits either the next serial waiter or the whole
        // concurrent side.
        self.gate.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn concurrent_entries_coexist() {
        let g = Gate::new();
        let a = g.enter_concurrent();
        let b = g.enter_concurrent();
        assert_eq!(g.active_count(), 2);
        drop(a);
        drop(b);
        assert_eq!(g.active_count(), 0);
    }

    #[test]
    fn serial_excludes_everyone() {
        let g = Arc::new(Gate::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let g = Arc::clone(&g);
                let counter = Arc::clone(&counter);
                let max_seen = Arc::clone(&max_seen);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if i % 2 == 0 {
                            let _t = g.enter_concurrent();
                            counter.fetch_add(1, Ordering::SeqCst);
                            counter.fetch_sub(1, Ordering::SeqCst);
                        } else {
                            let _t = g.enter_serial();
                            let inside = counter.load(Ordering::SeqCst);
                            max_seen.fetch_max(inside, Ordering::SeqCst);
                            assert_eq!(inside, 0, "serial section saw concurrent activity");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn serial_sections_are_mutually_exclusive() {
        let g = Arc::new(Gate::new());
        let in_serial = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                let in_serial = Arc::clone(&in_serial);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let _t = g.enter_serial();
                        assert_eq!(in_serial.fetch_add(1, Ordering::SeqCst), 0);
                        in_serial.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn gate_reopens_after_serial() {
        let g = Gate::new();
        {
            let _s = g.enter_serial();
            assert!(g.serial_held());
        }
        assert!(!g.serial_held());
        let _c = g.enter_concurrent();
        assert_eq!(g.active_count(), 1);
    }

    #[test]
    fn try_enter_concurrent_refuses_under_serial() {
        let g = Gate::new();
        {
            let _s = g.enter_serial();
            assert!(g.try_enter_concurrent().is_none());
        }
        let t = g.try_enter_concurrent();
        assert!(t.is_some());
        assert_eq!(g.active_count(), 1);
    }

    #[test]
    fn serial_request_blocks_new_concurrent_until_dropped() {
        let g = Gate::new();
        let req = g.request_serial();
        // Writer preference: a pending serial request refuses new entries.
        assert!(g.try_enter_concurrent().is_none());
        drop(req); // abandoned
        assert!(g.try_enter_concurrent().is_some());
    }

    #[test]
    fn serial_request_acquires_when_drained() {
        let g = Gate::new();
        let c = g.enter_concurrent();
        let mut req = g.request_serial();
        assert!(req.try_acquire().is_none(), "actives must drain first");
        drop(c);
        let tok = req.try_acquire().expect("gate drained");
        assert!(g.serial_held());
        drop(tok);
        drop(req); // granted: drop must not underflow the waiter count
        assert!(!g.serial_held());
        assert!(g.try_enter_concurrent().is_some());
    }

    #[test]
    fn async_entries_resolve_on_executor() {
        let ex = crate::exec::Exec::new(2);
        let g = Arc::new(Gate::new());
        let serial_ran = Arc::new(AtomicUsize::new(0));
        // Hold the gate concurrent, spawn a serial entry, then release: the
        // waker path (not a spin) must admit the serial task.
        let c = g.enter_concurrent();
        let h = {
            let g = Arc::clone(&g);
            let serial_ran = Arc::clone(&serial_ran);
            ex.spawn(async move {
                let _s = g.enter_serial_async().await;
                serial_ran.fetch_add(1, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(serial_ran.load(Ordering::SeqCst), 0);
        drop(c);
        h.join();
        assert_eq!(serial_ran.load(Ordering::SeqCst), 1);
        // And the concurrent side reopens for async entries afterwards.
        let g2 = Arc::clone(&g);
        ex.spawn(async move {
            let _t = g2.enter_concurrent_async().await;
        })
        .join();
    }

    #[test]
    fn mixed_async_and_sync_exclusion() {
        let ex = Arc::new(crate::exec::Exec::new(3));
        let g = Arc::new(Gate::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for i in 0..24 {
            let g = Arc::clone(&g);
            let counter = Arc::clone(&counter);
            joins.push(ex.spawn(async move {
                for _ in 0..50 {
                    if i % 3 == 0 {
                        let _s = g.enter_serial_async().await;
                        assert_eq!(counter.load(Ordering::SeqCst), 0);
                    } else {
                        let _c = g.enter_concurrent_async().await;
                        counter.fetch_add(1, Ordering::SeqCst);
                        crate::exec::yield_now().await;
                        counter.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        let sync_thread = {
            let g = Arc::clone(&g);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let _s = g.enter_serial();
                    assert_eq!(counter.load(Ordering::SeqCst), 0);
                }
            })
        };
        for j in joins {
            j.join();
        }
        sync_thread.join().unwrap();
    }
}
