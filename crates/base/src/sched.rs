//! Deterministic-scheduler instrumentation points (feature `check-sched`).
//!
//! The TM kernels are lock-free state machines whose bugs live in specific
//! interleavings of a handful of atomics: orec acquire/release, version-clock
//! reads, the NOrec sequence lock, the serial gate, the quiescence scan, and
//! condvar park/notify. Stress tests only sample whatever schedules the OS
//! produces; a model checker needs to *drive* those interleavings. This
//! module is the contract between the kernels and such a driver: the kernels
//! announce every scheduling-relevant step through the hooks below, and a
//! per-thread [`Scheduler`] (installed by `tle-check`'s explorer) decides who
//! runs next.
//!
//! Like [`crate::trace`] and [`crate::fault`], this is a *plane*: without the
//! `check-sched` feature every hook is an empty `#[inline(always)]` function
//! and the kernels compile exactly as before. With the feature on but no
//! scheduler registered on the current thread, a hook is one thread-local
//! read.
//!
//! Hook vocabulary:
//!
//! - [`yield_point`] — a preemption *candidate*: the scheduler may switch to
//!   another virtual thread here. Placed before TM-relevant atomics.
//! - [`spin_hint`] — a voluntary yield inside a spin/retry loop that cannot
//!   make progress until *another* thread acts (orec held, sequence lock odd,
//!   quiescence scan, gate drain). Under a cooperative scheduler the spinning
//!   thread must hand over the token or the loop livelocks; drivers rotate
//!   deterministically here without charging the preemption budget.
//! - [`block_enter`] / [`block_exit`] — bracket a real OS block (condvar
//!   park). The blocked thread stops being runnable until the matching exit.

use std::sync::Arc;

/// Where in the TM runtime a scheduling hook fired. Drivers may use this for
/// diagnostics or to focus exploration; the kernels just report honestly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YieldPoint {
    /// Sampling an ownership record before/after a data read.
    OrecLoad,
    /// Claiming an ownership record (eager write lock).
    OrecAcquire,
    /// Releasing ownership records at commit/rollback.
    OrecRelease,
    /// Reading the global version clock.
    ClockRead,
    /// Advancing the global version clock.
    ClockAdvance,
    /// NOrec global sequence lock (read, wait, or CAS).
    SeqLock,
    /// Read-set validation pass.
    Validate,
    /// A transactional store becoming visible (STM in-place / HTM publish).
    MemStore,
    /// HTM line-table reader/writer marking and the doom protocol.
    LineMark,
    /// HTM per-transaction state word (begin / commit CAS).
    TxState,
    /// The serial-irrevocability gate.
    SerialGate,
    /// The post-commit quiescence scan over publication slots.
    QuiesceScan,
    /// Elided lock word claim/subscribe on the adaptive path.
    LockWord,
    /// Condvar park (waiting side).
    Park,
    /// Condvar notify (signalling side).
    Notify,
}

/// A cooperative scheduling driver, installed per (OS) thread.
///
/// `tle-check` implements this with a token-passing core: exactly one of the
/// registered threads runs at a time, and every hook call is a chance to move
/// the token.
pub trait Scheduler: Send + Sync {
    /// A preemption candidate was reached (may switch threads).
    fn yield_point(&self, p: YieldPoint);
    /// A spin loop is waiting on another thread (must rotate).
    fn spin_hint(&self, p: YieldPoint);
    /// The current thread is about to block in the OS.
    fn block_enter(&self);
    /// The current thread returned from an OS block.
    fn block_exit(&self);
}

/// Whether the scheduling hooks are compiled in.
pub const fn compiled() -> bool {
    cfg!(feature = "check-sched")
}

#[cfg(feature = "check-sched")]
mod imp {
    use super::{Scheduler, YieldPoint};
    use std::cell::RefCell;
    use std::sync::Arc;

    thread_local! {
        static DRIVER: RefCell<Option<Arc<dyn Scheduler>>> = const { RefCell::new(None) };
    }

    pub fn register(s: Arc<dyn Scheduler>) {
        DRIVER.with(|d| *d.borrow_mut() = Some(s));
    }

    pub fn unregister() {
        DRIVER.with(|d| *d.borrow_mut() = None);
    }

    pub fn registered() -> bool {
        DRIVER.with(|d| d.borrow().is_some())
    }

    // Clone the Arc out of the thread-local before invoking the driver so a
    // hook fired from inside driver-adjacent code never holds the RefCell
    // borrow across the call.
    fn with_driver(f: impl FnOnce(&dyn Scheduler)) {
        let driver = DRIVER.with(|d| d.borrow().clone());
        if let Some(s) = driver {
            f(&*s);
        }
    }

    #[inline]
    pub fn yield_point(p: YieldPoint) {
        with_driver(|s| s.yield_point(p));
    }

    #[inline]
    pub fn spin_hint(p: YieldPoint) {
        with_driver(|s| s.spin_hint(p));
    }

    #[inline]
    pub fn block_enter() {
        with_driver(|s| s.block_enter());
    }

    #[inline]
    pub fn block_exit() {
        with_driver(|s| s.block_exit());
    }
}

#[cfg(not(feature = "check-sched"))]
mod imp {
    use super::{Scheduler, YieldPoint};
    use std::sync::Arc;

    pub fn register(_s: Arc<dyn Scheduler>) {}
    pub fn unregister() {}
    pub fn registered() -> bool {
        false
    }
    #[inline(always)]
    pub fn yield_point(_p: YieldPoint) {}
    #[inline(always)]
    pub fn spin_hint(_p: YieldPoint) {}
    #[inline(always)]
    pub fn block_enter() {}
    #[inline(always)]
    pub fn block_exit() {}
}

/// Install a scheduling driver for the current thread. Hooks fired on this
/// thread are routed to it until [`unregister`]. No-op without the feature.
pub fn register(s: Arc<dyn Scheduler>) {
    imp::register(s);
}

/// Remove the current thread's driver (idempotent).
pub fn unregister() {
    imp::unregister();
}

/// Whether the current thread has a driver installed.
pub fn registered() -> bool {
    imp::registered()
}

/// Preemption candidate: the driver may switch virtual threads here.
#[inline(always)]
pub fn yield_point(p: YieldPoint) {
    imp::yield_point(p);
}

/// Spin-loop yield: the driver must let some other thread run.
#[inline(always)]
pub fn spin_hint(p: YieldPoint) {
    imp::spin_hint(p);
}

/// The current thread is about to park in the OS.
///
/// Also the blocking-wait audit point: every real OS park in the kernels is
/// bracketed by this call, so routing it through
/// [`crate::park::enter_os_park`] verifies (in debug builds) that an async
/// executor worker — which installs the waker park backend — never reaches
/// one.
#[inline(always)]
pub fn block_enter() {
    crate::park::enter_os_park();
    imp::block_enter();
}

/// The current thread woke from an OS park.
#[inline(always)]
pub fn block_exit() {
    imp::block_exit();
}

#[cfg(all(test, not(feature = "check-sched")))]
mod tests_disabled {
    use super::*;

    /// Mirror of `trace::hooks_compile_to_noops_without_feature`: with the
    /// feature off the hooks must be callable, free, and driverless.
    #[test]
    fn sched_hooks_compile_to_noops_without_feature() {
        assert!(!compiled());
        yield_point(YieldPoint::OrecAcquire);
        spin_hint(YieldPoint::SeqLock);
        block_enter();
        block_exit();
        assert!(!registered());
    }
}

#[cfg(all(test, feature = "check-sched"))]
mod tests_enabled {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[derive(Default)]
    struct Counting {
        yields: AtomicUsize,
        spins: AtomicUsize,
        blocks: AtomicUsize,
        points: Mutex<Vec<YieldPoint>>,
    }

    impl Scheduler for Counting {
        fn yield_point(&self, p: YieldPoint) {
            self.yields.fetch_add(1, Ordering::Relaxed);
            self.points.lock().unwrap().push(p);
        }
        fn spin_hint(&self, _p: YieldPoint) {
            self.spins.fetch_add(1, Ordering::Relaxed);
        }
        fn block_enter(&self) {
            self.blocks.fetch_add(1, Ordering::Relaxed);
        }
        fn block_exit(&self) {}
    }

    #[test]
    fn hooks_route_to_registered_driver() {
        assert!(compiled());
        let drv = Arc::new(Counting::default());
        register(drv.clone());
        assert!(registered());
        yield_point(YieldPoint::OrecLoad);
        yield_point(YieldPoint::ClockAdvance);
        spin_hint(YieldPoint::QuiesceScan);
        block_enter();
        block_exit();
        unregister();
        assert!(!registered());
        // After unregister the hooks go quiet again.
        yield_point(YieldPoint::Park);
        assert_eq!(drv.yields.load(Ordering::Relaxed), 2);
        assert_eq!(drv.spins.load(Ordering::Relaxed), 1);
        assert_eq!(drv.blocks.load(Ordering::Relaxed), 1);
        assert_eq!(
            *drv.points.lock().unwrap(),
            vec![YieldPoint::OrecLoad, YieldPoint::ClockAdvance]
        );
    }

    #[test]
    fn driver_is_per_thread() {
        let drv = Arc::new(Counting::default());
        register(drv.clone());
        let t = std::thread::spawn(|| {
            // Fresh thread: no driver inherited.
            assert!(!registered());
            yield_point(YieldPoint::OrecLoad);
        });
        t.join().unwrap();
        assert_eq!(drv.yields.load(Ordering::Relaxed), 0);
        unregister();
    }
}
