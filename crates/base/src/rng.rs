//! Tiny deterministic RNGs.
//!
//! The benchmark workloads (key choice in the Figure 5 microbenchmarks,
//! synthetic PBZip2 input, wfe frame noise) and the HTM simulator's "event"
//! aborts must be deterministic and reproducible, so everything is seeded
//! splitmix64 / xorshift64* rather than OS entropy. `rand` is still used at
//! the bench layer where distribution adapters are convenient.

/// splitmix64: excellent seed expander, decent standalone generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small xorshift64* PRNG.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded constructor; a zero seed is remapped (xorshift cannot hold 0).
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let expanded = splitmix64(&mut s);
        XorShift64 {
            state: if expanded == 0 {
                0x9E3779B97F4A7C15
            } else {
                expanded
            },
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` (Lemire's multiply-shift reduction; slight
    /// modulo bias is irrelevant at these bounds).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
        }
        // All residues appear.
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = XorShift64::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = XorShift64::new(5);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
