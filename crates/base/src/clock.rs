//! The global version clock.
//!
//! `ml_wt` (like TinySTM and most timestamp-based STMs) orders transactions
//! with a single global counter. Transactions sample it at begin
//! ([`Clock::now`]) and writers advance it at commit ([`Clock::advance`]).
//! The clock is the scalability pinch-point the paper alludes to ("a global
//! counter within the GCC STM implementation" causing the two-thread dip in
//! Figure 5); we keep the same design on purpose.

use crate::Padded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing global version clock.
#[derive(Debug, Default)]
pub struct Clock {
    now: Padded<AtomicU64>,
}

impl Clock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Sample the current time. Used at transaction begin and for timestamp
    /// extension.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Advance the clock and return the *new* time. Used by committing
    /// writers; the returned value becomes the version stamped into the
    /// orecs the writer releases.
    #[inline]
    pub fn advance(&self) -> u64 {
        self.now.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_advances_are_unique() {
        let c = Arc::new(Clock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..10_000).map(|_| c.advance()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 40_000, "every advance must yield a unique time");
        assert_eq!(c.now(), 40_000);
    }
}
