//! Deterministic fault injection: a seeded, schedule-scriptable oracle that
//! every runtime layer consults at its hazard points.
//!
//! The diagnostics layer (PR 1) can *see* abort storms, quiescence stalls and
//! lost wakeups; this module lets the torture harness *provoke* them on
//! demand and lets tests prove the recovery paths work. Each layer asks the
//! oracle at a well-defined hazard point ([`Hazard`]) whether an injected
//! fault should fire right now; the answer is a pure function of the
//! installed [`FaultPlan`], the calling thread's *lane* and its logical
//! *tick*, so the same seed always produces the same fault schedule.
//!
//! # Determinism model
//!
//! - **Lanes.** Each participating thread occupies a lane. Torture workers
//!   pin their lane explicitly ([`set_lane`]); other threads are auto-lanes
//!   assigned in first-consult order (fine for chaos, not for byte-exact
//!   reproduction — pin lanes when you need that).
//! - **Ticks.** A lane's logical clock advances only when the worker calls
//!   [`tick`] — once per logical operation, *not* per hazard consult. A rule
//!   fires when `(tick + phase_eff) % period == 0`, at most
//!   `fires_per_tick` times per tick, so retry loops converge: the injected
//!   fault hits the first attempt(s) and the recovery path then runs clean.
//! - **Seed.** [`FaultPlan::seed`] scrambles each rule's phase per lane
//!   (splitmix64), so different lanes fault at different ticks and different
//!   seeds produce different — but reproducible — schedules.
//! - **Counters.** [`snapshot`] returns two per-hazard tallies: `armed`
//!   (incremented by tick arithmetic alone — exactly reproducible for a
//!   given seed and tick count, even under nondeterministic thread
//!   interleaving) and `fired` (faults actually delivered at a hazard
//!   point — reproducible when the workload itself is deterministic, e.g.
//!   single-worker torture).
//!
//! # Disabled cost
//!
//! With no plan installed every hook reduces to one relaxed load of a static
//! `AtomicBool` ([`enabled`]) — the `#[inline]` fast path the acceptance
//! criteria require. There is no cargo feature to flip; injection is a
//! runtime decision.

use crate::rng::splitmix64;
use crate::AbortCause;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A hazard point: a place in the runtime where an injected fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Hazard {
    /// Forced spurious "event" abort at an HTM access (`htm::tx`).
    HtmEvent = 0,
    /// Forced capacity abort at an HTM access (`htm::tx`).
    HtmCapacity = 1,
    /// Forced conflict/doom abort at an HTM access (`htm::tx`).
    HtmConflict = 2,
    /// Stall while holding an orec write lock (`stm::tx`), simulating
    /// lock-holder preemption.
    OrecStall = 3,
    /// Delay inside a validation/extension window (`stm::tx`, `stm::norec`).
    ValidationDelay = 4,
    /// Delay inside the quiescence drain loop (`stm::quiesce`).
    QuiesceDelay = 5,
    /// Delay between deciding to signal a waiter and delivering the wakeup
    /// (`core::condvar`).
    SignalDelay = 6,
    /// Spurious wakeup attempt delivered to a parked waiter
    /// (`core::condvar`).
    SpuriousWake = 7,
    /// Forced serial-gate entry: the runner skips its concurrent attempts
    /// and storms the serial gate (`core::runner`).
    SerialStorm = 8,
}

impl Hazard {
    /// Number of hazard classes.
    pub const COUNT: usize = 9;

    /// Every hazard, in discriminant order.
    pub const ALL: [Hazard; Hazard::COUNT] = [
        Hazard::HtmEvent,
        Hazard::HtmCapacity,
        Hazard::HtmConflict,
        Hazard::OrecStall,
        Hazard::ValidationDelay,
        Hazard::QuiesceDelay,
        Hazard::SignalDelay,
        Hazard::SpuriousWake,
        Hazard::SerialStorm,
    ];

    /// Dense index (== discriminant).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decode from the packed representation.
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            Hazard::HtmEvent => "htm-event",
            Hazard::HtmCapacity => "htm-capacity",
            Hazard::HtmConflict => "htm-conflict",
            Hazard::OrecStall => "orec-stall",
            Hazard::ValidationDelay => "validation-delay",
            Hazard::QuiesceDelay => "quiesce-delay",
            Hazard::SignalDelay => "signal-delay",
            Hazard::SpuriousWake => "spurious-wake",
            Hazard::SerialStorm => "serial-storm",
        }
    }

    /// The abort cause an injected fault of this class surfaces as, if it
    /// aborts the transaction at all (delay-class hazards only perturb
    /// timing and map to no cause).
    pub fn cause(self) -> Option<AbortCause> {
        match self {
            Hazard::HtmEvent => Some(AbortCause::Event),
            Hazard::HtmCapacity => Some(AbortCause::Capacity),
            Hazard::HtmConflict => Some(AbortCause::Conflict),
            _ => None,
        }
    }
}

/// One line of a fault schedule: fire `hazard` on ticks where
/// `(tick + phase_eff) % period == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Which hazard point this rule arms.
    pub hazard: Hazard,
    /// Fire every `period` ticks (>= 1).
    pub period: u64,
    /// Base phase offset; the plan seed scrambles it per lane.
    pub phase: u64,
    /// For HTM access-index hazards: fire only at this per-transaction
    /// access index. `None` matches any consult.
    pub at_access: Option<u64>,
    /// For delay-class hazards: busy-spin iterations to inject.
    pub stall_spins: u32,
    /// Deliveries allowed per tick (>= 1). `u32::MAX` ≈ every consult on a
    /// matching tick — used to force *consecutive* aborts.
    pub fires_per_tick: u32,
    /// Total deliveries allowed per lane; 0 = unlimited.
    pub max_fires: u64,
}

impl FaultRule {
    /// A rule firing every `period` ticks with default knobs.
    pub fn new(hazard: Hazard, period: u64) -> Self {
        FaultRule {
            hazard,
            period: period.max(1),
            phase: 0,
            at_access: None,
            stall_spins: 0,
            fires_per_tick: 1,
            max_fires: 0,
        }
    }

    /// Set the base phase offset.
    pub fn phase(mut self, phase: u64) -> Self {
        self.phase = phase;
        self
    }

    /// Restrict to one per-transaction access index (HTM hazards).
    pub fn at_access(mut self, idx: u64) -> Self {
        self.at_access = Some(idx);
        self
    }

    /// Inject a busy-wait of `spins` iterations (delay hazards).
    pub fn stall(mut self, spins: u32) -> Self {
        self.stall_spins = spins;
        self
    }

    /// Allow up to `n` deliveries per tick (default 1).
    pub fn per_tick(mut self, n: u32) -> Self {
        self.fires_per_tick = n.max(1);
        self
    }

    /// Cap total deliveries per lane (0 = unlimited).
    pub fn limit(mut self, n: u64) -> Self {
        self.max_fires = n;
        self
    }
}

/// A complete fault schedule: a seed plus the rules it drives.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scrambles per-lane rule phases; same seed → same schedule.
    pub seed: u64,
    /// The rules, consulted in order at each hazard point.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Append a rule (builder style).
    pub fn rule(mut self, r: FaultRule) -> Self {
        self.rules.push(r);
        self
    }
}

/// Fast-path switch: one relaxed load answers "is injection off?".
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every install/clear so lanes re-sync lazily.
static EPOCH: AtomicU64 = AtomicU64::new(1);
/// Auto-lane allocator (reset per install).
static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

/// Global per-hazard tallies (see module docs for armed vs fired).
struct Tallies {
    armed: [AtomicU64; Hazard::COUNT],
    fired: [AtomicU64; Hazard::COUNT],
}

fn tallies() -> &'static Tallies {
    static T: OnceLock<Tallies> = OnceLock::new();
    T.get_or_init(|| Tallies {
        armed: std::array::from_fn(|_| AtomicU64::new(0)),
        fired: std::array::from_fn(|_| AtomicU64::new(0)),
    })
}

fn plan_cell() -> &'static Mutex<Arc<FaultPlan>> {
    static P: OnceLock<Mutex<Arc<FaultPlan>>> = OnceLock::new();
    P.get_or_init(|| Mutex::new(Arc::new(FaultPlan::default())))
}

/// Per-lane view of one rule.
struct RuleState {
    rule: FaultRule,
    /// Seed- and lane-scrambled phase, folded into the firing predicate.
    phase_eff: u64,
    /// Tick the per-tick delivery counter belongs to.
    tick_seen: u64,
    fired_this_tick: u32,
    total_fires: u64,
}

/// Thread-local lane state, rebuilt lazily whenever the epoch moves.
struct Lane {
    epoch: u64,
    lane: u64,
    lane_pinned: bool,
    tick: u64,
    rules: Vec<RuleState>,
}

impl Lane {
    const fn new() -> Self {
        Lane {
            epoch: 0,
            lane: 0,
            lane_pinned: false,
            tick: 0,
            rules: Vec::new(),
        }
    }

    fn refresh(&mut self) {
        let epoch = EPOCH.load(Ordering::Acquire);
        if self.epoch == epoch {
            return;
        }
        let plan = Arc::clone(&plan_cell().lock().unwrap());
        if !self.lane_pinned {
            self.lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        }
        self.rules = plan
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut s = plan.seed ^ (self.lane << 16) ^ i as u64;
                let scramble = splitmix64(&mut s);
                RuleState {
                    rule: *r,
                    phase_eff: (r.phase + scramble) % r.period,
                    tick_seen: 0,
                    fired_this_tick: 0,
                    total_fires: 0,
                }
            })
            .collect();
        self.tick = 0;
        self.epoch = epoch;
    }

    #[inline]
    fn matches_tick(rs: &RuleState, tick: u64) -> bool {
        (tick + rs.phase_eff).is_multiple_of(rs.rule.period)
            && (rs.rule.max_fires == 0 || rs.total_fires < rs.rule.max_fires)
    }

    fn advance(&mut self) {
        self.refresh();
        self.tick += 1;
        let t = tallies();
        for rs in &self.rules {
            if Self::matches_tick(rs, self.tick) {
                t.armed[rs.rule.hazard.index()].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn consult(&mut self, hazard: Hazard, access: u64) -> Option<u32> {
        self.refresh();
        let tick = self.tick;
        for rs in &mut self.rules {
            if rs.rule.hazard != hazard {
                continue;
            }
            if let Some(want) = rs.rule.at_access {
                if want != access {
                    continue;
                }
            }
            if rs.tick_seen != tick {
                rs.tick_seen = tick;
                rs.fired_this_tick = 0;
            }
            if rs.fired_this_tick >= rs.rule.fires_per_tick || !Self::matches_tick(rs, tick) {
                continue;
            }
            rs.fired_this_tick += 1;
            rs.total_fires += 1;
            tallies().fired[hazard.index()].fetch_add(1, Ordering::Relaxed);
            return Some(rs.rule.stall_spins);
        }
        None
    }
}

thread_local! {
    static LANE: std::cell::RefCell<Lane> = const { std::cell::RefCell::new(Lane::new()) };
}

/// Whether a fault plan is currently installed. This is the *only* cost a
/// hazard point pays when injection is off: one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install a plan and enable injection. Resets all tallies and (lazily)
/// every lane's tick clock.
pub fn install(plan: FaultPlan) {
    let t = tallies();
    *plan_cell().lock().unwrap() = Arc::new(plan);
    for i in 0..Hazard::COUNT {
        t.armed[i].store(0, Ordering::Relaxed);
        t.fired[i].store(0, Ordering::Relaxed);
    }
    NEXT_LANE.store(0, Ordering::Relaxed);
    EPOCH.fetch_add(1, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
}

/// Disable injection and drop the plan. Hazard points go back to the
/// single-load fast path.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    *plan_cell().lock().unwrap() = Arc::new(FaultPlan::default());
    EPOCH.fetch_add(1, Ordering::Release);
}

/// Pin the calling thread to a lane. Torture workers call this once so the
/// lane → schedule mapping is independent of thread spawn order.
pub fn set_lane(lane: u64) {
    LANE.with(|l| {
        let mut l = l.borrow_mut();
        l.lane = lane;
        l.lane_pinned = true;
        l.epoch = 0; // force a refresh so phase_eff reflects the new lane
    });
}

/// Advance the calling lane's logical clock by one operation. Call once per
/// logical op, *before* executing it.
#[inline]
pub fn tick() {
    if !enabled() {
        return;
    }
    LANE.with(|l| l.borrow_mut().advance());
}

/// The calling lane's current tick (diagnostics).
pub fn current_tick() -> u64 {
    LANE.with(|l| l.borrow().tick)
}

#[cold]
fn consult(hazard: Hazard, access: u64) -> Option<u32> {
    LANE.with(|l| l.borrow_mut().consult(hazard, access))
}

/// Should an abort-class fault fire at this hazard point now?
#[inline]
pub fn fire(hazard: Hazard) -> bool {
    enabled() && consult(hazard, u64::MAX).is_some()
}

/// Should an abort-class fault fire at per-transaction access index
/// `access`? (Rules without `at_access` match any index.)
#[inline]
pub fn fire_at(hazard: Hazard, access: u64) -> bool {
    enabled() && consult(hazard, access).is_some()
}

/// Consult a delay-class hazard; if a rule fires, busy-wait its configured
/// stall and return the spin count (0 = nothing fired). The caller only
/// needs the return value for trace emission.
#[inline]
pub fn maybe_stall(hazard: Hazard) -> u32 {
    if !enabled() {
        return 0;
    }
    match consult(hazard, u64::MAX) {
        Some(spins) => {
            stall(spins);
            spins.max(1)
        }
        None => 0,
    }
}

/// Busy-wait `spins` iterations, yielding periodically so an injected stall
/// cannot wedge a single-core scheduler.
pub fn stall(spins: u32) {
    for i in 0..spins {
        if i % 4096 == 4095 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Point-in-time copy of the per-hazard tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Ticks on which each hazard's schedule matched (pure tick arithmetic;
    /// reproducible for a given seed and tick count).
    pub armed: [u64; Hazard::COUNT],
    /// Faults actually delivered at a hazard point.
    pub fired: [u64; Hazard::COUNT],
}

impl FaultSnapshot {
    /// Armed count for one hazard.
    pub fn armed(&self, h: Hazard) -> u64 {
        self.armed[h.index()]
    }

    /// Delivered count for one hazard.
    pub fn fired(&self, h: Hazard) -> u64 {
        self.fired[h.index()]
    }

    /// Total faults delivered.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }

    /// Delivered counts folded onto abort causes (delay hazards excluded).
    pub fn fired_by_cause(&self) -> [(AbortCause, u64); 3] {
        [
            (AbortCause::Event, self.fired(Hazard::HtmEvent)),
            (AbortCause::Capacity, self.fired(Hazard::HtmCapacity)),
            (AbortCause::Conflict, self.fired(Hazard::HtmConflict)),
        ]
    }

    /// FNV-1a digest over both tallies — a compact reproducibility token.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in self.armed.iter().chain(self.fired.iter()) {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

/// Snapshot the global tallies.
pub fn snapshot() -> FaultSnapshot {
    let t = tallies();
    let mut s = FaultSnapshot::default();
    for i in 0..Hazard::COUNT {
        s.armed[i] = t.armed[i].load(Ordering::Relaxed);
        s.fired[i] = t.fired[i].load(Ordering::Relaxed);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // The oracle is process-global; serialize the tests that install plans.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_is_inert() {
        let _g = guard();
        install(FaultPlan::default()); // reset tallies left by other tests
        clear();
        assert!(!enabled());
        assert!(!fire(Hazard::HtmEvent));
        assert!(!fire_at(Hazard::HtmCapacity, 3));
        assert_eq!(maybe_stall(Hazard::OrecStall), 0);
        tick(); // must not panic or arm anything
        assert_eq!(snapshot().total_fired(), 0);
    }

    #[test]
    fn period_one_fires_once_per_tick() {
        let _g = guard();
        install(FaultPlan::new(7).rule(FaultRule::new(Hazard::HtmEvent, 1)));
        set_lane(0);
        let mut fires = 0;
        for _ in 0..10 {
            tick();
            // Three consults per tick, but fires_per_tick = 1.
            for _ in 0..3 {
                if fire(Hazard::HtmEvent) {
                    fires += 1;
                }
            }
        }
        assert_eq!(fires, 10);
        let s = snapshot();
        assert_eq!(s.fired(Hazard::HtmEvent), 10);
        assert_eq!(s.armed(Hazard::HtmEvent), 10);
        clear();
    }

    #[test]
    fn period_divides_the_schedule() {
        let _g = guard();
        install(FaultPlan::new(11).rule(FaultRule::new(Hazard::SerialStorm, 4)));
        set_lane(0);
        let mut fires = 0;
        for _ in 0..40 {
            tick();
            if fire(Hazard::SerialStorm) {
                fires += 1;
            }
        }
        assert_eq!(fires, 10, "period 4 over 40 ticks fires exactly 10 times");
        clear();
    }

    #[test]
    fn at_access_gates_on_index() {
        let _g = guard();
        install(FaultPlan::new(3).rule(FaultRule::new(Hazard::HtmCapacity, 1).at_access(2)));
        set_lane(0);
        tick();
        assert!(!fire_at(Hazard::HtmCapacity, 0));
        assert!(!fire_at(Hazard::HtmCapacity, 1));
        assert!(fire_at(Hazard::HtmCapacity, 2));
        // Budget for this tick is spent.
        assert!(!fire_at(Hazard::HtmCapacity, 2));
        clear();
    }

    #[test]
    fn per_tick_and_total_limits() {
        let _g = guard();
        install(
            FaultPlan::new(5).rule(
                FaultRule::new(Hazard::HtmConflict, 1)
                    .per_tick(u32::MAX)
                    .limit(7),
            ),
        );
        set_lane(0);
        let mut fires = 0;
        for _ in 0..4 {
            tick();
            for _ in 0..5 {
                if fire(Hazard::HtmConflict) {
                    fires += 1;
                }
            }
        }
        assert_eq!(fires, 7, "total limit caps unlimited per-tick delivery");
        clear();
    }

    #[test]
    fn same_seed_same_schedule() {
        let _g = guard();
        let run = |seed: u64| -> (Vec<bool>, FaultSnapshot) {
            install(
                FaultPlan::new(seed)
                    .rule(FaultRule::new(Hazard::HtmEvent, 3))
                    .rule(FaultRule::new(Hazard::OrecStall, 5).stall(1)),
            );
            set_lane(1);
            let mut pattern = Vec::new();
            for _ in 0..60 {
                tick();
                pattern.push(fire(Hazard::HtmEvent));
                pattern.push(maybe_stall(Hazard::OrecStall) > 0);
            }
            let s = snapshot();
            clear();
            (pattern, s)
        };
        let (p1, s1) = run(0xABCD);
        let (p2, s2) = run(0xABCD);
        assert_eq!(p1, p2, "same seed must reproduce the exact schedule");
        assert_eq!(s1, s2);
        assert_eq!(s1.digest(), s2.digest());
        let (p3, _) = run(0xEF01);
        assert_ne!(p1, p3, "different seed must shift the schedule");
    }

    #[test]
    fn lanes_have_distinct_phases() {
        let _g = guard();
        install(FaultPlan::new(42).rule(FaultRule::new(Hazard::ValidationDelay, 7).stall(1)));
        let pattern = |lane: u64| -> Vec<bool> {
            set_lane(lane);
            (0..21)
                .map(|_| {
                    tick();
                    maybe_stall(Hazard::ValidationDelay) > 0
                })
                .collect()
        };
        let a = pattern(0);
        let b = pattern(3);
        assert_eq!(a.iter().filter(|&&x| x).count(), 3);
        assert_eq!(b.iter().filter(|&&x| x).count(), 3);
        assert_ne!(a, b, "lane scrambling should decorrelate phases");
        clear();
    }

    #[test]
    fn hazard_meta_is_consistent() {
        for (i, h) in Hazard::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
            assert_eq!(Hazard::from_u8(i as u8), Some(*h));
        }
        assert_eq!(Hazard::from_u8(200), None);
        let labels: std::collections::HashSet<_> = Hazard::ALL.iter().map(|h| h.label()).collect();
        assert_eq!(labels.len(), Hazard::COUNT);
        assert_eq!(Hazard::HtmEvent.cause(), Some(AbortCause::Event));
        assert_eq!(Hazard::HtmCapacity.cause(), Some(AbortCause::Capacity));
        assert_eq!(Hazard::HtmConflict.cause(), Some(AbortCause::Conflict));
        assert_eq!(Hazard::QuiesceDelay.cause(), None);
    }
}
