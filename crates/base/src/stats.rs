//! Sharded statistics counters.
//!
//! The paper's evaluation reports commit counts, abort rates (Figure 4,
//! §VII-A in-text numbers) and serial-fallback percentages; the benches need
//! these to be cheap enough to leave enabled. [`Counter`] shards its word by
//! thread to avoid turning statistics into a contention source.

use crate::Padded;
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 16;

/// A sharded monotonically increasing counter.
pub struct Counter {
    shards: [Padded<AtomicU64>; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        // `Padded` has no const constructor for arrays; build by value.
        Counter {
            shards: [
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
            ],
        }
    }

    /// Add `n`, attributed to `shard_hint` (typically the thread slot index).
    #[inline]
    pub fn add(&self, shard_hint: usize, n: u64) {
        self.shards[shard_hint % SHARDS].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self, shard_hint: usize) {
        self.add(shard_hint, 1);
    }

    /// Sum across shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Reset all shards to zero (between benchmark trials).
    pub fn reset(&self) {
        for s in &self.shards {
            s.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Statistics common to both TM flavours and the TLE runtime.
#[derive(Debug, Default)]
pub struct TxStats {
    /// Transactions that committed.
    pub commits: Counter,
    /// Transactions that aborted at least once (counted per abort event).
    pub aborts: Counter,
    /// Transactions that gave up and took the serial fallback.
    pub serial_fallbacks: Counter,
    /// Commits that performed a quiescence drain.
    pub quiesces: Counter,
    /// Commits that skipped quiescence because of `TM_NoQuiesce`.
    pub quiesce_skipped: Counter,
    /// Nanoseconds spent spinning in quiescence drains.
    pub quiesce_wait_ns: Counter,
}

impl TxStats {
    /// A zeroed stats block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset every counter (between benchmark trials).
    pub fn reset(&self) {
        self.commits.reset();
        self.aborts.reset();
        self.serial_fallbacks.reset();
        self.quiesces.reset();
        self.quiesce_skipped.reset();
        self.quiesce_wait_ns.reset();
    }

    /// A point-in-time copy, for printing.
    pub fn snapshot(&self) -> TxStatsSnapshot {
        TxStatsSnapshot {
            commits: self.commits.get(),
            aborts: self.aborts.get(),
            serial_fallbacks: self.serial_fallbacks.get(),
            quiesces: self.quiesces.get(),
            quiesce_skipped: self.quiesce_skipped.get(),
            quiesce_wait_ns: self.quiesce_wait_ns.get(),
        }
    }
}

/// Plain-data snapshot of [`TxStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStatsSnapshot {
    pub commits: u64,
    pub aborts: u64,
    pub serial_fallbacks: u64,
    pub quiesces: u64,
    pub quiesce_skipped: u64,
    pub quiesce_wait_ns: u64,
}

impl TxStatsSnapshot {
    /// Aborts per started transaction attempt, in [0, 1].
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Fraction of committed transactions that went through the serial path.
    pub fn fallback_rate(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.serial_fallbacks as f64 / self.commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_across_shards() {
        let c = Counter::new();
        for i in 0..100 {
            c.add(i, 2);
        }
        assert_eq!(c.get(), 200);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn rates_are_sane() {
        let s = TxStats::new();
        for _ in 0..90 {
            s.commits.inc(0);
        }
        for _ in 0..10 {
            s.aborts.inc(0);
        }
        for _ in 0..9 {
            s.serial_fallbacks.inc(0);
        }
        let snap = s.snapshot();
        assert!((snap.abort_rate() - 0.1).abs() < 1e-9);
        assert!((snap.fallback_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_rates_are_zero() {
        let snap = TxStats::new().snapshot();
        assert_eq!(snap.abort_rate(), 0.0);
        assert_eq!(snap.fallback_rate(), 0.0);
    }
}
