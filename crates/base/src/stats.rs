//! Sharded statistics counters.
//!
//! The paper's evaluation reports commit counts, abort rates (Figure 4,
//! §VII-A in-text numbers) and serial-fallback percentages; the benches need
//! these to be cheap enough to leave enabled. [`Counter`] shards its word by
//! thread to avoid turning statistics into a contention source.
//!
//! Beyond the coarse totals, [`TxStats`] attributes every abort to its
//! [`AbortCause`] (the tentpole of the diagnostics layer: Figure 4's
//! conflict/capacity/event breakdown is *measured* from these counters, not
//! synthesized) and records quiescence-drain latencies in a log2 histogram
//! so the §VII-C congestion-control observation can be quantified.

use crate::AbortCause;
use crate::Padded;
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 16;

/// A sharded monotonically increasing counter.
pub struct Counter {
    shards: [Padded<AtomicU64>; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        // `Padded` has no const constructor for arrays; build by value.
        Counter {
            shards: [
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
                Padded(AtomicU64::new(0)),
            ],
        }
    }

    /// Add `n`, attributed to `shard_hint` (typically the thread slot index).
    #[inline]
    pub fn add(&self, shard_hint: usize, n: u64) {
        self.shards[shard_hint % SHARDS].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self, shard_hint: usize) {
        self.add(shard_hint, 1);
    }

    /// Sum across shards. Saturates instead of wrapping: these totals flow
    /// into committed `BENCH_<n>.json` files, where a silently wrapped
    /// counter would read as a plausible small number.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.load(Ordering::Relaxed)))
    }

    /// Reset all shards to zero (between benchmark trials).
    pub fn reset(&self) {
        for s in &self.shards {
            s.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Number of buckets in a [`LatencyHist`]: bucket `b` counts samples in
/// `[2^b, 2^(b+1))` nanoseconds, with the last bucket open-ended. 32 buckets
/// cover 1 ns .. ~4 s, far beyond any realistic drain.
pub const HIST_BUCKETS: usize = 32;

/// A log2 latency histogram (unsharded: one sample per drain, so contention
/// is negligible next to the drain itself).
#[derive(Debug, Default)]
pub struct LatencyHist {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl LatencyHist {
    /// A zeroed histogram.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one sample of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> LatencyHistSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, s) in buckets.iter_mut().zip(&self.buckets) {
            *b = s.load(Ordering::Relaxed);
        }
        LatencyHistSnapshot { buckets }
    }

    /// Reset all buckets (between benchmark trials).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Plain-data snapshot of a [`LatencyHist`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistSnapshot {
    /// `buckets[b]` counts samples in `[2^b, 2^(b+1))` ns.
    pub buckets: [u64; HIST_BUCKETS],
}

impl LatencyHistSnapshot {
    /// Total number of samples. Saturating, for the same reason as
    /// [`Counter::get`]: snapshot sums end up in committed JSON.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &n| acc.saturating_add(n))
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile sample
    /// (`q` in [0, 1]); `None` if empty. Log2 buckets make this an estimate
    /// within 2x, which is plenty for "is the drain microseconds or
    /// milliseconds" diagnostics.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                // The last bucket is open-ended: it has no finite upper
                // bound, so report the sentinel rather than `2^(b+1)`.
                return Some(if b + 1 >= HIST_BUCKETS {
                    u64::MAX
                } else {
                    2u64 << b
                });
            }
        }
        Some(u64::MAX)
    }

    /// Compact one-line rendering: `count p50 p99 max-bucket`.
    pub fn summary(&self) -> String {
        match (self.quantile_ns(0.50), self.quantile_ns(0.99)) {
            (Some(p50), Some(p99)) => {
                format!("n={} p50<{} p99<{}", self.count(), fmt_ns(p50), fmt_ns(p99))
            }
            _ => "n=0".to_string(),
        }
    }
}

/// Render nanoseconds with a readable unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Statistics common to both TM flavours and the TLE runtime.
#[derive(Debug, Default)]
pub struct TxStats {
    /// Transactions that committed.
    pub commits: Counter,
    /// Transactions that aborted at least once (counted per abort event).
    pub aborts: Counter,
    /// Per-cause abort counters, indexed by [`AbortCause::index`]. Always
    /// on (sharded, write-only on the abort path) — unlike the event trace,
    /// which is feature-gated.
    pub by_cause: [Counter; AbortCause::COUNT],
    /// Transactions that gave up and took the serial fallback.
    pub serial_fallbacks: Counter,
    /// Commits that performed a quiescence drain.
    pub quiesces: Counter,
    /// Commits that skipped quiescence (`TM_NoQuiesce`, a skipping policy,
    /// or the read-only commit fast path).
    pub quiesce_skipped: Counter,
    /// Nanoseconds spent spinning in quiescence drains.
    pub quiesce_wait_ns: Counter,
    /// Distribution of per-drain wait times.
    pub quiesce_hist: LatencyHist,
    /// Starvation-ladder escalations: a thread exceeded its consecutive
    /// abort bound and was forced straight to serial-irrevocable mode.
    pub escalations: Counter,
    /// Quiescence-watchdog trips: a drain exceeded its deadline (the drain
    /// still completes; this counts the detection events).
    pub watchdog_trips: Counter,
    /// Sections abandoned because their per-transaction retry-time budget
    /// expired before a commit (`TxError::DeadlineExceeded`).
    pub deadline_exceeded: Counter,
    /// Sections shed at dispatch by the admission controller's degradation
    /// ladder (`TxError::Overloaded`).
    pub sheds: Counter,
}

impl TxStats {
    /// A zeroed stats block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one abort under its cause.
    #[inline]
    pub fn count_abort(&self, shard_hint: usize, cause: AbortCause) {
        self.aborts.inc(shard_hint);
        self.by_cause[cause.index()].inc(shard_hint);
    }

    /// Total aborts recorded for one cause.
    pub fn cause(&self, cause: AbortCause) -> u64 {
        self.by_cause[cause.index()].get()
    }

    /// Reset every counter (between benchmark trials).
    pub fn reset(&self) {
        self.commits.reset();
        self.aborts.reset();
        for c in &self.by_cause {
            c.reset();
        }
        self.serial_fallbacks.reset();
        self.quiesces.reset();
        self.quiesce_skipped.reset();
        self.quiesce_wait_ns.reset();
        self.quiesce_hist.reset();
        self.escalations.reset();
        self.watchdog_trips.reset();
        self.deadline_exceeded.reset();
        self.sheds.reset();
    }

    /// A point-in-time copy, for printing.
    pub fn snapshot(&self) -> TxStatsSnapshot {
        let mut by_cause = [0u64; AbortCause::COUNT];
        for (o, c) in by_cause.iter_mut().zip(&self.by_cause) {
            *o = c.get();
        }
        TxStatsSnapshot {
            commits: self.commits.get(),
            aborts: self.aborts.get(),
            by_cause,
            serial_fallbacks: self.serial_fallbacks.get(),
            quiesces: self.quiesces.get(),
            quiesce_skipped: self.quiesce_skipped.get(),
            quiesce_wait_ns: self.quiesce_wait_ns.get(),
            quiesce_hist: self.quiesce_hist.snapshot(),
            escalations: self.escalations.get(),
            watchdog_trips: self.watchdog_trips.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            sheds: self.sheds.get(),
        }
    }
}

/// Plain-data snapshot of [`TxStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStatsSnapshot {
    pub commits: u64,
    pub aborts: u64,
    /// Per-cause abort counts, indexed by [`AbortCause::index`].
    pub by_cause: [u64; AbortCause::COUNT],
    pub serial_fallbacks: u64,
    pub quiesces: u64,
    pub quiesce_skipped: u64,
    pub quiesce_wait_ns: u64,
    pub quiesce_hist: LatencyHistSnapshot,
    pub escalations: u64,
    pub watchdog_trips: u64,
    /// Sections whose retry-time budget expired (`TxError::DeadlineExceeded`).
    pub deadline_exceeded: u64,
    /// Sections shed at dispatch (`TxError::Overloaded`).
    pub sheds: u64,
}

impl TxStatsSnapshot {
    /// Aborts recorded for one cause.
    #[inline]
    pub fn cause(&self, cause: AbortCause) -> u64 {
        self.by_cause[cause.index()]
    }

    /// Aborts per started transaction attempt, in [0, 1].
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits.saturating_add(self.aborts);
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Fraction of committed transactions that went through the serial path.
    pub fn fallback_rate(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.serial_fallbacks as f64 / self.commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_across_shards() {
        let c = Counter::new();
        for i in 0..100 {
            c.add(i, 2);
        }
        assert_eq!(c.get(), 200);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn rates_are_sane() {
        let s = TxStats::new();
        for _ in 0..90 {
            s.commits.inc(0);
        }
        for _ in 0..10 {
            s.aborts.inc(0);
        }
        for _ in 0..9 {
            s.serial_fallbacks.inc(0);
        }
        let snap = s.snapshot();
        assert!((snap.abort_rate() - 0.1).abs() < 1e-9);
        assert!((snap.fallback_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_rates_are_zero() {
        let snap = TxStats::new().snapshot();
        assert_eq!(snap.abort_rate(), 0.0);
        assert_eq!(snap.fallback_rate(), 0.0);
    }

    #[test]
    fn count_abort_attributes_every_cause() {
        let s = TxStats::new();
        for (i, c) in AbortCause::ALL.iter().enumerate() {
            for _ in 0..=i {
                s.count_abort(i, *c);
            }
        }
        let snap = s.snapshot();
        let mut total = 0u64;
        for (i, c) in AbortCause::ALL.iter().enumerate() {
            assert_eq!(snap.cause(*c), i as u64 + 1, "cause {c}");
            assert_eq!(s.cause(*c), i as u64 + 1);
            total += i as u64 + 1;
        }
        assert_eq!(snap.aborts, total, "aborts must equal the cause sum");
        s.reset();
        assert_eq!(s.snapshot().by_cause, [0; AbortCause::COUNT]);
    }

    #[test]
    fn latency_hist_buckets_by_log2() {
        let h = LatencyHist::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.count(), 5);
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn latency_hist_quantiles() {
        let h = LatencyHist::new();
        for _ in 0..99 {
            h.record(100); // bucket 6, upper bound 128
        }
        h.record(1_000_000); // bucket 19
        let s = h.snapshot();
        assert_eq!(s.quantile_ns(0.5), Some(128));
        assert_eq!(s.quantile_ns(1.0), Some(2u64 << 19));
        assert_eq!(LatencyHistSnapshot::default().quantile_ns(0.5), None);
        assert!(s.summary().starts_with("n=100"));
    }

    #[test]
    fn bucket_of_boundary_values() {
        // 0 ns must not underflow the leading_zeros math; it lands in
        // bucket 0 together with 1 ns.
        assert_eq!(LatencyHist::bucket_of(0), 0);
        assert_eq!(LatencyHist::bucket_of(1), 0);
        assert_eq!(LatencyHist::bucket_of(2), 1);
        assert_eq!(LatencyHist::bucket_of(3), 1);
        // Exact powers of two open their own bucket; one less stays below.
        for b in 1..HIST_BUCKETS - 1 {
            let p = 1u64 << b;
            assert_eq!(LatencyHist::bucket_of(p), b, "2^{b}");
            assert_eq!(LatencyHist::bucket_of(p - 1), b - 1, "2^{b}-1");
        }
        // Everything at or beyond 2^31 ns (~2.1 s) clamps into the last
        // open-ended bucket, including u64::MAX.
        assert_eq!(LatencyHist::bucket_of(1u64 << 31), HIST_BUCKETS - 1);
        assert_eq!(LatencyHist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn hist_extreme_samples_round_trip_through_snapshot() {
        let h = LatencyHist::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(s.count(), 2);
        // The max-bucket quantile reports the open-ended sentinel, not a
        // wrapped `2 << 63`.
        assert_eq!(s.quantile_ns(1.0), Some(u64::MAX));
    }

    #[test]
    fn counter_sum_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(0, u64::MAX);
        c.add(1, 5);
        assert_eq!(c.get(), u64::MAX, "shard sum must saturate");
    }

    #[test]
    fn snapshot_sums_saturate_instead_of_wrapping() {
        let mut buckets = [0u64; HIST_BUCKETS];
        buckets[0] = u64::MAX;
        buckets[1] = 7;
        let s = LatencyHistSnapshot { buckets };
        assert_eq!(s.count(), u64::MAX, "bucket sum must saturate");
        // quantile_ns must terminate and stay in range even when saturated.
        assert_eq!(s.quantile_ns(0.0), Some(2));
        assert!(s.quantile_ns(1.0).is_some());

        let snap = TxStatsSnapshot {
            commits: u64::MAX,
            aborts: 10,
            ..Default::default()
        };
        // attempts saturates; the rate stays finite and in [0, 1].
        let r = snap.abort_rate();
        assert!(r.is_finite() && (0.0..=1.0).contains(&r));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.50s");
    }
}
