//! A small, dependency-free async executor for the TLE runtime.
//!
//! The async entry points (`critical_async` and friends in `tle-core`) turn
//! every blocking edge of the TM kernels into `Poll::Pending` + a re-armed
//! [`Waker`]; this module supplies the thing that polls them: a fixed pool
//! of worker threads sharing one injector queue, a binary-heap timer wheel
//! for timed waits, and a [`Exec::block_on`] entry for synchronous callers.
//! It exists for the same reason as `shims/` — the container has no route to
//! crates.io, so tokio-style runtimes are out of reach — and it deliberately
//! implements only what the TLE workloads need:
//!
//! - [`Exec::spawn`] — run a `Send` future to completion, returning a
//!   [`JoinHandle`] that is itself a future (and a blocking `join`).
//! - [`Exec::block_on`] — drive a future from a plain thread, parking that
//!   thread between polls (legal: the *caller* is not a worker).
//! - [`sleep_until`] / [`yield_now`] — the timer and cooperative-yield
//!   futures the paced-session KV driver and the async runner are built on.
//! - [`current`] — the worker-local handle through which nested primitives
//!   (timed condvar waits) reach the timer wheel.
//!
//! Every worker installs the waker park backend ([`crate::park`]), so any
//! kernel edge that would block the OS under a worker trips the
//! blocking-wait audit in debug builds.
//!
//! Scheduling is intentionally plain: one global injector protected by a
//! mutex, workers woken through a condvar. The TLE workloads this executor
//! exists for (thousands of paced logical sessions awaiting lock waits)
//! spend their cycles inside the TM kernels, not in the scheduler, and a
//! mutex-guarded deque keeps the wake/park protocol easy to audit — the
//! timer heap and the run queue share one lock, so a worker deciding to
//! sleep holds the whole truth while computing its wake-up time.

use crate::park::{self, WakerPark};
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// A spawned task: the future plus its re-schedule plumbing.
struct Task {
    /// The future, boxed and pinned; `None` once complete. Behind a mutex
    /// because a stale timer or a racing waker may poke a task that another
    /// worker is polling.
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    exec: Weak<ExecInner>,
    /// Collapses redundant wakes between poll rounds: a task already sitting
    /// in the run queue is not enqueued twice.
    queued: AtomicBool,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if self.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(exec) = self.exec.upgrade() {
            exec.push(self);
        }
    }

    fn wake_by_ref(self: &Arc<Self>) {
        Arc::clone(self).wake();
    }
}

/// A timer heap entry: min-ordered by deadline (BinaryHeap is a max-heap, so
/// `Ord` is reversed), tie-broken by insertion sequence for determinism.
struct TimerEntry {
    at: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the earliest deadline is the heap maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Run queue + timer wheel, under one lock (see module docs).
#[derive(Default)]
struct Queues {
    run: VecDeque<Arc<Task>>,
    timers: BinaryHeap<TimerEntry>,
    shutdown: bool,
}

struct ExecInner {
    queues: Mutex<Queues>,
    cv: Condvar,
    timer_seq: AtomicU64,
    /// Tasks spawned and not yet finished (diagnostics; `Exec::live_tasks`).
    live: AtomicUsize,
}

impl ExecInner {
    fn push(&self, task: Arc<Task>) {
        let mut q = self.queues.lock().expect("executor queue poisoned");
        q.run.push_back(task);
        drop(q);
        self.cv.notify_one();
    }

    fn register_timer(&self, at: Instant, waker: Waker) {
        let seq = self.timer_seq.fetch_add(1, Ordering::Relaxed);
        let mut q = self.queues.lock().expect("executor queue poisoned");
        let earliest = q.timers.peek().map(|t| t.at);
        q.timers.push(TimerEntry { at, seq, waker });
        drop(q);
        // A new earliest deadline must interrupt a worker sleeping on the
        // old one (notify_all: the sleeping worker is any of them).
        if earliest.is_none_or(|e| at < e) {
            self.cv.notify_all();
        }
    }

    /// Worker loop body: run tasks, fire timers, sleep on the condvar.
    fn work(self: &Arc<Self>) {
        loop {
            let task = {
                let mut q = self.queues.lock().expect("executor queue poisoned");
                loop {
                    let now = Instant::now();
                    // Fire due timers first: their wakes enqueue tasks.
                    while q.timers.peek().is_some_and(|t| t.at <= now) {
                        let entry = q.timers.pop().expect("peeked entry");
                        // Waking may re-enter `push` → the queue mutex; do it
                        // outside the lock.
                        drop(q);
                        entry.waker.wake();
                        q = self.queues.lock().expect("executor queue poisoned");
                    }
                    if let Some(t) = q.run.pop_front() {
                        break t;
                    }
                    if q.shutdown {
                        return;
                    }
                    match q.timers.peek().map(|t| t.at) {
                        Some(at) => {
                            let now = Instant::now();
                            if at > now {
                                let (guard, _timeout) = self
                                    .cv
                                    .wait_timeout(q, at - now)
                                    .expect("executor queue poisoned");
                                q = guard;
                            }
                        }
                        None => {
                            q = self.cv.wait(q).expect("executor queue poisoned");
                        }
                    }
                }
            };
            // Clear `queued` before polling: a wake landing mid-poll must
            // re-enqueue (the future may return Pending having already
            // consumed the event).
            task.queued.store(false, Ordering::Release);
            let waker = Waker::from(Arc::clone(&task));
            let mut cx = Context::from_waker(&waker);
            let mut slot = task.future.lock().expect("task future poisoned");
            if let Some(fut) = slot.as_mut() {
                if fut.as_mut().poll(&mut cx).is_ready() {
                    *slot = None;
                    self.live.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }
}

/// The multi-worker executor. Dropping it shuts the workers down after the
/// queue drains of *scheduled* work (tasks waiting on never-armed wakers are
/// abandoned, like any runtime teardown).
pub struct Exec {
    inner: Arc<ExecInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Handle>> = const { std::cell::RefCell::new(None) };
}

/// A cloneable reference to a running executor ([`current`]).
#[derive(Clone)]
pub struct Handle {
    inner: Weak<ExecInner>,
}

impl Handle {
    /// Arrange for `waker` to be woken at `at` (idempotent per
    /// registration; re-registering every poll is fine — stale entries fire
    /// as harmless spurious wakes).
    pub fn register_timer(&self, at: Instant, waker: Waker) {
        if let Some(inner) = self.inner.upgrade() {
            inner.register_timer(at, waker);
        } else {
            // Executor gone: wake immediately so the task can observe
            // shutdown instead of sleeping forever.
            waker.wake();
        }
    }
}

/// The executor handle installed on this thread (workers, and threads inside
/// [`Exec::block_on`]). Timed futures use it to reach the timer wheel.
pub fn current() -> Option<Handle> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(h: Option<Handle>) -> Option<Handle> {
    CURRENT.with(|c| c.replace(h))
}

impl Exec {
    /// Start an executor with `workers` worker threads (min 1, capped at
    /// 512 as a fat-finger guard).
    pub fn new(workers: usize) -> Self {
        let workers = workers.clamp(1, 512);
        let inner = Arc::new(ExecInner {
            queues: Mutex::new(Queues::default()),
            cv: Condvar::new(),
            timer_seq: AtomicU64::new(0),
            live: AtomicUsize::new(0),
        });
        let joins = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tle-exec-{i}"))
                    .spawn(move || {
                        // Workers never OS-park inside kernel wait edges;
                        // the guard lives for the whole worker.
                        let _park = park::install(&WakerPark);
                        let _cur = set_current(Some(Handle {
                            inner: Arc::downgrade(&inner),
                        }));
                        inner.work();
                    })
                    .expect("spawn executor worker")
            })
            .collect();
        Exec {
            inner,
            workers: joins,
        }
    }

    /// A handle usable from any thread (timer registration).
    pub fn handle(&self) -> Handle {
        Handle {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Tasks spawned and not yet run to completion.
    pub fn live_tasks(&self) -> usize {
        self.inner.live.load(Ordering::Acquire)
    }

    /// Spawn `fut` onto the workers; the [`JoinHandle`] resolves to its
    /// output.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let shared = Arc::new(JoinState {
            result: Mutex::new(JoinSlot {
                value: None,
                waker: None,
            }),
            cv: Condvar::new(),
        });
        let shared2 = Arc::clone(&shared);
        let wrapped = async move {
            let out = fut.await;
            let mut slot = shared2.result.lock().expect("join state poisoned");
            slot.value = Some(out);
            let waker = slot.waker.take();
            drop(slot);
            shared2.cv.notify_all();
            if let Some(w) = waker {
                w.wake();
            }
        };
        self.inner.live.fetch_add(1, Ordering::AcqRel);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(wrapped))),
            exec: Arc::downgrade(&self.inner),
            queued: AtomicBool::new(true),
        });
        self.inner.push(task);
        JoinHandle { shared }
    }

    /// Drive `fut` to completion on the *calling* thread. The caller parks
    /// between polls (it is not a worker, so OS parking is legal); timers
    /// armed by the future fire on the workers. The executor handle is
    /// installed for the duration so nested timed waits find the wheel.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        let prev = set_current(Some(self.handle()));
        let restore = RestoreCurrent(prev);
        let parker = Arc::new(ThreadParker {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        });
        let waker = Waker::from(Arc::clone(&parker));
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        let out = loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => break v,
                Poll::Pending => {
                    while !parker.notified.swap(false, Ordering::AcqRel) {
                        std::thread::park();
                    }
                }
            }
        };
        drop(restore);
        out
    }
}

/// Restores the previous thread-local executor handle (unwind-safe).
struct RestoreCurrent(Option<Handle>);

impl Drop for RestoreCurrent {
    fn drop(&mut self) {
        set_current(self.0.take());
    }
}

/// `block_on`'s waker: unpark the blocked thread.
struct ThreadParker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadParker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

impl Drop for Exec {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queues.lock().expect("executor queue poisoned");
            q.shutdown = true;
        }
        self.cv_notify_all();
        for j in self.workers.drain(..) {
            let _ = j.join();
        }
    }
}

impl Exec {
    fn cv_notify_all(&self) {
        self.inner.cv.notify_all();
    }
}

struct JoinSlot<T> {
    value: Option<T>,
    waker: Option<Waker>,
}

struct JoinState<T> {
    result: Mutex<JoinSlot<T>>,
    cv: Condvar,
}

/// Handle to a spawned task's output; await it, or block with
/// [`JoinHandle::join`].
pub struct JoinHandle<T> {
    shared: Arc<JoinState<T>>,
}

impl<T> JoinHandle<T> {
    /// Block the calling thread until the task completes. Must not be
    /// called from a worker (it would OS-park the worker); debug builds
    /// catch that through the park audit.
    pub fn join(self) -> T {
        park::enter_os_park();
        let mut slot = self.shared.result.lock().expect("join state poisoned");
        loop {
            if let Some(v) = slot.value.take() {
                return v;
            }
            slot = self.shared.cv.wait(slot).expect("join state poisoned");
        }
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.shared.result.lock().expect("join state poisoned");
        if let Some(v) = slot.value.take() {
            Poll::Ready(v)
        } else {
            slot.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Cooperatively yield: `Pending` once, waking immediately, so every other
/// queued task gets a turn. The async runner's analogue of
/// `thread::yield_now` in retry/backoff loops.
pub fn yield_now() -> YieldNow {
    YieldNow { polled: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Sleep until `at`. Uses the current executor's timer wheel when one is
/// installed; outside an executor (e.g. under the cooperative explorer's
/// manual polling) it degrades to wake-immediately polling, which the
/// enclosing poll loop absorbs.
pub fn sleep_until(at: Instant) -> Sleep {
    Sleep { at }
}

/// Sleep for `d` from now (see [`sleep_until`]).
pub fn sleep(d: Duration) -> Sleep {
    Sleep {
        at: Instant::now() + d,
    }
}

/// Future returned by [`sleep_until`] / [`sleep`].
pub struct Sleep {
    at: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.at {
            return Poll::Ready(());
        }
        match current() {
            Some(h) => h.register_timer(self.at, cx.waker().clone()),
            // No timer wheel: stay hot so the manual poll loop re-polls.
            None => cx.waker().wake_by_ref(),
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_plain_value() {
        let ex = Exec::new(1);
        assert_eq!(ex.block_on(async { 7 }), 7);
    }

    #[test]
    fn spawn_and_join() {
        let ex = Exec::new(2);
        let h = ex.spawn(async { 21 * 2 });
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn join_handle_is_a_future() {
        let ex = Exec::new(2);
        let h = ex.spawn(async { 5u32 });
        let v = ex.block_on(async move { h.await + 1 });
        assert_eq!(v, 6);
    }

    #[test]
    fn many_tasks_on_few_workers() {
        let ex = Exec::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..200)
            .map(|i| {
                let total = Arc::clone(&total);
                ex.spawn(async move {
                    yield_now().await;
                    total.fetch_add(i, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(total.load(Ordering::Relaxed), (0..200).sum());
        // `join()` returns when the result publishes (inside the final
        // poll); the worker decrements the diagnostic counter just after,
        // so give the last decrement a moment to land.
        for _ in 0..10_000 {
            if ex.live_tasks() == 0 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(ex.live_tasks(), 0);
    }

    #[test]
    fn sleep_fires_after_deadline() {
        let ex = Exec::new(1);
        let t0 = Instant::now();
        ex.block_on(async {
            sleep(Duration::from_millis(20)).await;
        });
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn timers_interleave_with_tasks() {
        let ex = Exec::new(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = [30u64, 10, 20]
            .into_iter()
            .map(|ms| {
                let order = Arc::clone(&order);
                ex.spawn(async move {
                    sleep(Duration::from_millis(ms)).await;
                    order.lock().unwrap().push(ms);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(*order.lock().unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn workers_run_under_waker_park_mode() {
        let ex = Exec::new(1);
        let mode = ex.spawn(async { crate::park::current_mode() }).join();
        assert_eq!(mode, crate::park::ParkMode::Waker);
        // The spawning thread is unaffected.
        assert_eq!(crate::park::current_mode(), crate::park::ParkMode::Os);
    }

    #[test]
    fn block_on_installs_current_handle() {
        let ex = Exec::new(1);
        assert!(current().is_none());
        ex.block_on(async {
            assert!(current().is_some());
        });
        assert!(current().is_none());
    }

    #[test]
    fn yield_now_is_pending_once() {
        let ex = Exec::new(1);
        ex.block_on(async {
            yield_now().await;
            yield_now().await;
        });
    }
}
