//! Transaction event tracing: lock-free per-thread ring buffers.
//!
//! The statistics counters ([`crate::stats`]) tell us *how many* aborts of
//! each cause occurred; this module records *what happened*, in order: every
//! begin/read/write/commit/abort, quiescence-drain span, retry and serial
//! fallback, stamped with a process-wide logical timestamp. A whole elision
//! episode — attempt, conflict on orec 17, backoff, retry in serial mode —
//! is reconstructable from the merged event stream ([`snapshot`]).
//!
//! # Design
//!
//! - **Per-thread rings, single writer.** Each thread owns a fixed-size ring
//!   ([`RING_CAP`] events). [`emit`] appends to the calling thread's ring
//!   with plain relaxed stores; no CAS, no sharing on the write path.
//! - **Logical time.** A global `AtomicU64` orders events across threads;
//!   merging sorts by it. (The raw counter bump is the only cross-thread
//!   traffic per event.)
//! - **Packed events.** An event is three `u64` words (timestamp, detail,
//!   packed kind/mode/cause), stored as atomics so concurrent readers are
//!   race-free by construction. A [`snapshot`] taken while writers are
//!   running may see a *torn* oldest event as the ring wraps; tolerated, the
//!   tool is diagnostic.
//! - **Feature-gated.** Without the `trace` cargo feature every function
//!   here is an empty `#[inline]` stub and `TxEvent` construction is dead
//!   code — the hooks in `tle-stm`/`tle-htm`/`tle-core` compile to nothing
//!   (asserted by a `#[cfg]` test below), so tier-1 performance is
//!   untouched.

use crate::AbortCause;

/// Which execution mode an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TxMode {
    /// `ml_wt` software transaction.
    Stm = 0,
    /// NOrec software transaction.
    Norec = 1,
    /// Simulated hardware transaction.
    Htm = 2,
    /// Serial-irrevocable section (fallback or unsafe op).
    Serial = 3,
    /// Baseline / adaptive lock path (real mutex held).
    Locked = 4,
}

impl TxMode {
    /// Every mode, in discriminant order.
    pub const ALL: [TxMode; 5] = [
        TxMode::Stm,
        TxMode::Norec,
        TxMode::Htm,
        TxMode::Serial,
        TxMode::Locked,
    ];

    /// Decode from the packed representation.
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            TxMode::Stm => "stm",
            TxMode::Norec => "norec",
            TxMode::Htm => "htm",
            TxMode::Serial => "serial",
            TxMode::Locked => "locked",
        }
    }
}

/// What happened. `detail` in [`TxEvent`] is kind-specific (orec index,
/// cache-line index, wait nanoseconds, attempt number, ...); see each
/// variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// A transaction attempt started. detail: start timestamp / snapshot.
    Begin = 0,
    /// A transactional read was recorded. detail: orec index (STM),
    /// cache-line table index (HTM), or cell address (NOrec).
    Read = 1,
    /// A transactional write was recorded. detail: as for `Read`.
    Write = 2,
    /// The attempt committed. detail: commit timestamp (STM/NOrec) or
    /// redo-log length (HTM).
    Commit = 3,
    /// The attempt aborted (cause attached). detail: kind-specific.
    Abort = 4,
    /// A conflict/doom/validation failure was *detected* (cause attached;
    /// the abort itself follows as a separate event). detail: orec or line
    /// index where detected.
    Conflict = 5,
    /// A successful timestamp extension. detail: new start time.
    Extend = 6,
    /// A quiescence drain started waiting. detail: drain-upto timestamp.
    QuiesceStart = 7,
    /// A quiescence drain finished. detail: nanoseconds waited.
    QuiesceEnd = 8,
    /// The runner is about to retry after a failed attempt (cause
    /// attached). detail: attempt number (backoff is `~16 << attempt` spins,
    /// bounded by the policy ceiling).
    Retry = 9,
    /// The runner gave up on concurrent attempts and entered the serial
    /// fallback. detail: attempts consumed before serializing.
    Fallback = 10,
    /// A committed wait registration parked the thread. detail: 1 if the
    /// wait timed out (and the cancel path ran), 0 if signaled.
    WaitPark = 11,
    /// The fault-injection oracle delivered a fault at a hazard point
    /// (cause attached for abort-class faults). detail:
    /// [`crate::fault::Hazard`] index.
    FaultInject = 12,
    /// The starvation ladder escalated a thread to serial-irrevocable
    /// mode after too many consecutive aborts. detail: the consecutive
    /// abort count that triggered the escalation.
    Escalate = 13,
    /// The quiescence watchdog observed a drain exceeding its deadline
    /// (the drain keeps waiting; this is the trip, not a failure).
    /// detail: nanoseconds waited so far.
    QuiesceStall = 14,
    /// The adaptive policy controller switched a lock's algorithm (cause
    /// attached when an abort class triggered the switch). detail: the old
    /// mode's discriminant in bits 8.. and the new mode's in bits ..8.
    ModeSwitch = 15,
    /// A transaction's retry-time budget expired before it could commit;
    /// the runner gave up instead of retrying or serializing. detail:
    /// attempts consumed before the deadline fired.
    DeadlineExceeded = 16,
    /// The admission controller shed a request at dispatch: the lock's
    /// degradation ladder is in its shed step, so the section failed fast
    /// instead of joining the storm. detail: queue depth observed at the
    /// shed decision.
    Shed = 17,
}

impl TraceKind {
    /// Every kind, in discriminant order.
    pub const ALL: [TraceKind; 18] = [
        TraceKind::Begin,
        TraceKind::Read,
        TraceKind::Write,
        TraceKind::Commit,
        TraceKind::Abort,
        TraceKind::Conflict,
        TraceKind::Extend,
        TraceKind::QuiesceStart,
        TraceKind::QuiesceEnd,
        TraceKind::Retry,
        TraceKind::Fallback,
        TraceKind::WaitPark,
        TraceKind::FaultInject,
        TraceKind::Escalate,
        TraceKind::QuiesceStall,
        TraceKind::ModeSwitch,
        TraceKind::DeadlineExceeded,
        TraceKind::Shed,
    ];

    /// Decode from the packed representation.
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Begin => "begin",
            TraceKind::Read => "read",
            TraceKind::Write => "write",
            TraceKind::Commit => "commit",
            TraceKind::Abort => "abort",
            TraceKind::Conflict => "conflict",
            TraceKind::Extend => "extend",
            TraceKind::QuiesceStart => "quiesce-start",
            TraceKind::QuiesceEnd => "quiesce-end",
            TraceKind::Retry => "retry",
            TraceKind::Fallback => "fallback",
            TraceKind::WaitPark => "wait-park",
            TraceKind::FaultInject => "fault-inject",
            TraceKind::Escalate => "escalate",
            TraceKind::QuiesceStall => "quiesce-stall",
            TraceKind::ModeSwitch => "mode-switch",
            TraceKind::DeadlineExceeded => "deadline-exceeded",
            TraceKind::Shed => "shed",
        }
    }
}

/// One decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxEvent {
    /// Process-wide logical timestamp (total order across threads).
    pub ts: u64,
    /// Tracing thread id (dense, assigned at first emit per thread).
    pub thread: u32,
    pub kind: TraceKind,
    pub mode: TxMode,
    /// Abort cause, for `Abort`/`Conflict`/`Retry` events.
    pub cause: Option<AbortCause>,
    /// Kind-specific payload; see [`TraceKind`].
    pub detail: u64,
}

impl std::fmt::Display for TxEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>8}] t{:02} {:>6} {:<13} detail={}",
            self.ts,
            self.thread,
            self.mode.label(),
            self.kind.label(),
            self.detail
        )?;
        if let Some(c) = self.cause {
            write!(f, " cause={c}")?;
        }
        Ok(())
    }
}

/// Events retained per thread. Power of two; older events are overwritten.
pub const RING_CAP: usize = 4096;

/// Whether event tracing is compiled in (`trace` cargo feature).
pub const fn compiled() -> bool {
    cfg!(feature = "trace")
}

#[cfg(feature = "trace")]
mod imp {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    /// Global logical clock: one bump per event.
    static LOGICAL_CLOCK: AtomicU64 = AtomicU64::new(0);
    /// Dense tracing-thread ids.
    static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

    fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static MY_RING: Arc<Ring> = {
            let ring = Arc::new(Ring::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
            registry().lock().unwrap().push(Arc::clone(&ring));
            ring
        };
    }

    /// Three packed words per event: ts, detail, meta.
    struct Slot {
        ts: AtomicU64,
        detail: AtomicU64,
        meta: AtomicU64,
    }

    pub(super) struct Ring {
        thread: u32,
        /// Monotonic write cursor; the slot index is `head % RING_CAP`.
        head: AtomicU64,
        slots: Box<[Slot]>,
    }

    impl Ring {
        fn new(thread: u32) -> Self {
            Ring {
                thread,
                head: AtomicU64::new(0),
                slots: (0..RING_CAP)
                    .map(|_| Slot {
                        ts: AtomicU64::new(0),
                        detail: AtomicU64::new(0),
                        meta: AtomicU64::new(0),
                    })
                    .collect(),
            }
        }

        #[inline]
        fn push(&self, kind: TraceKind, mode: TxMode, cause: Option<AbortCause>, detail: u64) {
            let ts = LOGICAL_CLOCK.fetch_add(1, Ordering::Relaxed);
            // tle-lint: allow(R8, "single-writer ring: this load reads the owning thread's own prior store; the Release below is what orders the payload for snapshot readers")
            let h = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[(h as usize) & (RING_CAP - 1)];
            let cause_code = cause.map(|c| c.index() as u64 + 1).unwrap_or(0);
            let meta = kind as u64 | (mode as u64) << 8 | cause_code << 16;
            slot.ts.store(ts, Ordering::Relaxed);
            slot.detail.store(detail, Ordering::Relaxed);
            slot.meta.store(meta, Ordering::Relaxed);
            // Publish after the payload so a reader that observes the new
            // head sees initialized (if possibly torn-on-wrap) words.
            self.head.store(h + 1, Ordering::Release);
        }

        fn snapshot_into(&self, out: &mut Vec<TxEvent>) {
            let h = self.head.load(Ordering::Acquire);
            let n = h.min(RING_CAP as u64);
            for i in (h - n)..h {
                let slot = &self.slots[(i as usize) & (RING_CAP - 1)];
                let meta = slot.meta.load(Ordering::Relaxed);
                let kind = match TraceKind::from_u8((meta & 0xFF) as u8) {
                    Some(k) => k,
                    None => continue,
                };
                let mode = match TxMode::from_u8(((meta >> 8) & 0xFF) as u8) {
                    Some(m) => m,
                    None => continue,
                };
                let cause_code = ((meta >> 16) & 0xFF) as u8;
                let cause = if cause_code == 0 {
                    None
                } else {
                    AbortCause::from_u8(cause_code - 1)
                };
                out.push(TxEvent {
                    ts: slot.ts.load(Ordering::Relaxed),
                    thread: self.thread,
                    kind,
                    mode,
                    cause,
                    detail: slot.detail.load(Ordering::Relaxed),
                });
            }
        }
    }

    #[inline]
    pub fn emit(kind: TraceKind, mode: TxMode, cause: Option<AbortCause>, detail: u64) {
        MY_RING.with(|r| r.push(kind, mode, cause, detail));
    }

    pub fn snapshot() -> Vec<TxEvent> {
        let mut out = Vec::new();
        for ring in registry().lock().unwrap().iter() {
            ring.snapshot_into(&mut out);
        }
        out.sort_by_key(|e| e.ts);
        out
    }

    pub fn clear() {
        // Rings belong to their writer threads; "clearing" just forgets
        // everything published so far by resetting each ring's cursor. A
        // concurrent writer may lose a handful of in-flight events, which is
        // fine between benchmark trials (the only time this is called).
        for ring in registry().lock().unwrap().iter() {
            ring.head.store(0, Ordering::Release);
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::*;

    /// No-op: the `trace` feature is disabled.
    #[inline(always)]
    pub fn emit(_kind: TraceKind, _mode: TxMode, _cause: Option<AbortCause>, _detail: u64) {}

    /// Always empty: the `trace` feature is disabled.
    pub fn snapshot() -> Vec<TxEvent> {
        Vec::new()
    }

    /// No-op: the `trace` feature is disabled.
    pub fn clear() {}
}

/// Record one event in the calling thread's ring (no-op unless the `trace`
/// feature is enabled).
#[inline(always)]
pub fn emit(kind: TraceKind, mode: TxMode, cause: Option<AbortCause>, detail: u64) {
    imp::emit(kind, mode, cause, detail);
}

/// Merge every thread's ring into one timestamp-ordered event list. Events
/// older than [`RING_CAP`]-per-thread have been overwritten. Empty when the
/// `trace` feature is disabled.
pub fn snapshot() -> Vec<TxEvent> {
    imp::snapshot()
}

/// Forget all recorded events (between benchmark trials).
pub fn clear() {
    imp::clear()
}

/// Per-kind/per-cause tally of an event list — the summarize half of the
/// `tle-trace` tool, also handy in tests.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Event counts indexed by [`TraceKind`] discriminant.
    pub by_kind: [u64; TraceKind::ALL.len()],
    /// Abort counts indexed by [`AbortCause::index`] (from `Abort` events).
    pub aborts_by_cause: [u64; AbortCause::COUNT],
    /// Distinct tracing threads seen.
    pub threads: u64,
}

impl TraceSummary {
    /// Tally `events`.
    pub fn of(events: &[TxEvent]) -> Self {
        let mut s = TraceSummary::default();
        let mut seen = std::collections::HashSet::new();
        for e in events {
            s.by_kind[e.kind as usize] += 1;
            if e.kind == TraceKind::Abort {
                if let Some(c) = e.cause {
                    s.aborts_by_cause[c.index()] += 1;
                }
            }
            seen.insert(e.thread);
        }
        s.threads = seen.len() as u64;
        s
    }

    /// Count of one event kind.
    pub fn kind(&self, k: TraceKind) -> u64 {
        self.by_kind[k as usize]
    }

    /// Count of `Abort` events with one cause.
    pub fn aborts(&self, c: AbortCause) -> u64 {
        self.aborts_by_cause[c.index()]
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests_enabled {
    use super::*;

    // The trace state is process-global and tests run concurrently, so
    // these tests only assert on events they can attribute to themselves
    // (via unique detail values), never on global totals.

    #[test]
    fn emit_and_snapshot_roundtrip() {
        let marker = 0xDEAD_0001u64;
        emit(TraceKind::Begin, TxMode::Stm, None, marker);
        emit(
            TraceKind::Abort,
            TxMode::Stm,
            Some(AbortCause::ReadConflict),
            marker,
        );
        let events: Vec<_> = snapshot()
            .into_iter()
            .filter(|e| e.detail == marker)
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::Begin);
        assert_eq!(events[0].cause, None);
        assert_eq!(events[1].kind, TraceKind::Abort);
        assert_eq!(events[1].cause, Some(AbortCause::ReadConflict));
        assert!(
            events[0].ts < events[1].ts,
            "logical time must order events"
        );
        assert_eq!(events[0].thread, events[1].thread);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let marker = 0xDEAD_0002u64;
        for i in 0..(RING_CAP as u64 + 10) {
            emit(TraceKind::Read, TxMode::Htm, None, marker + (i << 32));
        }
        let mine: Vec<_> = snapshot()
            .into_iter()
            .filter(|e| e.detail & 0xFFFF_FFFF == marker)
            .collect();
        assert!(mine.len() <= RING_CAP);
        // The newest event must survive the wrap.
        assert!(mine.iter().any(|e| e.detail >> 32 == RING_CAP as u64 + 9));
    }

    #[test]
    fn events_merge_across_threads() {
        let marker = 0xDEAD_0003u64;
        let h = std::thread::spawn(move || {
            emit(TraceKind::Commit, TxMode::Norec, None, marker);
        });
        h.join().unwrap();
        emit(TraceKind::Commit, TxMode::Stm, None, marker);
        let mine: Vec<_> = snapshot()
            .into_iter()
            .filter(|e| e.detail == marker)
            .collect();
        assert_eq!(mine.len(), 2);
        assert_ne!(mine[0].thread, mine[1].thread);
    }

    #[test]
    fn summary_tallies_kinds_and_causes() {
        let events = vec![
            TxEvent {
                ts: 0,
                thread: 0,
                kind: TraceKind::Begin,
                mode: TxMode::Stm,
                cause: None,
                detail: 0,
            },
            TxEvent {
                ts: 1,
                thread: 1,
                kind: TraceKind::Abort,
                mode: TxMode::Htm,
                cause: Some(AbortCause::Capacity),
                detail: 0,
            },
        ];
        let s = TraceSummary::of(&events);
        assert_eq!(s.kind(TraceKind::Begin), 1);
        assert_eq!(s.kind(TraceKind::Abort), 1);
        assert_eq!(s.aborts(AbortCause::Capacity), 1);
        assert_eq!(s.threads, 2);
        assert!(compiled());
    }
}

#[cfg(all(test, not(feature = "trace")))]
mod tests_disabled {
    use super::*;

    /// Acceptance check: with the feature off the hooks are no-ops — emit
    /// records nothing and snapshot is always empty.
    #[test]
    fn hooks_compile_to_noops_without_feature() {
        assert!(!compiled());
        emit(TraceKind::Begin, TxMode::Stm, None, 1);
        emit(TraceKind::Abort, TxMode::Htm, Some(AbortCause::Conflict), 2);
        assert!(snapshot().is_empty());
        clear();
        assert!(snapshot().is_empty());
    }
}

#[cfg(test)]
mod tests_common {
    use super::*;

    #[test]
    fn kind_and_mode_roundtrip() {
        for (i, k) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(TraceKind::from_u8(i as u8), Some(*k));
        }
        for (i, m) in TxMode::ALL.iter().enumerate() {
            assert_eq!(TxMode::from_u8(i as u8), Some(*m));
        }
        assert_eq!(TraceKind::from_u8(200), None);
        assert_eq!(TxMode::from_u8(200), None);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds: std::collections::HashSet<_> =
            TraceKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(kinds.len(), TraceKind::ALL.len());
        let modes: std::collections::HashSet<_> = TxMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(modes.len(), TxMode::ALL.len());
    }

    #[test]
    fn event_display_is_readable() {
        let e = TxEvent {
            ts: 42,
            thread: 3,
            kind: TraceKind::Abort,
            mode: TxMode::Htm,
            cause: Some(AbortCause::Capacity),
            detail: 7,
        };
        let s = format!("{e}");
        assert!(s.contains("abort"));
        assert!(s.contains("htm"));
        assert!(s.contains("capacity"));
    }
}
