//! # tle-base — shared primitives for the TLE reproduction stack
//!
//! This crate holds the low-level building blocks that both the software
//! transactional memory (`tle-stm`) and the simulated hardware transactional
//! memory (`tle-htm`) are built from:
//!
//! - [`TxVal`] / [`TCell`] — word-coded transactional memory locations.
//!   Every transactional datum is stored in an `AtomicU64`, which keeps the
//!   whole runtime free of undefined behaviour: the racy access patterns of
//!   word-based STM (doomed readers observing in-flight writer state) become
//!   well-defined races on atomics.
//! - [`Clock`] — the global version clock used by the `ml_wt` STM algorithm.
//! - [`OrecTable`] — the striped ownership-record table (versioned write
//!   locks) indexed by cell address.
//! - [`SlotRegistry`] — a fixed-size registry of per-thread publication
//!   slots, used for quiescence epochs (STM) and transaction identities
//!   (HTM simulation).
//! - [`Gate`] — the global serial-irrevocability gate: transactions run on
//!   the concurrent side, irrevocable/serialized work takes the exclusive
//!   side (this is the GCC libitm "serial mode" used both for unsafe
//!   operations and as the abort-storm fallback).
//! - [`stats`] — cheap sharded statistics counters, per-abort-cause
//!   breakdowns and latency histograms.
//! - [`trace`] — feature-gated per-thread event rings for reconstructing
//!   whole elision episodes (enable with the `trace` cargo feature).
//! - [`rng`] — tiny deterministic RNGs (splitmix64 / xorshift64*) used for
//!   seeded workload generation and simulated "event" aborts.
//! - [`fault`] — the deterministic fault-injection oracle consulted at the
//!   runtime's hazard points (always compiled; one relaxed flag load when
//!   no plan is installed).
//! - [`sched`] — feature-gated (`check-sched`) yield points for the
//!   deterministic model-checking scheduler in `tle-check`.
//! - [`history`] — feature-gated (`check-history`) transactional history
//!   recorder feeding the offline opacity checker.
//! - [`mutant`] — feature-gated (`check-mutants`) seeded-bug switches used
//!   to validate that the checker actually catches bugs.
//! - [`park`] — the park-abstraction trait separating OS-thread waits from
//!   waker-driven (`Poll::Pending`) waits, with a debug audit that executor
//!   workers never reach a real OS park.
//! - [`exec`] — the in-tree, dependency-free async executor that the
//!   `critical_async` entry points in `tle-core` run on.

pub mod abort;
pub mod cell;
pub mod clock;
pub mod exec;
pub mod fault;
pub mod gate;
pub mod history;
pub mod json;
pub mod mutant;
pub mod orec;
pub mod park;
pub mod rng;
pub mod sched;
pub mod slots;
pub mod stats;
pub mod trace;
pub mod window;

pub use abort::AbortCause;
pub use cell::{TCell, TxVal};
pub use clock::Clock;
pub use exec::Exec;
pub use gate::Gate;
pub use orec::{OrecLayout, OrecTable, OrecValue};
pub use park::{OsPark, ParkMode, Parker, WakerPark};
pub use slots::{Slot, SlotRegistry, INACTIVE};
pub use window::{AbortClass, StatWindow, WindowSnapshot, WINDOW_BUCKETS};

/// Size, in bytes, of the cache lines modelled by the HTM simulator and used
/// for padding decisions throughout the workspace.
pub const CACHE_LINE: usize = 64;

/// Round an address down to its cache-line base.
#[inline]
pub fn line_of(addr: usize) -> usize {
    addr / CACHE_LINE
}

/// A `T` padded out to a cache line, to avoid false sharing between
/// per-thread hot words. `crossbeam` has an equivalent type; we keep our own
/// to avoid pulling the dependency into the lowest layer.
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct Padded<T>(pub T);

impl<T> std::ops::Deref for Padded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for Padded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<Padded<u8>>(), 64);
        assert!(std::mem::size_of::<Padded<u8>>() >= 64);
    }

    #[test]
    fn line_of_maps_to_64_byte_granules() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_of(130), 2);
    }
}
