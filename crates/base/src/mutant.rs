//! Seeded-bug switches for validating the model checker (feature
//! `check-mutants`).
//!
//! A checker that has never caught a bug is untested code. This plane lets
//! the `tle-check` test-suite re-introduce, one at a time, the classic TM
//! implementation bugs the kernels guard against, and assert that the
//! explorer + opacity checker flag each of them with a replayable schedule.
//! Each [`Mutant`] names one guard to disable; the kernels consult
//! [`armed`] at the guarded line.
//!
//! Without the `check-mutants` feature, [`armed`] is a `const`-foldable
//! `false` and every guard compiles exactly as before — mutants cannot ship.
//! With the feature, arming is a process-global switch, so tests that arm
//! mutants must serialize themselves (the mutation matrix runs in its own
//! integration-test binary for this reason).

use std::fmt;

/// The seeded bugs. Each corresponds to deleting one safety-critical line
/// from a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// `ml_wt` commit skips commit-time read-set validation: a writer whose
    /// read-set was overwritten mid-flight commits anyway (serializability
    /// violation).
    SkipCommitValidation,
    /// `ml_wt` commit skips the post-commit quiescence drain: a privatizing
    /// commit returns while doomed zombies still hold undo state, so their
    /// rollback can clobber post-privatization non-transactional writes
    /// (paper §IV).
    DropQuiesce,
    /// `ml_wt` rollback releases ownership records *before* replaying the
    /// undo log: concurrent readers see clean orecs over still-dirty data
    /// (torn snapshot).
    EarlyOrecRelease,
    /// Condvar notify is dropped on the floor: a committed signal never
    /// wakes the parked waiter (lost-wakeup deadlock).
    LostSignal,
    /// Simulated-HTM read path skips its doom checks: a transaction doomed
    /// by a committing writer keeps reading and can observe a half-published
    /// redo log (zombie torn snapshot).
    SkipDoomCheck,
    /// Lazy-subscription begin skips the held-lock refusal: an elided
    /// section starts (and later commits) although the fallback lock was
    /// held for its entire speculation window, racing the lock holder's
    /// direct writes (Dice et al., naive lazy subscription hazard #1).
    LazyCommitWithLockHeld,
    /// Lazy-mode lock acquisition skips its doom-all sweep: transactions
    /// already speculating when the lock is taken are never doomed and run
    /// on as zombies over the holder's half-written state (hazard #2).
    LazyZombieEscape,
    /// The lazy subscription's window capture is reordered ahead of
    /// transaction begin, so a lock acquired in between sweeps past an
    /// idle slot and the zombie speculates outside the sandbox (the
    /// compiler/hardware reordering hazard, #3).
    LazySubscriptionReorder,
}

impl Mutant {
    /// All mutants, for matrix-style tests.
    pub const ALL: [Mutant; 8] = [
        Mutant::SkipCommitValidation,
        Mutant::DropQuiesce,
        Mutant::EarlyOrecRelease,
        Mutant::LostSignal,
        Mutant::SkipDoomCheck,
        Mutant::LazyCommitWithLockHeld,
        Mutant::LazyZombieEscape,
        Mutant::LazySubscriptionReorder,
    ];
}

impl fmt::Display for Mutant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mutant::SkipCommitValidation => "skip-commit-validation",
            Mutant::DropQuiesce => "drop-quiesce",
            Mutant::EarlyOrecRelease => "early-orec-release",
            Mutant::LostSignal => "lost-signal",
            Mutant::SkipDoomCheck => "skip-doom-check",
            Mutant::LazyCommitWithLockHeld => "lazy-commit-with-lock-held",
            Mutant::LazyZombieEscape => "lazy-zombie-escape",
            Mutant::LazySubscriptionReorder => "lazy-subscription-reorder",
        };
        f.write_str(s)
    }
}

/// Whether the mutant switches are compiled in.
pub const fn compiled() -> bool {
    cfg!(feature = "check-mutants")
}

#[cfg(feature = "check-mutants")]
mod imp {
    use super::Mutant;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = none armed; otherwise 1 + index into `Mutant::ALL`.
    static ARMED: AtomicU8 = AtomicU8::new(0);

    fn code(m: Mutant) -> u8 {
        Mutant::ALL.iter().position(|&x| x == m).unwrap() as u8 + 1
    }

    #[inline]
    pub fn armed(m: Mutant) -> bool {
        ARMED.load(Ordering::Relaxed) == code(m)
    }

    pub fn arm(m: Mutant) {
        ARMED.store(code(m), Ordering::SeqCst);
    }

    pub fn disarm() {
        ARMED.store(0, Ordering::SeqCst);
    }

    pub fn current() -> Option<Mutant> {
        match ARMED.load(Ordering::Relaxed) {
            0 => None,
            n => Some(Mutant::ALL[(n - 1) as usize]),
        }
    }
}

#[cfg(not(feature = "check-mutants"))]
mod imp {
    use super::Mutant;

    #[inline(always)]
    pub fn armed(_m: Mutant) -> bool {
        false
    }
    pub fn arm(_m: Mutant) {}
    pub fn disarm() {}
    pub fn current() -> Option<Mutant> {
        None
    }
}

/// Is this specific mutant armed? Kernels guard the corresponding line with
/// `if !mutant::armed(..)`. Compiles to `false` without the feature.
#[inline(always)]
pub fn armed(m: Mutant) -> bool {
    imp::armed(m)
}

/// Arm one mutant process-wide (disarming any other). No-op without the
/// feature.
pub fn arm(m: Mutant) {
    imp::arm(m);
}

/// Disarm all mutants.
pub fn disarm() {
    imp::disarm();
}

/// The currently armed mutant, if any.
pub fn current() -> Option<Mutant> {
    imp::current()
}

#[cfg(all(test, not(feature = "check-mutants")))]
mod tests_disabled {
    use super::*;

    /// Mirror of `trace::hooks_compile_to_noops_without_feature`: arming is
    /// impossible without the feature.
    #[test]
    fn mutants_cannot_arm_without_feature() {
        assert!(!compiled());
        for m in Mutant::ALL {
            arm(m);
            assert!(!armed(m), "{m} armed despite feature being off");
            assert_eq!(current(), None);
        }
        disarm();
    }
}

#[cfg(all(test, feature = "check-mutants"))]
mod tests_enabled {
    use super::*;

    #[test]
    fn arming_is_exclusive() {
        assert!(compiled());
        // Single test touching the global switch in this binary.
        for m in Mutant::ALL {
            arm(m);
            assert!(armed(m));
            assert_eq!(current(), Some(m));
            for other in Mutant::ALL {
                if other != m {
                    assert!(!armed(other), "{other} armed alongside {m}");
                }
            }
        }
        disarm();
        assert_eq!(current(), None);
        for m in Mutant::ALL {
            assert!(!armed(m));
        }
    }
}
