//! Word-coded transactional memory cells.
//!
//! Rust has no transactional-memory compiler support (the gap the paper's
//! C++ TMTS fills with `atomic {}` blocks and automatic instrumentation), so
//! this reproduction instruments memory accesses explicitly: every datum a
//! transaction may touch lives in a [`TCell`], and transactional code reads
//! and writes it through the transaction handle. A `TCell<T>` is backed by a
//! single `AtomicU64`; [`TxVal`] encodes `T` to and from that word.
//!
//! Keeping everything word-sized and atomic mirrors word-based STMs like
//! TinySTM / GCC's `ml_wt` (which the paper uses) and — crucially for Rust —
//! makes the "racy" access patterns of such systems well-defined: a doomed
//! transaction may observe a stale or in-flight word, but that is an atomic
//! load whose result is discarded once validation fails.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Types that can be stored in a [`TCell`] by encoding to a single `u64`.
///
/// The encoding must be lossless (`from_word(to_word(v)) == v`). All integer
/// primitives up to 64 bits, `bool`, `char`, `f32`/`f64`, `()` and raw
/// pointers are supported out of the box.
pub trait TxVal: Copy {
    /// Encode the value as a word.
    fn to_word(self) -> u64;
    /// Decode the value from a word produced by [`TxVal::to_word`].
    fn from_word(w: u64) -> Self;
}

macro_rules! impl_txval_int {
    ($($t:ty),*) => {$(
        impl TxVal for $t {
            #[inline]
            fn to_word(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_word(w: u64) -> Self {
                w as $t
            }
        }
    )*};
}

impl_txval_int!(u8, u16, u32, u64, usize);

macro_rules! impl_txval_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl TxVal for $t {
            #[inline]
            fn to_word(self) -> u64 {
                (self as $u) as u64
            }
            #[inline]
            fn from_word(w: u64) -> Self {
                (w as $u) as $t
            }
        }
    )*};
}

impl_txval_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl TxVal for bool {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

impl TxVal for char {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        char::from_u32(w as u32).unwrap_or('\u{FFFD}')
    }
}

impl TxVal for f32 {
    #[inline]
    fn to_word(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        f32::from_bits(w as u32)
    }
}

impl TxVal for f64 {
    #[inline]
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        f64::from_bits(w)
    }
}

impl TxVal for () {
    #[inline]
    fn to_word(self) -> u64 {
        0
    }
    #[inline]
    fn from_word(_: u64) -> Self {}
}

impl<T> TxVal for *mut T {
    #[inline]
    fn to_word(self) -> u64 {
        self as usize as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w as usize as *mut T
    }
}

impl<T> TxVal for *const T {
    #[inline]
    fn to_word(self) -> u64 {
        self as usize as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w as usize as *const T
    }
}

/// Pack two `u32`s into one word; handy for (head, tail)-style pairs that
/// must change together.
impl TxVal for (u32, u32) {
    #[inline]
    fn to_word(self) -> u64 {
        ((self.0 as u64) << 32) | self.1 as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        ((w >> 32) as u32, w as u32)
    }
}

/// A transactional memory location holding a word-coded `T`.
///
/// `TCell` deliberately exposes *no* plain `get`/`set` in safe positions;
/// transactional code goes through a transaction handle, and the
/// `load_direct` / `store_direct` escape hatches exist for initialization,
/// single-threaded phases, and lock-protected (non-elided) access in the
/// baseline algorithm.
#[repr(transparent)]
pub struct TCell<T: TxVal> {
    word: AtomicU64,
    _t: PhantomData<T>,
}

impl<T: TxVal> TCell<T> {
    /// Create a cell holding `v`.
    #[inline]
    pub fn new(v: T) -> Self {
        TCell {
            word: AtomicU64::new(v.to_word()),
            _t: PhantomData,
        }
    }

    /// The backing atomic word. Transaction implementations use this to read
    /// and write the raw encoding.
    #[inline]
    pub fn word(&self) -> &AtomicU64 {
        &self.word
    }

    /// The address of the cell, used for orec / cache-line indexing.
    #[inline]
    pub fn addr(&self) -> usize {
        &self.word as *const AtomicU64 as usize
    }

    /// Non-transactional read (Acquire). Only legal when the cell is not
    /// concurrently written transactionally — e.g. during initialization or
    /// while holding the un-elided baseline lock.
    #[inline]
    pub fn load_direct(&self) -> T {
        T::from_word(self.word.load(Ordering::Acquire))
    }

    /// Non-transactional write (Release). See [`TCell::load_direct`] for the
    /// legality conditions.
    #[inline]
    pub fn store_direct(&self, v: T) {
        self.word.store(v.to_word(), Ordering::Release);
    }

    /// Read with full `SeqCst` ordering; the HTM simulator's conflict
    /// detection protocol relies on sequentially consistent interleavings.
    #[inline]
    pub fn load_seqcst(&self) -> T {
        T::from_word(self.word.load(Ordering::SeqCst))
    }
}

impl<T: TxVal + Default> Default for TCell<T> {
    fn default() -> Self {
        TCell::new(T::default())
    }
}

impl<T: TxVal + std::fmt::Debug> std::fmt::Debug for TCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("TCell").field(&self.load_direct()).finish()
    }
}

// A TCell is just an atomic word: always Send + Sync.
unsafe impl<T: TxVal> Send for TCell<T> {}
unsafe impl<T: TxVal> Sync for TCell<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: TxVal + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_word(v.to_word()), v);
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-1i8);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(-12345isize);
    }

    #[test]
    fn float_bool_char_roundtrips() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.5f32);
        roundtrip(-0.0f64);
        roundtrip(f64::INFINITY);
        roundtrip('z');
        roundtrip('\u{1F980}');
    }

    #[test]
    fn pointer_roundtrips() {
        let x = 7u32;
        let p = &x as *const u32;
        roundtrip(p);
        roundtrip(p as *mut u32);
        roundtrip(std::ptr::null::<u64>());
    }

    #[test]
    fn pair_roundtrip() {
        roundtrip((0u32, 0u32));
        roundtrip((u32::MAX, 1u32));
        roundtrip((17u32, 99u32));
    }

    #[test]
    fn tcell_direct_access() {
        let c = TCell::new(41u64);
        assert_eq!(c.load_direct(), 41);
        c.store_direct(42);
        assert_eq!(c.load_direct(), 42);
        assert_eq!(c.load_seqcst(), 42);
    }

    #[test]
    fn tcell_is_word_sized() {
        assert_eq!(std::mem::size_of::<TCell<u64>>(), 8);
        assert_eq!(std::mem::size_of::<TCell<bool>>(), 8);
    }

    #[test]
    fn negative_signed_values_survive_sign_extension() {
        let c = TCell::new(-5i32);
        assert_eq!(c.load_direct(), -5);
        c.store_direct(i32::MIN);
        assert_eq!(c.load_direct(), i32::MIN);
    }
}
