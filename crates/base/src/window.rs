//! Windowed per-cause statistics: the signal feeding per-lock adaptation.
//!
//! The always-on counters in [`crate::stats`] are cumulative — good for
//! end-of-run tables, useless for a feedback controller that must react to
//! what a lock did *recently*. A [`StatWindow`] is a small ring of count
//! buckets: critical sections record into the current bucket, and the
//! controller advances the ring once per sampling step ([`StatWindow::roll`]),
//! zeroing the oldest bucket. Summing the ring therefore yields a sliding
//! window over the last [`WINDOW_BUCKETS`] steps, with the oldest step's
//! contribution decaying to zero as the ring turns — no floating-point EMA,
//! no wall-clock, fully deterministic under a deterministic step schedule.
//!
//! Abort causes are folded into the three classes the adaptation decision
//! actually discriminates on (paper §VII: capacity-bound sections want STM,
//! conflict storms want the lock back, event noise is mode-independent);
//! see [`AbortClass`].

use crate::AbortCause;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Ring depth: a recorded event fully decays out of the window after this
/// many [`StatWindow::roll`] steps.
pub const WINDOW_BUCKETS: usize = 8;

/// The coarse abort classes the adaptation logic discriminates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortClass {
    /// Data contention: another thread touched what we touched
    /// (read/write/validation conflicts in STM, coherence dooms in HTM).
    Conflict,
    /// The section's footprint exceeded the (simulated) hardware capacity —
    /// retrying in hardware cannot help.
    Capacity,
    /// Mode-independent noise: asynchronous events, explicit cancels,
    /// unsafe-operation escapes.
    Other,
}

impl AbortClass {
    /// Fold the nine fine-grained causes into the three decision classes.
    pub fn of(cause: AbortCause) -> Self {
        match cause {
            AbortCause::ReadConflict
            | AbortCause::WriteConflict
            | AbortCause::ValidationFailed
            | AbortCause::CommitValidation
            | AbortCause::Conflict => AbortClass::Conflict,
            AbortCause::Capacity => AbortClass::Capacity,
            AbortCause::Event | AbortCause::Unsafe | AbortCause::Explicit => AbortClass::Other,
        }
    }
}

#[derive(Default)]
struct Bucket {
    commits: AtomicU64,
    conflict_aborts: AtomicU64,
    capacity_aborts: AtomicU64,
    other_aborts: AtomicU64,
    serial: AtomicU64,
    quiesce_ns: AtomicU64,
}

impl Bucket {
    fn zero(&self) {
        self.commits.store(0, Ordering::Relaxed);
        self.conflict_aborts.store(0, Ordering::Relaxed);
        self.capacity_aborts.store(0, Ordering::Relaxed);
        self.other_aborts.store(0, Ordering::Relaxed);
        self.serial.store(0, Ordering::Relaxed);
        self.quiesce_ns.store(0, Ordering::Relaxed);
    }
}

/// A sliding window of per-class section outcomes (see module docs).
///
/// Recording is a single relaxed `fetch_add` into the current bucket, so it
/// is cheap enough to stay on the commit/abort paths unconditionally.
/// Rolling and snapshotting race benignly with recorders: an event landing
/// in a bucket as it is zeroed is merely forgotten one step early.
pub struct StatWindow {
    buckets: [Bucket; WINDOW_BUCKETS],
    cursor: AtomicUsize,
}

impl Default for StatWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl StatWindow {
    /// An empty window.
    pub fn new() -> Self {
        StatWindow {
            buckets: Default::default(),
            cursor: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn cur(&self) -> &Bucket {
        &self.buckets[self.cursor.load(Ordering::Relaxed) % WINDOW_BUCKETS]
    }

    /// A section committed concurrently; `quiesce_ns` is the post-commit
    /// drain latency (0 when no drain ran).
    #[inline]
    pub fn record_commit(&self, quiesce_ns: u64) {
        let b = self.cur();
        b.commits.fetch_add(1, Ordering::Relaxed);
        if quiesce_ns > 0 {
            b.quiesce_ns.fetch_add(quiesce_ns, Ordering::Relaxed);
        }
    }

    /// A concurrent attempt aborted.
    #[inline]
    pub fn record_abort(&self, cause: AbortCause) {
        let b = self.cur();
        let ctr = match AbortClass::of(cause) {
            AbortClass::Conflict => &b.conflict_aborts,
            AbortClass::Capacity => &b.capacity_aborts,
            AbortClass::Other => &b.other_aborts,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// A section completed on the serial/lock fallback path.
    #[inline]
    pub fn record_serial(&self) {
        self.cur().serial.fetch_add(1, Ordering::Relaxed);
    }

    /// Advance the ring one step, forgetting the oldest bucket. Called by
    /// the sampling controller, never by recording threads.
    pub fn roll(&self) {
        let next = (self.cursor.load(Ordering::Relaxed) + 1) % WINDOW_BUCKETS;
        self.buckets[next].zero();
        self.cursor.store(next, Ordering::Relaxed);
    }

    /// Zero the whole window (after a mode switch: old-mode history must not
    /// drive the next decision).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.zero();
        }
    }

    /// Sum the ring into one point-in-time view.
    pub fn snapshot(&self) -> WindowSnapshot {
        let mut s = WindowSnapshot::default();
        for b in &self.buckets {
            s.commits += b.commits.load(Ordering::Relaxed);
            s.conflict_aborts += b.conflict_aborts.load(Ordering::Relaxed);
            s.capacity_aborts += b.capacity_aborts.load(Ordering::Relaxed);
            s.other_aborts += b.other_aborts.load(Ordering::Relaxed);
            s.serial += b.serial.load(Ordering::Relaxed);
            s.quiesce_ns += b.quiesce_ns.load(Ordering::Relaxed);
        }
        s
    }
}

/// Summed view of a [`StatWindow`] with the derived rates the adaptation
/// decision consumes. Plain data — construct one directly to unit-test
/// decision logic against synthetic windows.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Concurrent (elided) commits.
    pub commits: u64,
    /// Aborts classed as data conflicts.
    pub conflict_aborts: u64,
    /// Aborts classed as capacity overflows.
    pub capacity_aborts: u64,
    /// Mode-independent aborts (events, cancels, unsafe escapes).
    pub other_aborts: u64,
    /// Sections completed on the serial/lock fallback.
    pub serial: u64,
    /// Total post-commit quiescence-drain nanoseconds.
    pub quiesce_ns: u64,
}

impl WindowSnapshot {
    /// Total aborted attempts.
    pub fn aborts(&self) -> u64 {
        self.conflict_aborts + self.capacity_aborts + self.other_aborts
    }

    /// Total attempts: every abort, every concurrent commit, and every
    /// serial completion count as one.
    pub fn attempts(&self) -> u64 {
        self.commits + self.serial + self.aborts()
    }

    /// Aborted fraction of all attempts (0 when the window is empty).
    pub fn abort_rate(&self) -> f64 {
        let a = self.attempts();
        if a == 0 {
            0.0
        } else {
            self.aborts() as f64 / a as f64
        }
    }

    /// Concurrently-committed fraction of all attempts.
    pub fn commit_rate(&self) -> f64 {
        let a = self.attempts();
        if a == 0 {
            0.0
        } else {
            self.commits as f64 / a as f64
        }
    }

    /// Serial-fallback fraction of completed sections.
    pub fn fallback_rate(&self) -> f64 {
        let done = self.commits + self.serial;
        if done == 0 {
            0.0
        } else {
            self.serial as f64 / done as f64
        }
    }

    /// Capacity share of all aborts (0 when abort-free).
    pub fn capacity_share(&self) -> f64 {
        let a = self.aborts();
        if a == 0 {
            0.0
        } else {
            self.capacity_aborts as f64 / a as f64
        }
    }

    /// Conflict share of all aborts (0 when abort-free).
    pub fn conflict_share(&self) -> f64 {
        let a = self.aborts();
        if a == 0 {
            0.0
        } else {
            self.conflict_aborts as f64 / a as f64
        }
    }

    /// Mean quiescence-drain nanoseconds per concurrent commit.
    pub fn avg_quiesce_ns(&self) -> u64 {
        self.quiesce_ns.checked_div(self.commits).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_all_causes() {
        let mut conflict = 0;
        let mut capacity = 0;
        let mut other = 0;
        for c in AbortCause::ALL {
            match AbortClass::of(c) {
                AbortClass::Conflict => conflict += 1,
                AbortClass::Capacity => capacity += 1,
                AbortClass::Other => other += 1,
            }
        }
        assert_eq!(conflict, 5);
        assert_eq!(capacity, 1);
        assert_eq!(other, 3);
    }

    #[test]
    fn record_and_snapshot() {
        let w = StatWindow::new();
        w.record_commit(100);
        w.record_commit(0);
        w.record_abort(AbortCause::Capacity);
        w.record_abort(AbortCause::ReadConflict);
        w.record_serial();
        let s = w.snapshot();
        assert_eq!(s.commits, 2);
        assert_eq!(s.capacity_aborts, 1);
        assert_eq!(s.conflict_aborts, 1);
        assert_eq!(s.serial, 1);
        assert_eq!(s.attempts(), 5);
        assert_eq!(s.quiesce_ns, 100);
        assert_eq!(s.avg_quiesce_ns(), 50);
        assert!((s.abort_rate() - 0.4).abs() < 1e-9);
        assert!((s.capacity_share() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn roll_decays_old_events() {
        let w = StatWindow::new();
        w.record_commit(0);
        for _ in 0..WINDOW_BUCKETS - 1 {
            w.roll();
            assert_eq!(w.snapshot().commits, 1, "still inside the window");
        }
        w.roll(); // the recording bucket is zeroed as the ring returns to it
        assert_eq!(w.snapshot().commits, 0, "event decayed out");
    }

    #[test]
    fn reset_clears_everything() {
        let w = StatWindow::new();
        w.record_commit(7);
        w.record_abort(AbortCause::Event);
        w.roll();
        w.record_serial();
        w.reset();
        assert_eq!(w.snapshot(), WindowSnapshot::default());
    }

    #[test]
    fn empty_window_rates_are_zero() {
        let s = WindowSnapshot::default();
        assert_eq!(s.abort_rate(), 0.0);
        assert_eq!(s.commit_rate(), 0.0);
        assert_eq!(s.fallback_rate(), 0.0);
        assert_eq!(s.capacity_share(), 0.0);
        assert_eq!(s.avg_quiesce_ns(), 0);
    }
}
