//! Ownership records (orecs): the striped versioned write-lock table.
//!
//! Every transactional word hashes to one orec. An orec word is either
//!
//! - **unlocked**: `version << 1` — the commit timestamp of the last writer
//!   of any location covered by this orec, or
//! - **locked**: `(owner << 1) | 1` — exclusively owned by the transaction
//!   whose slot id is `owner` (write-through `ml_wt` acquires eagerly, at
//!   first write).
//!
//! The table is deliberately *global and shared across all elided locks*:
//! this is the "lock erasure" effect the paper discusses in §IV-A — once
//! critical sections become transactions, disjoint lock domains collapse
//! into a single TM metadata domain.

use crate::OrecValue::{Locked, Unlocked};
use std::sync::atomic::{AtomicU64, Ordering};

/// Decoded orec state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrecValue {
    /// Unlocked, with the version (commit timestamp) of the last writer.
    Unlocked(u64),
    /// Locked by the transaction occupying the given slot.
    Locked(usize),
}

impl OrecValue {
    /// Decode a raw orec word.
    #[inline]
    pub fn decode(raw: u64) -> Self {
        if raw & 1 == 1 {
            Locked((raw >> 1) as usize)
        } else {
            Unlocked(raw >> 1)
        }
    }

    /// Encode to the raw word representation.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            Unlocked(v) => v << 1,
            Locked(owner) => ((owner as u64) << 1) | 1,
        }
    }
}

/// The global orec table.
pub struct OrecTable {
    orecs: Box<[AtomicU64]>,
    mask: usize,
}

impl OrecTable {
    /// Default table size: 2^16 orecs (512 KiB), matching the order of
    /// magnitude used by production word-based STMs.
    pub const DEFAULT_LOG2: usize = 16;

    /// Create a table with `1 << log2` orecs.
    pub fn with_log2(log2: usize) -> Self {
        let n = 1usize << log2;
        let orecs = (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        OrecTable {
            orecs: orecs.into_boxed_slice(),
            mask: n - 1,
        }
    }

    /// Create a table of the default size.
    pub fn new() -> Self {
        Self::with_log2(Self::DEFAULT_LOG2)
    }

    /// Number of orecs in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.orecs.len()
    }

    /// Whether the table is empty (never true in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.orecs.is_empty()
    }

    /// Map a cell address to its orec index. Word-granularity striping with
    /// a Fibonacci-hash mix so that adjacent fields spread across the table.
    #[inline]
    pub fn index_of(&self, addr: usize) -> usize {
        let w = (addr >> 3) as u64;
        // Fibonacci hashing: multiply by 2^64/phi, take high bits.
        let h = w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// Load the raw orec word at `idx`.
    #[inline]
    pub fn load(&self, idx: usize) -> u64 {
        self.orecs[idx].load(Ordering::Acquire)
    }

    /// Decode the orec at `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> OrecValue {
        OrecValue::decode(self.load(idx))
    }

    /// Try to acquire the orec at `idx`: CAS from the observed unlocked word
    /// `seen` to locked-by-`owner`. Returns `true` on success.
    #[inline]
    pub fn try_lock(&self, idx: usize, seen: u64, owner: usize) -> bool {
        debug_assert_eq!(seen & 1, 0, "can only lock an unlocked orec");
        self.orecs[idx]
            .compare_exchange(
                seen,
                Locked(owner).encode(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Release the orec at `idx`, stamping it with `version`. The caller
    /// must own the lock.
    #[inline]
    pub fn release(&self, idx: usize, version: u64) {
        self.orecs[idx].store(Unlocked(version).encode(), Ordering::Release);
    }
}

impl Default for OrecTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for v in [0u64, 1, 2, 12345, u64::MAX >> 1] {
            assert_eq!(OrecValue::decode(Unlocked(v).encode()), Unlocked(v));
        }
        for o in [0usize, 1, 63, 1000] {
            assert_eq!(OrecValue::decode(Locked(o).encode()), Locked(o));
        }
    }

    #[test]
    fn fresh_table_is_unlocked_at_version_zero() {
        let t = OrecTable::with_log2(4);
        assert_eq!(t.len(), 16);
        for i in 0..t.len() {
            assert_eq!(t.get(i), Unlocked(0));
        }
    }

    #[test]
    fn lock_release_cycle() {
        let t = OrecTable::with_log2(4);
        let i = t.index_of(0x1000);
        let seen = t.load(i);
        assert!(t.try_lock(i, seen, 7));
        assert_eq!(t.get(i), Locked(7));
        // Second acquire with a stale view must fail.
        assert!(!t.try_lock(i, seen, 8));
        t.release(i, 42);
        assert_eq!(t.get(i), Unlocked(42));
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let t = OrecTable::new();
        for addr in (0..4096usize).map(|k| 0x7f00_0000_0000 + k * 8) {
            let i = t.index_of(addr);
            assert!(i < t.len());
            assert_eq!(i, t.index_of(addr));
        }
    }

    #[test]
    fn adjacent_words_spread_over_table() {
        let t = OrecTable::new();
        let mut seen = std::collections::HashSet::new();
        for k in 0..64usize {
            seen.insert(t.index_of(0x5000_0000 + k * 8));
        }
        // With Fibonacci hashing, 64 adjacent words should hit many stripes.
        assert!(seen.len() > 32, "only {} distinct stripes", seen.len());
    }
}
