//! Ownership records (orecs): the striped versioned write-lock table.
//!
//! Every transactional word hashes to one orec. An orec word is either
//!
//! - **unlocked**: `version << 1` — the commit timestamp of the last writer
//!   of any location covered by this orec, or
//! - **locked**: `(owner << 1) | 1` — exclusively owned by the transaction
//!   whose slot id is `owner` (write-through `ml_wt` acquires eagerly, at
//!   first write).
//!
//! The table is deliberately *global and shared across all elided locks*:
//! this is the "lock erasure" effect the paper discusses in §IV-A — once
//! critical sections become transactions, disjoint lock domains collapse
//! into a single TM metadata domain.

use crate::OrecValue::{Locked, Unlocked};
use crate::Padded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Decoded orec state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrecValue {
    /// Unlocked, with the version (commit timestamp) of the last writer.
    Unlocked(u64),
    /// Locked by the transaction occupying the given slot.
    Locked(usize),
}

impl OrecValue {
    /// Decode a raw orec word.
    #[inline]
    pub fn decode(raw: u64) -> Self {
        if raw & 1 == 1 {
            Locked((raw >> 1) as usize)
        } else {
            Unlocked(raw >> 1)
        }
    }

    /// Encode to the raw word representation.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            Unlocked(v) => v << 1,
            Locked(owner) => ((owner as u64) << 1) | 1,
        }
    }
}

/// Physical layout of the orec array.
///
/// Eight packed `AtomicU64` orecs share one 64-byte cache line, so two
/// threads CASing *adjacent* stripes ping-pong the line even though their
/// data is disjoint — classic false sharing, and measurable on the
/// fig5 microbenchmarks. The padded layout gives every orec its own line
/// at 8x the footprint (4 MiB vs 512 KiB at the default size). Padded is
/// the default; the compact layout is kept so `tle-bench` can measure the
/// before/after (`BENCH_<n>.json`, `optimizations.orec-padding`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrecLayout {
    /// One orec per cache line (no false sharing between stripes).
    #[default]
    Padded,
    /// Eight orecs per cache line (the pre-padding layout, for A/B runs).
    Compact,
}

impl OrecLayout {
    /// Stable label used by the bench JSON emitter.
    pub fn label(self) -> &'static str {
        match self {
            OrecLayout::Padded => "padded",
            OrecLayout::Compact => "compact",
        }
    }
}

enum Stripes {
    Padded(Box<[Padded<AtomicU64>]>),
    Compact(Box<[AtomicU64]>),
}

/// The global orec table.
pub struct OrecTable {
    stripes: Stripes,
    mask: usize,
}

impl OrecTable {
    /// Default table size: 2^16 orecs, matching the order of magnitude used
    /// by production word-based STMs.
    pub const DEFAULT_LOG2: usize = 16;

    /// Create a table with `1 << log2` orecs in the given layout.
    pub fn with_layout(log2: usize, layout: OrecLayout) -> Self {
        let n = 1usize << log2;
        let stripes = match layout {
            OrecLayout::Padded => Stripes::Padded(
                (0..n)
                    .map(|_| Padded(AtomicU64::new(0)))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            ),
            OrecLayout::Compact => Stripes::Compact(
                (0..n)
                    .map(|_| AtomicU64::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            ),
        };
        OrecTable {
            stripes,
            mask: n - 1,
        }
    }

    /// Create a table with `1 << log2` orecs (padded layout).
    pub fn with_log2(log2: usize) -> Self {
        Self::with_layout(log2, OrecLayout::default())
    }

    /// Create a table of the default size and layout.
    pub fn new() -> Self {
        Self::with_log2(Self::DEFAULT_LOG2)
    }

    /// The physical layout of this table.
    pub fn layout(&self) -> OrecLayout {
        match self.stripes {
            Stripes::Padded(_) => OrecLayout::Padded,
            Stripes::Compact(_) => OrecLayout::Compact,
        }
    }

    /// The atomic word backing orec `idx`. The enum branch is perfectly
    /// predicted (one table, one layout for its whole life), so this costs
    /// nothing measurable on the hot paths below.
    #[inline]
    fn word(&self, idx: usize) -> &AtomicU64 {
        match &self.stripes {
            Stripes::Padded(s) => &s[idx],
            Stripes::Compact(s) => &s[idx],
        }
    }

    /// Number of orecs in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.mask + 1
    }

    /// Whether the table is empty (never true in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Map a cell address to its orec index. Word-granularity striping with
    /// a Fibonacci-hash mix so that adjacent fields spread across the table.
    #[inline]
    pub fn index_of(&self, addr: usize) -> usize {
        let w = (addr >> 3) as u64;
        // Fibonacci hashing: multiply by 2^64/phi, take high bits.
        let h = w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// Load the raw orec word at `idx`.
    #[inline]
    pub fn load(&self, idx: usize) -> u64 {
        self.word(idx).load(Ordering::Acquire)
    }

    /// Decode the orec at `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> OrecValue {
        OrecValue::decode(self.load(idx))
    }

    /// Try to acquire the orec at `idx`: CAS from the observed unlocked word
    /// `seen` to locked-by-`owner`. Returns `true` on success.
    #[inline]
    pub fn try_lock(&self, idx: usize, seen: u64, owner: usize) -> bool {
        debug_assert_eq!(seen & 1, 0, "can only lock an unlocked orec");
        self.word(idx)
            .compare_exchange(
                seen,
                Locked(owner).encode(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Release the orec at `idx`, stamping it with `version`. The caller
    /// must own the lock.
    #[inline]
    pub fn release(&self, idx: usize, version: u64) {
        self.word(idx)
            .store(Unlocked(version).encode(), Ordering::Release);
    }
}

impl Default for OrecTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for v in [0u64, 1, 2, 12345, u64::MAX >> 1] {
            assert_eq!(OrecValue::decode(Unlocked(v).encode()), Unlocked(v));
        }
        for o in [0usize, 1, 63, 1000] {
            assert_eq!(OrecValue::decode(Locked(o).encode()), Locked(o));
        }
    }

    #[test]
    fn fresh_table_is_unlocked_at_version_zero() {
        let t = OrecTable::with_log2(4);
        assert_eq!(t.len(), 16);
        for i in 0..t.len() {
            assert_eq!(t.get(i), Unlocked(0));
        }
    }

    #[test]
    fn lock_release_cycle() {
        let t = OrecTable::with_log2(4);
        let i = t.index_of(0x1000);
        let seen = t.load(i);
        assert!(t.try_lock(i, seen, 7));
        assert_eq!(t.get(i), Locked(7));
        // Second acquire with a stale view must fail.
        assert!(!t.try_lock(i, seen, 8));
        t.release(i, 42);
        assert_eq!(t.get(i), Unlocked(42));
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let t = OrecTable::new();
        for addr in (0..4096usize).map(|k| 0x7f00_0000_0000 + k * 8) {
            let i = t.index_of(addr);
            assert!(i < t.len());
            assert_eq!(i, t.index_of(addr));
        }
    }

    #[test]
    fn padded_layout_puts_each_orec_on_its_own_cache_line() {
        let t = OrecTable::with_layout(4, OrecLayout::Padded);
        assert_eq!(t.layout(), OrecLayout::Padded);
        let addrs: Vec<usize> = (0..t.len())
            .map(|i| t.word(i) as *const AtomicU64 as usize)
            .collect();
        for pair in addrs.windows(2) {
            let stride = pair[1] - pair[0];
            assert!(
                stride >= crate::CACHE_LINE,
                "padded stripes only {stride} bytes apart"
            );
        }
        assert_eq!(addrs[0] % crate::CACHE_LINE, 0, "first stripe unaligned");
    }

    #[test]
    fn compact_layout_packs_orecs_densely() {
        let t = OrecTable::with_layout(4, OrecLayout::Compact);
        assert_eq!(t.layout(), OrecLayout::Compact);
        let a0 = t.word(0) as *const AtomicU64 as usize;
        let a1 = t.word(1) as *const AtomicU64 as usize;
        assert_eq!(a1 - a0, 8, "compact stripes should be adjacent words");
    }

    #[test]
    fn default_layout_is_padded_and_both_layouts_behave_identically() {
        assert_eq!(OrecTable::new().layout(), OrecLayout::Padded);
        assert_eq!(OrecLayout::default().label(), "padded");
        for layout in [OrecLayout::Padded, OrecLayout::Compact] {
            let t = OrecTable::with_layout(4, layout);
            let i = t.index_of(0x2000);
            let seen = t.load(i);
            assert!(t.try_lock(i, seen, 3));
            assert_eq!(t.get(i), Locked(3));
            t.release(i, 9);
            assert_eq!(t.get(i), Unlocked(9));
        }
    }

    #[test]
    fn adjacent_words_spread_over_table() {
        let t = OrecTable::new();
        let mut seen = std::collections::HashSet::new();
        for k in 0..64usize {
            seen.insert(t.index_of(0x5000_0000 + k * 8));
        }
        // With Fibonacci hashing, 64 adjacent words should hit many stripes.
        assert!(seen.len() > 32, "only {} distinct stripes", seen.len());
    }
}
