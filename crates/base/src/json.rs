//! A dependency-free JSON value type with a deterministic emitter and a
//! small recursive-descent parser.
//!
//! `BENCH_<n>.json` is a *committed artifact*: CI re-emits it and diffs
//! against the checked-in copy, so the emitter must be byte-deterministic —
//! objects keep their insertion order (the schema fixes that order), floats
//! are carried as raw token strings ([`Json::Num`]) so that
//! emit → parse → emit is byte-identical, and indentation is fixed at two
//! spaces. The string escaper follows tle-lint's `render_json` idiom
//! (RFC 8259).

use std::fmt::Write as _;

/// A JSON value. Objects are ordered vectors, not maps: key order is part
/// of the schema and must survive a round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number kept as its raw token (`"12"`, `"0.375"`, `"1.2e6"`), so
    /// re-emission reproduces the input bytes exactly.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An integer literal.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A float literal with three decimals — enough resolution for
    /// throughput/ratio fields while keeping the artifact diff-friendly.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:.3}"))
        } else {
            Json::Null
        }
    }

    /// A string literal.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parse the numeric token as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Parse the numeric token as u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline — the
    /// canonical on-disk form of `BENCH_<n>.json`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Flat arrays of scalars stay on one line (histogram
                // buckets); arrays of composites get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, depth);
                    }
                    out.push(']');
                } else {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(if i > 0 { ",\n" } else { "\n" });
                        indent(out, depth + 1);
                        item.write(out, depth + 1);
                    }
                    out.push('\n');
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    let _ = write!(out, "{}: ", escape(k));
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document. Rejects trailing garbage.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Escape a string per RFC 8259.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, val: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at offset {start}"));
    }
    let tok = std::str::from_utf8(&b[start..*pos]).unwrap().to_string();
    tok.parse::<f64>()
        .map_err(|_| format!("bad number '{tok}' at offset {start}"))?;
    Ok(Json::Num(tok))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through verbatim.
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = b.get(*pos..*pos + len).ok_or("truncated utf-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str("tle-bench-trajectory")),
            ("version".into(), Json::u64(1)),
            ("tput".into(), Json::f64(12345.678)),
            ("ok".into(), Json::Bool(true)),
            ("missing".into(), Json::Null),
            (
                "hist".into(),
                Json::Arr(vec![Json::u64(0), Json::u64(3), Json::u64(7)]),
            ),
            (
                "runs".into(),
                Json::Arr(vec![Json::Obj(vec![(
                    "name".into(),
                    Json::str("fig5/hash \"quoted\"\n"),
                )])]),
            ),
        ])
    }

    #[test]
    fn render_parse_render_is_byte_identical() {
        let first = sample().render();
        let reparsed = Json::parse(&first).unwrap();
        assert_eq!(reparsed.render(), first);
    }

    #[test]
    fn raw_number_tokens_survive_round_trip() {
        for tok in ["0.375", "1.2e6", "-0.001", "12", "12.300"] {
            let doc = Json::Arr(vec![Json::Num(tok.into())]).render();
            assert_eq!(Json::parse(&doc).unwrap().render(), doc);
        }
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let v = sample();
        assert_eq!(v.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("tput").and_then(Json::as_f64), Some(12345.678));
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("tle-bench-trajectory")
        );
        assert_eq!(
            v.get("hist").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
        let runs = v.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(
            runs[0].get("name").and_then(Json::as_str),
            Some("fig5/hash \"quoted\"\n")
        );
        assert!(v.get("nope").is_none());
    }

    #[test]
    fn scalar_arrays_render_on_one_line() {
        let doc = Json::Arr(vec![Json::u64(1), Json::u64(2)]).render();
        assert_eq!(doc, "[1, 2]\n");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]extra",
            "{\"a\" 1}",
            "{\"a\": }",
            "\"unterminated",
            "nul",
            "1.2.3",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn escapes_follow_rfc8259() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
        let doc = Json::str("tab\there").render();
        assert_eq!(Json::parse(&doc).unwrap(), Json::str("tab\there"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY), Json::Null);
        assert_eq!(Json::f64(0.5), Json::Num("0.500".into()));
    }
}
