//! Transactional history recorder (feature `check-history`).
//!
//! Opacity is a statement about *histories*: every transaction — committed,
//! aborted, even a doomed zombie — must have read from some single consistent
//! snapshot, and committed writers must serialize in their commit order
//! (paper §IV, "transactional sequential consistency"). To check that
//! offline, the kernels record every transactional `begin` / `read` /
//! `write` / `commit` / `abort` into one globally ordered log; the checker in
//! `tle-check` then replays the log against a sequential oracle.
//!
//! This is a plane like [`crate::trace`]: without the `check-history` feature
//! every hook below is an empty `#[inline(always)]` function. With the
//! feature compiled but recording not armed (the default even in test
//! builds), a hook is a single relaxed atomic load — stress tests that share
//! the binary pay nothing noticeable. Recording is armed per *session*
//! ([`record`]), which serializes concurrent recording tests on a global
//! mutex.
//!
//! Event-placement contract (what makes the log checkable):
//!
//! - a writer's `Commit` event is pushed **before** its writes become visible
//!   to other threads' recorded reads (ml_wt: before orec release; NOrec:
//!   before the sequence lock goes even; HTM: at the `ACTIVE→COMMITTED` CAS,
//!   before redo publish — mid-publish readers are doomed and abort before
//!   recording), so the log order of `Commit` events is a valid serialization
//!   order of the writers;
//! - `Read` events record the value actually returned to the closure, after
//!   all consistency checks on that read;
//! - every transaction body ends in exactly one `Commit` or `Abort`; a
//!   missing terminator means the thread died mid-transaction and the checker
//!   treats the tail as an in-flight zombie.

use crate::trace::TxMode;

/// What a [`HistEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// A transaction (or serial/locked section) started.
    Begin,
    /// A transactional read returned `val` from `addr`.
    Read,
    /// A transactional write of `val` to `addr` (visibility per mode).
    Write,
    /// The transaction committed; its writes are (about to be) visible.
    Commit,
    /// The transaction aborted; its writes were (or will be) undone.
    Abort,
}

/// One recorded event. `seq` is the event's position in the global total
/// order; `thread` is a dense per-process recorder id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistEvent {
    /// Global total-order position (0-based).
    pub seq: u64,
    /// Dense recorder thread id.
    pub thread: u32,
    /// Event kind.
    pub kind: HistKind,
    /// Execution mode of the enclosing section.
    pub mode: TxMode,
    /// Cell address for `Read`/`Write`, 0 otherwise.
    pub addr: usize,
    /// Value read or written, 0 otherwise.
    pub val: u64,
}

/// Whether the recorder hooks are compiled in.
pub const fn compiled() -> bool {
    cfg!(feature = "check-history")
}

#[cfg(feature = "check-history")]
mod imp {
    use super::{HistEvent, HistKind};
    use crate::trace::TxMode;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::{Mutex, MutexGuard};

    static ARMED: AtomicBool = AtomicBool::new(false);
    static LOG: Mutex<Vec<HistEvent>> = Mutex::new(Vec::new());
    /// Serializes recording sessions: two tests in one binary cannot
    /// interleave their histories.
    static SESSION: Mutex<()> = Mutex::new(());
    static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

    thread_local! {
        static THREAD_ID: Cell<Option<u32>> = const { Cell::new(None) };
        /// Mode of the innermost recorded section on this thread, so
        /// read/write hooks don't need the mode threaded through.
        static CUR_MODE: Cell<TxMode> = const { Cell::new(TxMode::Serial) };
    }

    fn thread_id() -> u32 {
        THREAD_ID.with(|id| match id.get() {
            Some(t) => t,
            None => {
                let t = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
                id.set(Some(t));
                t
            }
        })
    }

    fn lock_log() -> MutexGuard<'static, Vec<HistEvent>> {
        LOG.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    fn push(kind: HistKind, mode: TxMode, addr: usize, val: u64) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let thread = thread_id();
        let mut log = lock_log();
        let seq = log.len() as u64;
        log.push(HistEvent {
            seq,
            thread,
            kind,
            mode,
            addr,
            val,
        });
    }

    #[inline]
    pub fn begin(mode: TxMode) {
        CUR_MODE.with(|m| m.set(mode));
        push(HistKind::Begin, mode, 0, 0);
    }

    #[inline]
    pub fn read(addr: usize, val: u64) {
        push(HistKind::Read, CUR_MODE.with(|m| m.get()), addr, val);
    }

    #[inline]
    pub fn write(addr: usize, val: u64) {
        push(HistKind::Write, CUR_MODE.with(|m| m.get()), addr, val);
    }

    #[inline]
    pub fn commit() {
        push(HistKind::Commit, CUR_MODE.with(|m| m.get()), 0, 0);
    }

    #[inline]
    pub fn abort() {
        push(HistKind::Abort, CUR_MODE.with(|m| m.get()), 0, 0);
    }

    pub fn enabled() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    pub struct Recording {
        _session: MutexGuard<'static, ()>,
    }

    pub fn record() -> Recording {
        let session = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        lock_log().clear();
        ARMED.store(true, Ordering::SeqCst);
        Recording { _session: session }
    }

    impl Recording {
        pub fn finish(self) -> Vec<HistEvent> {
            ARMED.store(false, Ordering::SeqCst);
            std::mem::take(&mut *lock_log())
            // `self._session` drops here, releasing the session lock.
        }

        pub fn snapshot(&self) -> Vec<HistEvent> {
            lock_log().clone()
        }
    }

    impl Drop for Recording {
        fn drop(&mut self) {
            ARMED.store(false, Ordering::SeqCst);
            lock_log().clear();
        }
    }
}

#[cfg(not(feature = "check-history"))]
mod imp {
    use super::HistEvent;
    use crate::trace::TxMode;

    #[inline(always)]
    pub fn begin(_mode: TxMode) {}
    #[inline(always)]
    pub fn read(_addr: usize, _val: u64) {}
    #[inline(always)]
    pub fn write(_addr: usize, _val: u64) {}
    #[inline(always)]
    pub fn commit() {}
    #[inline(always)]
    pub fn abort() {}
    pub fn enabled() -> bool {
        false
    }

    pub struct Recording;

    pub fn record() -> Recording {
        Recording
    }

    impl Recording {
        pub fn finish(self) -> Vec<HistEvent> {
            Vec::new()
        }
        pub fn snapshot(&self) -> Vec<HistEvent> {
            Vec::new()
        }
    }
}

pub use imp::Recording;

/// Start a recording session: clears the log, arms the hooks, and holds a
/// global session lock until the guard is dropped or [`Recording::finish`]ed.
/// Without the feature this returns an inert guard and records nothing.
pub fn record() -> Recording {
    imp::record()
}

/// Whether recording is currently armed.
pub fn enabled() -> bool {
    imp::enabled()
}

/// A section began in `mode`. Also latches `mode` for subsequent
/// read/write/commit/abort hooks on this thread.
#[inline(always)]
pub fn begin(mode: TxMode) {
    imp::begin(mode);
}

/// A transactional read of `addr` returned `val` to the closure.
#[inline(always)]
pub fn read(addr: usize, val: u64) {
    imp::read(addr, val);
}

/// The section wrote `val` to `addr`.
#[inline(always)]
pub fn write(addr: usize, val: u64) {
    imp::write(addr, val);
}

/// The section committed (see module docs for placement rules).
#[inline(always)]
pub fn commit() {
    imp::commit();
}

/// The section aborted; its writes are rolled back or discarded.
#[inline(always)]
pub fn abort() {
    imp::abort();
}

#[cfg(all(test, not(feature = "check-history")))]
mod tests_disabled {
    use super::*;
    use crate::trace::TxMode;

    /// Mirror of `trace::hooks_compile_to_noops_without_feature`.
    #[test]
    fn history_hooks_compile_to_noops_without_feature() {
        assert!(!compiled());
        assert!(!enabled());
        let rec = record();
        begin(TxMode::Stm);
        read(0x40, 7);
        write(0x40, 8);
        commit();
        abort();
        assert!(rec.snapshot().is_empty());
        assert!(rec.finish().is_empty());
    }
}

#[cfg(all(test, feature = "check-history"))]
mod tests_enabled {
    use super::*;
    use crate::trace::TxMode;

    #[test]
    fn records_events_in_global_order() {
        let rec = record();
        assert!(enabled());
        begin(TxMode::Stm);
        read(0x100, 1);
        write(0x100, 2);
        commit();
        let events = rec.finish();
        assert!(!enabled());
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![
                HistKind::Begin,
                HistKind::Read,
                HistKind::Write,
                HistKind::Commit
            ]
        );
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.mode, TxMode::Stm);
        }
        assert_eq!(events[1].addr, 0x100);
        assert_eq!(events[1].val, 1);
        assert_eq!(events[2].val, 2);
    }

    #[test]
    fn nothing_recorded_when_not_armed() {
        begin(TxMode::Htm);
        read(0x8, 3);
        commit();
        let rec = record();
        assert!(rec.finish().is_empty());
    }

    #[test]
    fn drop_disarms_and_clears() {
        {
            let _rec = record();
            begin(TxMode::Norec);
            abort();
        }
        assert!(!enabled());
        let rec = record();
        assert!(rec.snapshot().is_empty());
        drop(rec);
    }
}
