//! The park abstraction: how a stalled wait edge leaves the CPU.
//!
//! The TM kernels have a fixed set of edges where a thread stops making
//! progress until another thread acts: condvar parks, serial-gate drains,
//! baseline mutex acquisition, quiescence stragglers. Historically every
//! such edge parked the *OS thread* (the [`crate::sched::block_enter`] /
//! [`crate::sched::block_exit`] brackets mark exactly these sites). With the
//! in-tree async executor ([`crate::exec`]) the same edges must instead
//! return `Poll::Pending` and re-arm a task [`std::task::Waker`] — an OS
//! park on an executor worker would freeze every task multiplexed onto it.
//!
//! [`Parker`] is the trait naming the two backends; the installed backend is
//! a per-thread mode switch:
//!
//! - [`OsPark`] (default): OS-thread waits are legal. Plain threads, the
//!   sync `critical` entry points, and `tle-check`'s cooperative explorer
//!   all run here.
//! - [`WakerPark`]: installed by executor workers. Reaching a real OS park
//!   under it is a bug in the runtime — the async runner must have routed
//!   the wait through a pollable primitive instead — so
//!   [`enter_os_park`] fails a debug assertion (pinned by a test).
//!
//! The assertion piggybacks on the existing `block_enter` sites: every OS
//! park in the kernels is already bracketed, so auditing the waker backend
//! reduces to auditing one function.

use std::cell::Cell;

/// Which backend absorbs a blocking wait on the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParkMode {
    /// OS-thread waits (`thread::park`, condvar waits, blocking mutex
    /// acquisition) are legal on this thread.
    Os,
    /// This thread is an async executor worker: waits must surface as
    /// `Poll::Pending` + waker re-arm; OS parks are forbidden.
    Waker,
}

/// A park backend. The two implementations are zero-sized mode tags — the
/// kernels consult the *installed mode* ([`current_mode`]) rather than
/// dynamic dispatch, so the hot path stays one thread-local read (and only
/// in debug builds).
pub trait Parker {
    /// Which mode this backend runs waits under.
    fn mode(&self) -> ParkMode;
    /// Called when a kernel edge is about to block the OS thread. The waker
    /// backend treats this as a contract violation.
    fn before_os_park(&self) {}
}

/// The default backend: blocking in the OS is fine.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsPark;

impl Parker for OsPark {
    fn mode(&self) -> ParkMode {
        ParkMode::Os
    }
}

/// The executor-worker backend: a reached OS park is a runtime bug.
#[derive(Debug, Default, Clone, Copy)]
pub struct WakerPark;

impl Parker for WakerPark {
    fn mode(&self) -> ParkMode {
        ParkMode::Waker
    }

    fn before_os_park(&self) {
        panic!(
            "OS park reached under the waker backend: an async executor \
             worker attempted a blocking OS wait; route the wait through a \
             pollable primitive (Waiter::poll_signaled, Gate::poll_*, \
             quiesce drain_pass) instead"
        );
    }
}

thread_local! {
    static MODE: Cell<ParkMode> = const { Cell::new(ParkMode::Os) };
}

/// Install `backend`'s mode on the current thread, returning a guard that
/// restores the previous mode when dropped. Executor workers install
/// [`WakerPark`] for their whole life.
pub fn install(backend: &dyn Parker) -> ModeGuard {
    let prev = MODE.with(|m| m.replace(backend.mode()));
    ModeGuard { prev }
}

/// The park mode installed on the current thread.
#[inline]
pub fn current_mode() -> ParkMode {
    MODE.with(|m| m.get())
}

/// Restores the previously installed [`ParkMode`] on drop.
#[must_use = "dropping the guard restores the previous park mode"]
pub struct ModeGuard {
    prev: ParkMode,
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        MODE.with(|m| m.set(self.prev));
    }
}

/// Audit hook fired by [`crate::sched::block_enter`] — i.e. at every real OS
/// park in the kernels. Debug builds verify the waker backend never reaches
/// one; release builds compile this to nothing (the sync hot path pays no
/// thread-local read).
#[inline(always)]
pub fn enter_os_park() {
    #[cfg(debug_assertions)]
    {
        if current_mode() == ParkMode::Waker {
            WakerPark.before_os_park();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_os() {
        assert_eq!(current_mode(), ParkMode::Os);
        enter_os_park(); // must not panic
    }

    #[test]
    fn install_and_restore() {
        assert_eq!(current_mode(), ParkMode::Os);
        {
            let _g = install(&WakerPark);
            assert_eq!(current_mode(), ParkMode::Waker);
            {
                let _g2 = install(&OsPark);
                assert_eq!(current_mode(), ParkMode::Os);
            }
            assert_eq!(current_mode(), ParkMode::Waker);
        }
        assert_eq!(current_mode(), ParkMode::Os);
    }

    #[test]
    fn backends_report_their_modes() {
        assert_eq!(OsPark.mode(), ParkMode::Os);
        assert_eq!(WakerPark.mode(), ParkMode::Waker);
        OsPark.before_os_park(); // default impl: no-op
    }

    /// The blocking-wait audit: the waker backend must never reach an OS
    /// park. This is the pin for the debug assertion wired into
    /// `sched::block_enter`.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "OS park reached"))]
    fn waker_backend_rejects_os_park() {
        let _g = install(&WakerPark);
        enter_os_park();
        // Release builds compile the check out; make the test pass there.
        #[cfg(not(debug_assertions))]
        panic!("OS park reached (release-mode stand-in)");
    }
}
