//! Abort causes shared by the STM and the HTM simulator.

/// Why a transaction attempt failed. Returned as `Err(Abort(..))` from
/// transactional reads/writes/commits; the runner in `tle-core` maps causes
/// to retry/backoff/fallback policy, and the statistics layer
/// ([`crate::stats::TxStats`]) counts every abort under its cause so the
/// paper's Figure-4-style breakdowns are measured rather than inferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AbortCause {
    /// STM: a read found the orec locked by another transaction.
    ReadConflict = 0,
    /// STM: a write could not acquire the orec.
    WriteConflict = 1,
    /// STM: read-set validation failed mid-transaction (at a timestamp
    /// extension or a NOrec snapshot revalidation).
    ValidationFailed = 2,
    /// STM: commit-time validation failed — the read set was consistent
    /// throughout the body but a concurrent commit invalidated it between
    /// the last access and the commit point.
    CommitValidation = 3,
    /// HTM: this transaction was doomed by a conflicting access (the
    /// cache-coherence invalidation model).
    Conflict = 4,
    /// HTM: the read- or write-set exceeded simulated cache capacity.
    Capacity = 5,
    /// HTM: a simulated asynchronous event (interrupt, SMI) flushed the
    /// transactional state.
    Event = 6,
    /// The transaction executed an operation that cannot run transactionally
    /// (irrevocable I/O, syscall); must be retried in serial mode.
    Unsafe = 7,
    /// The program explicitly cancelled the transaction (includes drops of
    /// live transactions, e.g. a panic unwinding through the closure).
    Explicit = 8,
}

impl AbortCause {
    /// Number of distinct causes (array-indexing bound for per-cause
    /// counters).
    pub const COUNT: usize = 9;

    /// Every cause, in discriminant order (statistics tables iterate this).
    pub const ALL: [AbortCause; Self::COUNT] = [
        AbortCause::ReadConflict,
        AbortCause::WriteConflict,
        AbortCause::ValidationFailed,
        AbortCause::CommitValidation,
        AbortCause::Conflict,
        AbortCause::Capacity,
        AbortCause::Event,
        AbortCause::Unsafe,
        AbortCause::Explicit,
    ];

    /// Dense index for per-cause counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as u8 as usize
    }

    /// Decode from the wire/trace representation.
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// Short stable label for statistics tables.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::ReadConflict => "read-conflict",
            AbortCause::WriteConflict => "write-conflict",
            AbortCause::ValidationFailed => "validation",
            AbortCause::CommitValidation => "commit-validation",
            AbortCause::Conflict => "conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::Event => "event",
            AbortCause::Unsafe => "unsafe",
            AbortCause::Explicit => "explicit",
        }
    }

    /// Whether retrying the same transaction concurrently can possibly
    /// succeed. `Unsafe` deterministically fails until serialized; real RTM
    /// reports the same through the `XABORT`/retry-bit convention.
    pub fn retry_may_succeed(self) -> bool {
        !matches!(self, AbortCause::Unsafe)
    }
}

impl std::fmt::Display for AbortCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            AbortCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), AbortCause::ALL.len());
    }

    #[test]
    fn only_unsafe_is_deterministic() {
        assert!(!AbortCause::Unsafe.retry_may_succeed());
        assert!(AbortCause::Conflict.retry_may_succeed());
        assert!(AbortCause::Capacity.retry_may_succeed());
        assert!(AbortCause::CommitValidation.retry_may_succeed());
    }

    #[test]
    fn index_and_u8_roundtrip() {
        for (i, c) in AbortCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(AbortCause::from_u8(i as u8), Some(*c));
        }
        assert_eq!(AbortCause::from_u8(AbortCause::COUNT as u8), None);
        assert_eq!(AbortCause::ALL.len(), AbortCause::COUNT);
    }
}
