//! Abort causes shared by the STM and the HTM simulator.

/// Why a transaction attempt failed. Returned as `Err(Abort(..))` from
/// transactional reads/writes/commits; the runner in `tle-core` maps causes
/// to retry/backoff/fallback policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// STM: a read found the orec locked by another transaction.
    ReadConflict,
    /// STM: a write could not acquire the orec.
    WriteConflict,
    /// STM: read-set validation failed (at extension or commit).
    ValidationFailed,
    /// HTM: this transaction was doomed by a conflicting access (the
    /// cache-coherence invalidation model).
    Conflict,
    /// HTM: the read- or write-set exceeded simulated cache capacity.
    Capacity,
    /// HTM: a simulated asynchronous event (interrupt, SMI) flushed the
    /// transactional state.
    Event,
    /// The transaction executed an operation that cannot run transactionally
    /// (irrevocable I/O, syscall); must be retried in serial mode.
    Unsafe,
    /// The program explicitly cancelled the transaction.
    Explicit,
}

impl AbortCause {
    /// Short stable label for statistics tables.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::ReadConflict => "read-conflict",
            AbortCause::WriteConflict => "write-conflict",
            AbortCause::ValidationFailed => "validation",
            AbortCause::Conflict => "conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::Event => "event",
            AbortCause::Unsafe => "unsafe",
            AbortCause::Explicit => "explicit",
        }
    }

    /// Whether retrying the same transaction concurrently can possibly
    /// succeed. `Unsafe` deterministically fails until serialized; real RTM
    /// reports the same through the `XABORT`/retry-bit convention.
    pub fn retry_may_succeed(self) -> bool {
        !matches!(self, AbortCause::Unsafe)
    }
}

impl std::fmt::Display for AbortCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let all = [
            AbortCause::ReadConflict,
            AbortCause::WriteConflict,
            AbortCause::ValidationFailed,
            AbortCause::Conflict,
            AbortCause::Capacity,
            AbortCause::Event,
            AbortCause::Unsafe,
            AbortCause::Explicit,
        ];
        let labels: std::collections::HashSet<_> = all.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn only_unsafe_is_deterministic() {
        assert!(!AbortCause::Unsafe.retry_may_succeed());
        assert!(AbortCause::Conflict.retry_may_succeed());
        assert!(AbortCause::Capacity.retry_may_succeed());
    }
}
