//! `tle-lint`: a transaction-safety static analyzer for TLE atomic blocks.
//!
//! The paper's porting war stories (condition variables under elision,
//! the x265 two-phase-locking violation, TM-unsafe I/O, `TM_NoQuiesce`
//! privatization races) are all *source-visible* misuse patterns. This
//! crate finds them before the torture harness has to: it lexes the
//! workspace's Rust sources with an in-tree lexer (no `syn` — the
//! workspace builds offline), matches delimiters into token trees, locates
//! every `critical`/`critical_with` call site, and runs five token-shape
//! rules over each closure body.
//!
//! | id | slug | paper hazard |
//! |----|------|--------------|
//! | R1 | `irrevocable-effect` | §VI: I/O or sleep inside the speculative body |
//! | R2 | `nested-lock` | §V: second lock / re-entrant `critical` (x265 bug) |
//! | R3 | `escape-hazard` | direct atomics / raw pointers bypassing the ctx |
//! | R4 | `noquiesce-privatization` | §IV-B: no-quiesce + privatizing body |
//! | R5 | `condvar-misuse` | §III: OS condvar/park instead of `TxCondvar` |
//! | R6 | `async-in-atomic` | `.await`/`block_on`/nested async entry inside an atomic block |
//!
//! Findings are suppressed with a reviewed, reasoned directive:
//!
//! ```text
//! // tle-lint: allow(R2, "deliberate nested-section panic test")
//! ```
//!
//! A directive without a reason is itself an error (`A1`); a directive
//! that no longer matches anything is stale (`A2`, enforced under
//! `--deny-stale`). The `tle-lint` binary (`src/bin/tle-lint.rs` at the
//! workspace root) wires this into CI with `--deny --format json`.

pub mod extract;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod suppress;
pub mod tree;

pub use report::{render_human, render_json};
pub use rules::{Finding, Rule, LINT_RULES};
pub use scan::{collect_rs_files, lint_paths, lint_source, FileReport, Report};
