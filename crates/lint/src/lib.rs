//! `tle-lint`: a transaction-safety static analyzer for TLE atomic blocks.
//!
//! The paper's porting war stories (condition variables under elision,
//! the x265 two-phase-locking violation, TM-unsafe I/O, `TM_NoQuiesce`
//! privatization races) are all *source-visible* misuse patterns. This
//! crate finds them before the torture harness has to: it lexes the
//! workspace's Rust sources with an in-tree lexer (no `syn` — the
//! workspace builds offline), matches delimiters into token trees, locates
//! every `critical`/`critical_with` call site, and runs five token-shape
//! rules over each closure body.
//!
//! | id | slug | paper hazard |
//! |----|------|--------------|
//! | R1 | `irrevocable-effect` | §VI: I/O or sleep inside the speculative body |
//! | R2 | `nested-lock` | §V: second lock / re-entrant `critical` (x265 bug) |
//! | R3 | `escape-hazard` | direct atomics / raw pointers bypassing the ctx |
//! | R4 | `noquiesce-privatization` | §IV-B: no-quiesce + privatizing body |
//! | R5 | `condvar-misuse` | §III: OS condvar/park instead of `TxCondvar` |
//! | R6 | `async-in-atomic` | `.await`/`block_on`/nested async entry inside an atomic block |
//! | R7 | `lock-order` | §V: cycle in the static lock-acquisition graph (workspace-level) |
//! | R8 | `ordering-audit` | §IV-B: `Relaxed` access on a published atomic (workspace-level) |
//!
//! Since PR 10 the engine is workspace-scoped, not per-file: a symbol
//! table ([`symbols`]) indexes every `fn`, the call graph ([`callgraph`])
//! re-runs R1/R2/R5/R6 *transitively* through resolvable calls out of
//! atomic blocks, R7 ([`lockorder`]) detects acquisition-order cycles
//! across files, and R8 ([`ordering`]) audits relaxed atomics against the
//! publication pairs the rest of the crate establishes. Findings carry
//! `related` spans (the far end of a call chain, the opposite edge of a
//! cycle), and [`sarif`] renders the whole report as SARIF 2.1.0 with a
//! `--baseline` mode for incremental adoption.
//!
//! Findings are suppressed with a reviewed, reasoned directive:
//!
//! ```text
//! // tle-lint: allow(R2, "deliberate nested-section panic test")
//! ```
//!
//! A directive without a reason is itself an error (`A1`); a directive
//! that no longer matches anything is stale (`A2`, enforced under
//! `--deny-stale`). The `tle-lint` binary (`src/bin/tle-lint.rs` at the
//! workspace root) wires this into CI with `--deny --format json`.

pub mod callgraph;
pub mod extract;
pub mod lexer;
pub mod lockorder;
pub mod ordering;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod suppress;
pub mod symbols;
pub mod tree;

pub use report::{render_human, render_json};
pub use rules::{Finding, Related, Rule, LINT_RULES};
pub use sarif::{check_baseline, render_baseline, render_sarif};
pub use scan::{
    collect_rs_files, lint_paths, lint_source, lint_sources, FileReport, Report, WorkspaceStats,
};
