//! R8 `ordering-audit`: `Relaxed` accesses to atomics that elsewhere
//! carry an Acquire/Release publication protocol.
//!
//! The paper's §IV-B publication/privatization discussion is about
//! exactly this shape: a flag is stored with `Release` to publish data
//! written before it, and readers must `Acquire`-load the flag to see
//! that data. A `Relaxed` load of the same flag on some third path
//! compiles, runs, and passes tests on x86 — and reads garbage on ARM.
//! Per-file rules can't see it because the hazard *is* the disagreement
//! between files.
//!
//! The audit is deliberately narrow to stay quiet on honest code:
//!
//! - An "atomic access" is a method call in the atomic vocabulary
//!   (`load`, `store`, `swap`, `compare_exchange*`, `fetch_*`) whose
//!   argument list names a memory ordering (`Relaxed`, `Acquire`,
//!   `Release`, `AcqRel`, `SeqCst`). Without an ordering token it is not
//!   counted — `HashMap::load` shadows never enter the pool.
//! - Accesses group by **(crate, receiver identifier)** — the field or
//!   binding name before the dot. Same-named fields in different crates
//!   are different atomics; same-named fields in one crate may collide,
//!   which can only add a finding on a *relaxed* access the author can
//!   suppress with a reason — the failure mode is a question, not a miss.
//! - A key is a *publication pair* when the crate has both a release-side
//!   write (`store`/RMW with `Release`/`AcqRel`/`SeqCst`) and an
//!   acquire-side read (`load`/RMW with `Acquire`/`AcqRel`/`SeqCst`).
//! - Only plain `load(Relaxed)` / `store(_, Relaxed)` on such a key are
//!   flagged. Relaxed `fetch_add` on a stats counter that someone also
//!   Acquire-loads is idiomatic (counters are self-contained values, not
//!   publication flags) and stays silent.

use crate::extract::Flat;
use crate::lexer::{Span, TokKind};
use crate::rules::{Finding, Related, Rule};
use std::collections::HashMap;
use std::path::PathBuf;

/// Atomic method vocabulary. `load` is the only pure read; everything
/// else writes (RMWs count on both sides of the pair).
const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One recognized atomic access.
#[derive(Debug, Clone)]
pub struct Access {
    /// Receiver identifier (field or binding name before the dot).
    pub key: String,
    pub method: String,
    /// Ordering idents named in the argument list, in source order.
    pub orderings: Vec<String>,
    pub file: usize,
    pub span: Span,
}

impl Access {
    fn names_any(&self, set: &[&str]) -> bool {
        self.orderings.iter().any(|o| set.contains(&o.as_str()))
    }

    /// Release-side write: publishes data written before it.
    fn is_release_write(&self) -> bool {
        self.method != "load" && self.names_any(&["Release", "AcqRel", "SeqCst"])
    }

    /// Acquire-side read: consumes a publication.
    fn is_acquire_read(&self) -> bool {
        self.method != "store" && self.names_any(&["Acquire", "AcqRel", "SeqCst"])
    }

    /// The narrow flagged shape: a plain load/store whose only ordering
    /// is `Relaxed`.
    fn is_relaxed_plain(&self) -> bool {
        matches!(self.method.as_str(), "load" | "store")
            && self.orderings.iter().all(|o| o == "Relaxed")
            && !self.orderings.is_empty()
    }
}

/// Every atomic access in a flattened file.
pub fn collect(flat: &[Flat], file: usize) -> Vec<Access> {
    let mut out = Vec::new();
    for (i, f) in flat.iter().enumerate() {
        let Some(m) = f.ident() else { continue };
        if !ATOMIC_METHODS.contains(&m) {
            continue;
        }
        let prev_dot = i > 0 && flat[i - 1].is_punct('.');
        let next_open = matches!(
            flat.get(i + 1).map(|n| &n.kind),
            Some(TokKind::Open(crate::lexer::Delim::Paren))
        );
        if !prev_dot || !next_open {
            continue;
        }
        let Some(key) = i.checked_sub(2).and_then(|r| flat[r].ident()) else {
            continue;
        };
        if key == "self" {
            continue;
        }
        // Orderings named inside the argument group.
        let mut depth = 0usize;
        let mut orderings = Vec::new();
        for t in &flat[i + 2..] {
            match &t.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) if depth == 0 => break,
                TokKind::Close(_) => depth -= 1,
                TokKind::Ident(id) if ORDERINGS.contains(&id.as_str()) => {
                    orderings.push(id.clone());
                }
                _ => {}
            }
        }
        if orderings.is_empty() {
            continue;
        }
        out.push(Access {
            key: key.to_owned(),
            method: m.to_owned(),
            orderings,
            file,
            span: f.span,
        });
    }
    out
}

/// Audit the workspace's accesses. `accesses` pairs each access with its
/// crate key (derived from the file path by the caller). Returns findings
/// routed to the flagged access's file.
pub fn audit(accesses: &[(String, Access)], paths: &[PathBuf]) -> Vec<(usize, Finding)> {
    let mut groups: HashMap<(&str, &str), Vec<&Access>> = HashMap::new();
    for (crate_key, a) in accesses {
        groups
            .entry((crate_key.as_str(), a.key.as_str()))
            .or_default()
            .push(a);
    }
    let mut out = Vec::new();
    for ((_, key), group) in &groups {
        let release = group.iter().find(|a| a.is_release_write());
        let acquire = group.iter().find(|a| a.is_acquire_read());
        let (Some(release), Some(acquire)) = (release, acquire) else {
            continue;
        };
        for a in group {
            if !a.is_relaxed_plain() {
                continue;
            }
            let verb = if a.method == "load" {
                "load of"
            } else {
                "store to"
            };
            let mut f = Finding::new(
                Rule::OrderingAudit,
                a.span,
                format!(
                    "`Relaxed` {verb} `{key}`, but `{key}` participates in an \
                     Acquire/Release publication pair elsewhere in this crate — a relaxed \
                     access can observe the flag without the data it publishes (invisible \
                     on x86 TSO, real on ARM/POWER)",
                ),
            );
            f.related.push(Related {
                path: paths[release.file].clone(),
                span: release.span,
                note: format!(
                    "release-side `{}({})` publishes here",
                    release.method,
                    release.orderings.join(", ")
                ),
            });
            f.related.push(Related {
                path: paths[acquire.file].clone(),
                span: acquire.span,
                note: format!(
                    "acquire-side `{}({})` consumes here",
                    acquire.method,
                    acquire.orderings.join(", ")
                ),
            });
            out.push((a.file, f));
        }
    }
    // Deterministic order for reports and baselines.
    out.sort_by_key(|(file, f)| (*file, f.span.line, f.span.col));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::flatten_trees;
    use crate::lexer::lex;
    use crate::tree::parse;

    fn run(files: &[(&str, &str)]) -> Vec<(usize, Finding)> {
        let mut accesses = Vec::new();
        let mut paths = Vec::new();
        for (i, (crate_key, src)) in files.iter().enumerate() {
            paths.push(PathBuf::from(format!("{crate_key}/f{i}.rs")));
            let flat = flatten_trees(&parse(lex(src).unwrap().0).unwrap());
            for a in collect(&flat, i) {
                accesses.push(((*crate_key).to_owned(), a));
            }
        }
        audit(&accesses, &paths)
    }

    #[test]
    fn relaxed_load_of_published_flag_is_flagged_with_both_ends() {
        let found = run(&[(
            "core",
            "fn publish(s: &S) { s.ready.store(true, Ordering::Release); }\n\
             fn consume(s: &S) -> bool { s.ready.load(Ordering::Acquire) }\n\
             fn peek(s: &S) -> bool { s.ready.load(Ordering::Relaxed) }",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        let f = &found[0].1;
        assert_eq!(f.rule, Rule::OrderingAudit);
        assert_eq!(f.span.line, 3);
        assert_eq!(f.related.len(), 2);
        assert!(f.related[0].note.contains("release-side"));
    }

    #[test]
    fn pure_relaxed_counters_and_disciplined_pairs_are_clean() {
        let found = run(&[(
            "core",
            "fn a(s: &S) { s.hits.fetch_add(1, Ordering::Relaxed); }\n\
             fn b(s: &S) -> u64 { s.hits.load(Ordering::Relaxed) }\n\
             fn c(s: &S) { s.ready.store(true, Ordering::Release); }\n\
             fn d(s: &S) -> bool { s.ready.load(Ordering::Acquire) }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn relaxed_fetch_add_on_published_key_is_not_flagged() {
        let found = run(&[(
            "core",
            "fn a(s: &S) { s.seq.store(n, Ordering::Release); }\n\
             fn b(s: &S) -> u64 { s.seq.load(Ordering::Acquire) }\n\
             fn c(s: &S) { s.seq.fetch_add(1, Ordering::Relaxed); }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn crates_do_not_cross_pollinate() {
        let found = run(&[
            (
                "alpha",
                "fn a(s: &S) { s.flag.store(true, Ordering::Release); }\n\
                       fn b(s: &S) -> bool { s.flag.load(Ordering::Acquire) }",
            ),
            (
                "beta",
                "fn c(s: &S) -> bool { s.flag.load(Ordering::Relaxed) }",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn accesses_without_ordering_tokens_are_invisible() {
        let found = run(&[(
            "core",
            "fn a(m: &M) { m.cache.store(k, v); m.cache.load(k); }\n\
             fn b(s: &S) { s.cache.store(true, Ordering::Release); }\n\
             fn c(s: &S) -> bool { s.cache.load(Ordering::Acquire) }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn compare_exchange_success_orderings_count_as_release_side() {
        let found = run(&[(
            "core",
            "fn a(s: &S) { s.state.compare_exchange(0, 1, Ordering::AcqRel, \
             Ordering::Acquire); }\n\
             fn b(s: &S) -> u32 { s.state.load(Ordering::Relaxed) }",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
    }
}
