//! `--format sarif`: a SARIF 2.1.0 emitter, plus the `--baseline`
//! write/check mode.
//!
//! SARIF is the interchange format CI forges ingest natively (code
//! scanning annotations, PR overlays), so the emitter is the piece that
//! turns tle-lint from a console tool into a pipeline stage. It is
//! hand-rolled on the [`tle_base::json::Json`] tree — the same
//! byte-deterministic emitter that renders `BENCH_<n>.json` — so the
//! document is stable across runs and can itself be archived and diffed.
//!
//! The baseline file answers the adoption problem every new rule has: a
//! workspace with pre-existing findings can't turn on `--deny` without
//! either fixing everything first or suppressing everything first.
//! `--baseline write <file>` records the current *active* findings as
//! fingerprints; `--baseline check <file>` fails only on findings not in
//! the recorded set, so CI gates new hazards while the backlog is paid
//! down deliberately. Fingerprints are `rule:path:line:col` — stable
//! under message rewording, invalidated by real code motion (which is the
//! correct time to re-review a finding anyway).

use crate::rules::{Finding, Rule};
use crate::scan::Report;
use tle_base::json::Json;

/// Every rule that can appear in a report, for the tool metadata block.
const ALL_RULES: [Rule; 11] = [
    Rule::IrrevocableEffect,
    Rule::NestedLock,
    Rule::EscapeHazard,
    Rule::NoQuiescePrivatization,
    Rule::CondvarMisuse,
    Rule::AsyncInAtomic,
    Rule::LockOrder,
    Rule::OrderingAudit,
    Rule::BadAllow,
    Rule::StaleAllow,
    Rule::ParseError,
];

fn location(path: &std::path::Path, span: crate::lexer::Span, message: Option<&str>) -> Json {
    let physical = Json::Obj(vec![
        (
            "artifactLocation".into(),
            Json::Obj(vec![(
                "uri".into(),
                Json::str(path.display().to_string().replace('\\', "/")),
            )]),
        ),
        (
            "region".into(),
            Json::Obj(vec![
                ("startLine".into(), Json::u64(u64::from(span.line))),
                ("startColumn".into(), Json::u64(u64::from(span.col))),
            ]),
        ),
    ]);
    let mut fields = vec![("physicalLocation".into(), physical)];
    if let Some(msg) = message {
        fields.push((
            "message".into(),
            Json::Obj(vec![("text".into(), Json::str(msg))]),
        ));
    }
    Json::Obj(fields)
}

fn result(
    path: &std::path::Path,
    f: &Finding,
    level: &str,
    suppression_reason: Option<&str>,
) -> Json {
    let mut fields = vec![
        ("ruleId".into(), Json::str(f.rule.id())),
        ("level".into(), Json::str(level)),
        (
            "message".into(),
            Json::Obj(vec![("text".into(), Json::str(&f.message))]),
        ),
        (
            "locations".into(),
            Json::Arr(vec![location(path, f.span, None)]),
        ),
    ];
    if !f.related.is_empty() {
        fields.push((
            "relatedLocations".into(),
            Json::Arr(
                f.related
                    .iter()
                    .map(|r| location(&r.path, r.span, Some(&r.note)))
                    .collect(),
            ),
        ));
    }
    if let Some(reason) = suppression_reason {
        fields.push((
            "suppressions".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("kind".into(), Json::str("inSource")),
                ("justification".into(), Json::str(reason)),
            ])]),
        ));
    }
    fields.push((
        "partialFingerprints".into(),
        Json::Obj(vec![("tleLint/v1".into(), Json::str(fingerprint(path, f)))]),
    ));
    Json::Obj(fields)
}

/// Render the full SARIF 2.1.0 document.
pub fn render_sarif(report: &Report) -> String {
    let rules: Vec<Json> = ALL_RULES
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("id".into(), Json::str(r.id())),
                ("name".into(), Json::str(r.slug())),
                (
                    "shortDescription".into(),
                    Json::Obj(vec![("text".into(), Json::str(r.hazard()))]),
                ),
            ])
        })
        .collect();

    let mut results: Vec<Json> = Vec::new();
    for file in &report.files {
        for f in &file.findings {
            results.push(result(&file.path, f, "error", None));
        }
        for (f, reason) in &file.suppressed {
            results.push(result(&file.path, f, "note", Some(reason)));
        }
        for f in &file.stale {
            results.push(result(&file.path, f, "warning", None));
        }
    }

    let doc = Json::Obj(vec![
        (
            "$schema".into(),
            Json::str("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version".into(), Json::str("2.1.0")),
        (
            "runs".into(),
            Json::Arr(vec![Json::Obj(vec![
                (
                    "tool".into(),
                    Json::Obj(vec![(
                        "driver".into(),
                        Json::Obj(vec![
                            ("name".into(), Json::str("tle-lint")),
                            ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
                            (
                                "informationUri".into(),
                                Json::str("https://example.invalid/tle-lint"),
                            ),
                            ("rules".into(), Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("columnKind".into(), Json::str("unicodeCodePoints")),
                ("results".into(), Json::Arr(results)),
            ])]),
        ),
    ]);
    doc.render()
}

/// The stable identity of one active finding.
fn fingerprint(path: &std::path::Path, f: &Finding) -> String {
    format!(
        "{}:{}:{}:{}",
        f.rule.id(),
        path.display().to_string().replace('\\', "/"),
        f.span.line,
        f.span.col
    )
}

/// Render the baseline document: the sorted fingerprint set of every
/// *active* finding (suppressed and stale findings are already handled by
/// their own machinery).
pub fn render_baseline(report: &Report) -> String {
    let mut fps: Vec<String> = report
        .files
        .iter()
        .flat_map(|file| file.findings.iter().map(|f| fingerprint(&file.path, f)))
        .collect();
    fps.sort();
    fps.dedup();
    Json::Obj(vec![
        ("schema".into(), Json::str("tle-lint-baseline")),
        ("version".into(), Json::u64(1)),
        (
            "findings".into(),
            Json::Arr(fps.into_iter().map(Json::Str).collect()),
        ),
    ])
    .render()
}

/// Check the report against a previously written baseline. Returns the
/// fingerprints of findings *not* covered by the baseline (empty = pass),
/// or an error when the baseline file doesn't parse.
pub fn check_baseline(report: &Report, baseline_src: &str) -> Result<Vec<String>, String> {
    let doc = Json::parse(baseline_src).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some("tle-lint-baseline") {
        return Err("baseline is missing `\"schema\": \"tle-lint-baseline\"`".into());
    }
    let known: std::collections::HashSet<&str> = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("baseline is missing the `findings` array")?
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let mut fresh: Vec<String> = report
        .files
        .iter()
        .flat_map(|file| file.findings.iter().map(|f| fingerprint(&file.path, f)))
        .filter(|fp| !known.contains(fp.as_str()))
        .collect();
    fresh.sort();
    fresh.dedup();
    Ok(fresh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{lint_source, lint_sources};
    use std::path::PathBuf;

    fn dirty_report() -> Report {
        lint_sources(vec![(
            PathBuf::from("crates/demo/src/a.rs"),
            "fn log_it() { println!(\"x\"); }\n\
             fn f(th: &T, l: &L) { th.critical(l, |ctx| { log_it(); Ok(()) }); }\n\
             fn g(th: &T, l: &L) {\n\
                 // tle-lint: allow(R1, \"demo allows logging\")\n\
                 th.critical(l, |ctx| { println!(\"y\"); Ok(()) });\n\
             }"
            .to_owned(),
        )])
    }

    #[test]
    fn sarif_document_parses_and_carries_the_schema() {
        let doc = render_sarif(&dirty_report());
        let v = Json::parse(&doc).expect("SARIF output must be valid JSON");
        assert_eq!(v.get("version").and_then(Json::as_str), Some("2.1.0"));
        let run = &v.get("runs").and_then(Json::as_arr).unwrap()[0];
        let driver = run.get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").and_then(Json::as_str), Some("tle-lint"));
        assert_eq!(
            driver
                .get("rules")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(11)
        );
    }

    #[test]
    fn results_carry_chains_and_suppression_justifications() {
        let doc = render_sarif(&dirty_report());
        let v = Json::parse(&doc).unwrap();
        let results = v.get("runs").and_then(Json::as_arr).unwrap()[0]
            .get("results")
            .and_then(Json::as_arr)
            .unwrap();
        // One active transitive R1 (with a related location at the hazard),
        // one suppressed local R1 (with a justification).
        let active = results
            .iter()
            .find(|r| r.get("level").and_then(Json::as_str) == Some("error"))
            .expect("active result present");
        assert!(active.get("relatedLocations").is_some());
        let suppressed = results
            .iter()
            .find(|r| r.get("suppressions").is_some())
            .expect("suppressed result present");
        let just = suppressed
            .get("suppressions")
            .and_then(Json::as_arr)
            .unwrap()[0]
            .get("justification")
            .and_then(Json::as_str);
        assert_eq!(just, Some("demo allows logging"));
    }

    #[test]
    fn sarif_render_is_byte_deterministic_through_a_round_trip() {
        let doc = render_sarif(&dirty_report());
        assert_eq!(Json::parse(&doc).unwrap().render(), doc);
    }

    #[test]
    fn baseline_write_then_check_passes_and_new_findings_fail() {
        let report = dirty_report();
        let baseline = render_baseline(&report);
        assert!(check_baseline(&report, &baseline).unwrap().is_empty());

        // A second workspace with one extra finding: only the new one trips.
        let dirtier = lint_sources(vec![(
            PathBuf::from("crates/demo/src/a.rs"),
            "fn log_it() { println!(\"x\"); }\n\
             fn f(th: &T, l: &L) { th.critical(l, |ctx| { log_it(); Ok(()) }); }\n\
             fn g(th: &T, l: &L) {\n\
                 // tle-lint: allow(R1, \"demo allows logging\")\n\
                 th.critical(l, |ctx| { println!(\"y\"); Ok(()) });\n\
             }\n\
             fn h(th: &T, l: &L) { th.critical(l, |ctx| { side.lock(); Ok(()) }); }"
                .to_owned(),
        )]);
        let fresh = check_baseline(&dirtier, &baseline).unwrap();
        assert_eq!(fresh.len(), 1, "{fresh:?}");
        assert!(fresh[0].starts_with("R2:"), "{fresh:?}");
    }

    #[test]
    fn clean_reports_produce_an_empty_baseline() {
        let fr = lint_source("ok.rs", "fn f() { let x = 1; }");
        let report = Report {
            files: vec![fr],
            files_scanned: 1,
            ..Report::default()
        };
        let baseline = render_baseline(&report);
        let v = Json::parse(&baseline).unwrap();
        assert_eq!(
            v.get("findings").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn malformed_baselines_are_named_errors() {
        let report = dirty_report();
        assert!(check_baseline(&report, "not json").is_err());
        assert!(check_baseline(&report, "{\"schema\": \"other\"}").is_err());
        assert!(check_baseline(
            &report,
            "{\"schema\": \"tle-lint-baseline\", \"version\": 1}"
        )
        .is_err());
    }
}
