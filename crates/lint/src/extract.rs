//! Locating atomic blocks: every `.critical(...)` / `.critical_with(...)`
//! call site — and every `tx(..)` request-builder terminal
//! (`.tx(..).run(|ctx| ..)`, `.tx(..).hints(..).try_run_async(|ctx| ..)`)
//! — with its closure body flattened for rule scanning.
//!
//! Call sites are recognized by shape — a `.` followed by one of the
//! critical-section method names followed by a parenthesized argument
//! group. Definitions (`pub fn critical<'a, R>(...)`) never match because
//! they are not preceded by `.`. Builder terminals only count when the
//! method chain walks back through `hints`/`deadline_us` links to a
//! `.tx(..)` origin, so an unrelated `.run(..)` (criterion, builders)
//! never matches. The search descends into *every* group, so call sites
//! inside `macro_rules!` bodies, nested modules, closures and test
//! functions are all found; nested `critical`/`tx` calls surface both as
//! their own site and as an R2 finding in the enclosing body.

use crate::lexer::{Delim, Span, TokKind};
use crate::tree::{Group, Tree};

/// Method names that open an atomic block (legacy direct surface).
pub const CRITICAL_METHODS: [&str; 3] = ["critical", "critical_with", "critical_hinted"];

/// Terminal methods of the `tx(..)` request builder; each consumes the
/// request and takes the atomic-block closure as its argument.
pub const TX_TERMINALS: [&str; 4] = ["run", "try_run", "run_async", "try_run_async"];

/// Non-terminal links of the request-builder chain (`tx(..)` itself is the
/// origin).
const TX_CHAIN: [&str; 2] = ["hints", "deadline_us"];

/// A flattened token inside a closure body. Group boundaries are kept as
/// `Open`/`Close` entries so rules can reason about argument lists.
#[derive(Debug, Clone)]
pub struct Flat {
    pub kind: TokKind,
    pub span: Span,
    /// True when the token sits inside the argument group of a
    /// `.defer(...)` call: deferred actions run post-commit/post-unlock,
    /// outside the abortable attempt, so the transaction-safety rules do
    /// not apply to them (the paper's §VI logging-under-lock mechanism).
    pub in_defer: bool,
}

impl Flat {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The payload of a plain `"..."` string literal (same contract as
    /// [`crate::lexer::Tok::str_payload`]).
    pub fn str_payload(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Literal(raw) => raw
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .filter(|r| !r.contains('\\')),
            _ => None,
        }
    }
}

/// One located atomic block.
#[derive(Debug)]
pub struct Site {
    /// `critical`, `critical_with`, `critical_hinted`, or a builder
    /// terminal (`run`, `try_run`, `run_async`, `try_run_async`).
    pub method: String,
    /// Span of the method-name token.
    pub span: Span,
    /// The closure's context parameter name (`ctx` in `|ctx| ...`), when
    /// the closure binds one.
    pub ctx: Option<String>,
    /// The closure body, flattened.
    pub body: Vec<Flat>,
    /// The lock-argument expression, flattened: the first argument of
    /// `critical(..)` / the argument of the `.tx(..)` origin. The
    /// lock-order analysis resolves this to an `ElidableMutex` name key.
    pub lock: Vec<Flat>,
}

/// Find every critical-section call site in the forest.
pub fn find_sites(trees: &[Tree]) -> Vec<Site> {
    let mut out = Vec::new();
    walk(trees, &mut out);
    out
}

fn walk(kids: &[Tree], out: &mut Vec<Site>) {
    for (i, t) in kids.iter().enumerate() {
        if let Tree::Group(g) = t {
            if g.delim == Delim::Paren && i >= 2 && kids[i - 2].is_punct('.') {
                if let Some(m) = kids[i - 1].ident() {
                    if CRITICAL_METHODS.contains(&m) {
                        out.push(extract_site(m, kids[i - 1].span(), g, Some(g)));
                    } else if TX_TERMINALS.contains(&m) {
                        if let Some(origin) = tx_origin(kids, i) {
                            out.push(extract_site(m, kids[i - 1].span(), g, Some(origin)));
                        }
                    }
                }
            }
            walk(&g.kids, out);
        }
    }
}

/// Does the method chain ending in the group at `idx` originate in a
/// `.tx(..)` call? Walks back through `[.., '.', name, (args)]` links:
/// `th.tx(&l).hints(h).run(..)` → `run`'s group at `idx`, preceding link
/// group at `idx - 3` named `hints`, preceding link named `tx` — matched,
/// returning the `tx` argument group (which names the lock).
fn tx_origin(kids: &[Tree], idx: usize) -> Option<&Group> {
    let mut group = idx.checked_sub(3);
    while let Some(g) = group {
        let Some(Tree::Group(gr)) = kids.get(g) else {
            return None;
        };
        if gr.delim != Delim::Paren {
            return None;
        }
        let named = g >= 2 && kids[g - 2].is_punct('.');
        match kids.get(g.wrapping_sub(1)).and_then(|t| t.ident()) {
            Some("tx") => return Some(gr),
            Some(link) if named && TX_CHAIN.contains(&link) => group = g.checked_sub(3),
            _ => return None,
        }
    }
    None
}

/// Pull the trailing closure out of a critical call's argument group.
/// `lock_group` is the group whose first argument names the lock (the call
/// group itself for `critical*`, the `.tx(..)` origin for builder
/// terminals).
fn extract_site(method: &str, span: Span, args: &Group, lock_group: Option<&Group>) -> Site {
    let kids = &args.kids;
    // The lock argument: everything in the lock group before its first
    // top-level comma (for `critical(&lock, ..)`) or the whole group (for
    // `.tx(&lock)`).
    let mut lock = Vec::new();
    if let Some(lg) = lock_group {
        let first_arg_end = lg
            .kids
            .iter()
            .position(|t| t.is_punct(','))
            .unwrap_or(lg.kids.len());
        flatten(&lg.kids[..first_arg_end], false, &mut lock);
    }
    // First top-level `|` opens the closure parameter list (the preceding
    // arguments — lock reference, hints — never contain a bare `|`).
    let Some(p0) = kids.iter().position(|t| t.is_punct('|')) else {
        // No closure literal (e.g. a function path was passed); nothing to
        // scan structurally.
        return Site {
            method: method.to_owned(),
            span,
            ctx: None,
            body: Vec::new(),
            lock,
        };
    };
    let (ctx, body_start) = if kids.get(p0 + 1).is_some_and(|t| t.is_punct('|')) {
        // `||` — parameterless closure.
        (None, p0 + 2)
    } else {
        let p1 = kids[p0 + 1..]
            .iter()
            .position(|t| t.is_punct('|'))
            .map(|off| p0 + 1 + off);
        match p1 {
            Some(p1) => {
                let ctx = kids[p0 + 1..p1]
                    .iter()
                    .find_map(|t| t.ident().map(str::to_owned));
                (ctx, p1 + 1)
            }
            None => (None, kids.len()),
        }
    };
    let mut body = Vec::new();
    flatten(&kids[body_start.min(kids.len())..], false, &mut body);
    Site {
        method: method.to_owned(),
        span,
        ctx,
        body,
        lock,
    }
}

/// Flatten arbitrary trees (e.g. a `fn` item body) into the linear scan
/// form the rules and the call-graph layer consume, with `.defer(...)`
/// argument ranges marked exactly as in atomic-block bodies.
pub fn flatten_trees(kids: &[Tree]) -> Vec<Flat> {
    let mut out = Vec::new();
    flatten(kids, false, &mut out);
    out
}

/// Flatten trees into the linear scan form, marking `.defer(...)` argument
/// ranges.
fn flatten(kids: &[Tree], in_defer: bool, out: &mut Vec<Flat>) {
    for (i, t) in kids.iter().enumerate() {
        match t {
            Tree::Leaf(tok) => out.push(Flat {
                kind: tok.kind.clone(),
                span: tok.span,
                in_defer,
            }),
            Tree::Group(g) => {
                let deferred = in_defer
                    || (g.delim == Delim::Paren
                        && i >= 2
                        && kids[i - 2].is_punct('.')
                        && kids[i - 1].ident() == Some("defer"));
                out.push(Flat {
                    kind: TokKind::Open(g.delim),
                    span: g.open,
                    in_defer,
                });
                flatten(&g.kids, deferred, out);
                out.push(Flat {
                    kind: TokKind::Close(g.delim),
                    span: g.close,
                    in_defer,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::parse;

    fn sites(src: &str) -> Vec<Site> {
        find_sites(&parse(lex(src).unwrap().0).unwrap())
    }

    #[test]
    fn finds_simple_site_and_ctx_name() {
        let s = sites("fn f() { th.critical(&lock, |ctx| { ctx.read(&c) }); }");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].method, "critical");
        assert_eq!(s[0].ctx.as_deref(), Some("ctx"));
        assert!(s[0].body.iter().any(|f| f.ident() == Some("read")));
    }

    #[test]
    fn definitions_are_not_sites() {
        let s = sites("pub fn critical(&self, body: F) -> R { run(body) }");
        assert!(s.is_empty());
    }

    #[test]
    fn critical_with_skips_hint_args() {
        let s = sites("th.critical_with(&lock, (2, 8), move |tx| { tx.write(&c, 1) });");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].ctx.as_deref(), Some("tx"));
    }

    #[test]
    fn nested_sites_are_both_found() {
        let s = sites("th.critical(&a, |ctx| { th.critical(&b, |c2| { Ok(()) }) });");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn defer_args_are_marked() {
        let s = sites("th.critical(&a, |ctx| { ctx.defer(move || println!(\"x\")); Ok(()) });");
        let println_tok = s[0]
            .body
            .iter()
            .find(|f| f.ident() == Some("println"))
            .expect("println token present");
        assert!(println_tok.in_defer);
        let defer_tok = s[0]
            .body
            .iter()
            .find(|f| f.ident() == Some("defer"))
            .expect("defer token present");
        assert!(!defer_tok.in_defer);
    }

    #[test]
    fn builder_terminal_is_a_site() {
        let s = sites("fn f() { th.tx(&lock).run(|ctx| { ctx.read(&c) }); }");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].method, "run");
        assert_eq!(s[0].ctx.as_deref(), Some("ctx"));
        assert!(s[0].body.iter().any(|f| f.ident() == Some("read")));
    }

    #[test]
    fn builder_chain_links_are_followed() {
        let s = sites(
            "th.tx(&lock).hints((2, 8)).deadline_us(50).try_run_async(move |tx| { \
             tx.write(&c, 1) });",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].method, "try_run_async");
        assert_eq!(s[0].ctx.as_deref(), Some("tx"));
    }

    #[test]
    fn unrelated_run_calls_are_not_sites() {
        let s = sites(
            "group.run(|b| b.iter(|| 1)); builder.hints(h).run(f); c.bench(\"x\", |b| b.run());",
        );
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn sites_record_their_lock_argument() {
        let s = sites("th.critical(&self.shard[i], |ctx| { Ok(()) });");
        let idents: Vec<_> = s[0].lock.iter().filter_map(|f| f.ident()).collect();
        assert_eq!(idents, vec!["self", "shard", "i"]);
        let s = sites("th.tx(&queue_lock).hints(h).run(|ctx| { Ok(()) });");
        let idents: Vec<_> = s[0].lock.iter().filter_map(|f| f.ident()).collect();
        assert_eq!(idents, vec!["queue_lock"]);
    }

    #[test]
    fn macro_body_sites_are_found() {
        let s = sites(
            "macro_rules! m { ($th:ident, $l:expr) => { $th.critical($l, |ctx| { Ok(()) }) }; }",
        );
        assert_eq!(s.len(), 1);
    }
}
