//! Rendering: human-readable and `--format json` output.
//!
//! The JSON emitter is hand-rolled (the crate is dependency-free by
//! design); the schema is flat and stable so CI can archive the output as a
//! build artifact and diff it across runs.

use crate::rules::Finding;
use crate::scan::Report;
use std::fmt::Write as _;
use std::path::Path;

/// Render the human report. `show_suppressed` lists the silenced findings
/// with their reasons; `show_stale` includes A2 stale-allow diagnostics.
pub fn render_human(report: &Report, show_stale: bool) -> String {
    let mut out = String::new();
    for file in &report.files {
        for f in &file.findings {
            line(&mut out, &file.path, f);
        }
        if show_stale {
            for f in &file.stale {
                line(&mut out, &file.path, f);
            }
        }
    }
    let stale = report.total_stale();
    let _ = writeln!(
        out,
        "tle-lint: {} file(s), {} atomic block(s), {} finding(s), {} suppressed{}",
        report.files_scanned,
        report.total_sites(),
        report.total_findings(),
        report.total_suppressed(),
        if stale > 0 {
            format!(", {stale} stale suppression(s)")
        } else {
            String::new()
        }
    );
    let s = &report.stats;
    let _ = writeln!(
        out,
        "tle-lint: workspace: {} fn(s) indexed, {} call(s) resolved from atomic blocks, \
         {} lock name(s), {} lock-order edge(s), {} atomic access(es) audited",
        s.fns_indexed, s.calls_resolved, s.lock_names, s.lock_edges, s.atomic_accesses
    );
    out
}

fn line(out: &mut String, path: &Path, f: &Finding) {
    let _ = writeln!(
        out,
        "{}:{}: [{} {}] {}",
        path.display(),
        f.span,
        f.rule.id(),
        f.rule.slug(),
        f.message
    );
    for r in &f.related {
        let _ = writeln!(out, "    -> {}:{}: {}", r.path.display(), r.span, r.note);
    }
}

/// Render the JSON report (single line per top-level key group, stable key
/// order).
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"findings\": [");
    let mut first = true;
    for file in &report.files {
        for f in &file.findings {
            json_finding(&mut out, &mut first, &file.path, f, "active", None);
        }
        for (f, reason) in &file.suppressed {
            json_finding(
                &mut out,
                &mut first,
                &file.path,
                f,
                "suppressed",
                Some(reason),
            );
        }
        for f in &file.stale {
            json_finding(&mut out, &mut first, &file.path, f, "stale", None);
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"sites\": {},", report.total_sites());
    let _ = writeln!(out, "  \"active\": {},", report.total_findings());
    let _ = writeln!(out, "  \"suppressed\": {},", report.total_suppressed());
    let _ = writeln!(out, "  \"stale\": {},", report.total_stale());
    let s = &report.stats;
    let _ = writeln!(
        out,
        "  \"workspace\": {{\"fns_indexed\": {}, \"calls_resolved\": {}, \
         \"lock_names\": {}, \"lock_edges\": {}, \"atomic_accesses\": {}}}",
        s.fns_indexed, s.calls_resolved, s.lock_names, s.lock_edges, s.atomic_accesses
    );
    out.push('}');
    out
}

fn json_finding(
    out: &mut String,
    first: &mut bool,
    path: &Path,
    f: &Finding,
    status: &str,
    reason: Option<&str>,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "\n    {{\"rule\": \"{}\", \"slug\": \"{}\", \"file\": {}, \"line\": {}, \
         \"col\": {}, \"status\": \"{}\", \"message\": {}",
        f.rule.id(),
        f.rule.slug(),
        json_str(&path.display().to_string()),
        f.span.line,
        f.span.col,
        status,
        json_str(&f.message)
    );
    if let Some(reason) = reason {
        let _ = write!(out, ", \"reason\": {}", json_str(reason));
    }
    if !f.related.is_empty() {
        out.push_str(", \"related\": [");
        for (i, r) in f.related.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"file\": {}, \"line\": {}, \"col\": {}, \"note\": {}}}",
                json_str(&r.path.display().to_string()),
                r.span.line,
                r.span.col,
                json_str(&r.note)
            );
        }
        out.push(']');
    }
    out.push('}');
}

/// Escape a string per RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::lint_source;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_is_parseable_shape() {
        let fr = lint_source(
            "t.rs",
            "fn f(th: &T, l: &L) { th.critical(l, |ctx| { println!(\"x\"); Ok(()) }); }",
        );
        let report = Report {
            files: vec![fr],
            files_scanned: 1,
            ..Report::default()
        };
        let js = render_json(&report);
        assert!(js.contains("\"rule\": \"R1\""));
        assert!(js.contains("\"status\": \"active\""));
        assert!(js.ends_with('}'));
        // Balanced braces/brackets as a cheap well-formedness probe.
        assert_eq!(js.matches('{').count(), js.matches('}').count());
        assert_eq!(js.matches('[').count(), js.matches(']').count());
    }
}
