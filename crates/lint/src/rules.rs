//! The transaction-safety rules, one per misuse class the paper fixed by
//! hand.
//!
//! | rule | paper hazard |
//! |------|--------------|
//! | R1 `irrevocable-effect` | §VI TM-unsafe actions: I/O, sleeps and other unrevertible effects force serial-irrevocable execution; the paper routes them through deferred actions |
//! | R2 `nested-lock` | §V the x265 two-phase-locking violation: acquiring another lock (or re-entering `critical`) inside an atomic block |
//! | R3 `escape-hazard` | mixed transactional/non-transactional access: direct atomics or `load_direct`/`store_direct` inside the closure bypass the TM read/write sets |
//! | R4 `noquiesce-privatization` | §IV-B: `TM_NoQuiesce` asserted by a transaction that privatizes (frees/drops shared data) — readers may still hold speculative references |
//! | R5 `condvar-misuse` | §III: OS condition variables or `park` inside a transaction deadlock or lose wakeups; waiting must go through `TxCondvar` (Wang's construction) |
//! | R6 `async-in-atomic` | atomic blocks never suspend mid-speculation: `.await`, `block_on(..)` or a nested async section entry inside the closure would pin orecs/line claims across arbitrary scheduling delays |
//!
//! The scan is token-shape based and deliberately path-insensitive: a rule
//! fires when a hazardous shape appears anywhere in the closure body. Two
//! escape hatches model the sanctioned idioms: tokens inside a
//! `ctx.defer(...)` argument group are exempt from every rule (deferred
//! actions run post-commit), and R1 stops firing after a `ctx.unsafe_op()`
//! call (the runner re-executes the section serial-irrevocably, so later
//! effects are not speculative).

use crate::extract::{Flat, Site, CRITICAL_METHODS};
use crate::lexer::{Delim, Span, TokKind};
use std::path::PathBuf;

/// Everything the analyzer can report. `R1..R8` are the suppressible
/// rules; the `A*`/`P*` rules are meta-diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    IrrevocableEffect,
    NestedLock,
    EscapeHazard,
    NoQuiescePrivatization,
    CondvarMisuse,
    AsyncInAtomic,
    /// A cycle in the static lock-order graph (workspace-level).
    LockOrder,
    /// A `Relaxed` access on an atomic that elsewhere carries an
    /// Acquire/Release publication pair (workspace-level).
    OrderingAudit,
    /// A `tle-lint:` directive that is malformed or missing its reason.
    BadAllow,
    /// A valid suppression whose rule no longer fires on its line.
    StaleAllow,
    /// The file could not be lexed/parsed into token trees.
    ParseError,
}

/// The eight suppressible rules, in id order.
pub const LINT_RULES: [Rule; 8] = [
    Rule::IrrevocableEffect,
    Rule::NestedLock,
    Rule::EscapeHazard,
    Rule::NoQuiescePrivatization,
    Rule::CondvarMisuse,
    Rule::AsyncInAtomic,
    Rule::LockOrder,
    Rule::OrderingAudit,
];

impl Rule {
    /// Short id (`R1`..`R6`, `A1`, `A2`, `P1`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::IrrevocableEffect => "R1",
            Rule::NestedLock => "R2",
            Rule::EscapeHazard => "R3",
            Rule::NoQuiescePrivatization => "R4",
            Rule::CondvarMisuse => "R5",
            Rule::AsyncInAtomic => "R6",
            Rule::LockOrder => "R7",
            Rule::OrderingAudit => "R8",
            Rule::BadAllow => "A1",
            Rule::StaleAllow => "A2",
            Rule::ParseError => "P1",
        }
    }

    /// Human slug, used in directives and JSON output.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::IrrevocableEffect => "irrevocable-effect",
            Rule::NestedLock => "nested-lock",
            Rule::EscapeHazard => "escape-hazard",
            Rule::NoQuiescePrivatization => "noquiesce-privatization",
            Rule::CondvarMisuse => "condvar-misuse",
            Rule::AsyncInAtomic => "async-in-atomic",
            Rule::LockOrder => "lock-order",
            Rule::OrderingAudit => "ordering-audit",
            Rule::BadAllow => "bad-allow",
            Rule::StaleAllow => "stale-allow",
            Rule::ParseError => "parse-error",
        }
    }

    /// One-line description of the paper hazard the rule guards.
    pub fn hazard(self) -> &'static str {
        match self {
            Rule::IrrevocableEffect => {
                "TM-unsafe effect inside an atomic block (paper \u{a7}VI): I/O and sleeps \
                 cannot be rolled back; route through ctx.defer(..) or serialize first \
                 with ctx.unsafe_op()?"
            }
            Rule::NestedLock => {
                "lock acquired inside an atomic block (paper \u{a7}V, the x265 2PL \
                 violation): restructure with a ready flag or merge the sections"
            }
            Rule::EscapeHazard => {
                "shared state accessed around the TM instrumentation inside an atomic \
                 block: use ctx.read/ctx.write so conflicts are detected and rollback \
                 stays exact"
            }
            Rule::NoQuiescePrivatization => {
                "TM_NoQuiesce asserted by a privatizing transaction (paper \u{a7}IV-B): \
                 skipping the drain while freeing shared data races doomed readers; drop \
                 the no_quiesce() or declare ctx.will_free_memory()"
            }
            Rule::CondvarMisuse => {
                "OS blocking primitive inside an atomic block (paper \u{a7}III): waiting \
                 must commit the transaction first; use ctx.wait/ctx.signal on a TxCondvar"
            }
            Rule::AsyncInAtomic => {
                "suspension point inside an atomic block: attempts must start and finish \
                 inside one poll; an .await/block_on would hold speculative state (orecs, \
                 line claims, the serial token) across arbitrary scheduling delays \u{2014} \
                 commit first, then await (ctx.wait suspends safely between attempts)"
            }
            Rule::LockOrder => {
                "cycle in the static lock-order graph (paper \u{a7}V): two sections acquire \
                 the same locks in opposite orders, so the serial fallback can deadlock \
                 even though elided runs never do; impose one global acquisition order"
            }
            Rule::OrderingAudit => {
                "Relaxed access on an atomic that elsewhere forms an Acquire/Release \
                 publication pair: the relaxed side can observe the flag without the \
                 published data; upgrade the ordering or justify the site in-line"
            }
            Rule::BadAllow => "malformed suppression: tle-lint: allow(<rule>, \"<reason>\")",
            Rule::StaleAllow => "suppression no longer matches any finding on its line",
            Rule::ParseError => "file could not be tokenized",
        }
    }

    /// Parse `R1`/`r1` or a slug into a suppressible rule.
    pub fn parse_suppressible(s: &str) -> Option<Rule> {
        LINT_RULES
            .iter()
            .copied()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.slug().eq_ignore_ascii_case(s))
    }
}

/// A secondary location attached to a finding — the far end of a call
/// chain, the other edge of a lock-order cycle, the publication pair a
/// relaxed access races.
#[derive(Debug, Clone)]
pub struct Related {
    pub path: PathBuf,
    pub span: Span,
    pub note: String,
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub span: Span,
    pub message: String,
    /// Secondary spans (possibly in other files). Empty for purely local
    /// findings.
    pub related: Vec<Related>,
}

impl Finding {
    pub fn new(rule: Rule, span: Span, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            span,
            message: message.into(),
            related: Vec::new(),
        }
    }
}

/// I/O-flavoured macros (R1): `name!(..)`.
const IO_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];
/// Free functions whose *call* inside an atomic block is irrevocable (R1).
const IO_CALLS: [&str; 6] = [
    "sleep",
    "stdout",
    "stderr",
    "stdin",
    "remove_file",
    "create_dir",
];
/// Path heads that mark filesystem access (R1): `File::`, `fs::`, ...
const IO_PATH_HEADS: [&str; 3] = ["File", "OpenOptions", "fs"];
/// Lock-acquisition method names (R2).
const LOCK_METHODS: [&str; 3] = ["lock", "try_lock", "raw_lock"];
/// Atomic RMW method names, flagged unconditionally (R3).
const ATOMIC_RMW: [&str; 8] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];
/// Atomic load/store/swap — flagged only when the argument list names a
/// memory ordering, so slice `.swap(i, j)` and friends stay clean (R3).
const ATOMIC_ORDERED: [&str; 3] = ["load", "store", "swap"];
const ORDERINGS: [&str; 6] = [
    "Ordering", "Relaxed", "Acquire", "Release", "SeqCst", "AcqRel",
];
/// Direct TCell access, bypassing the context (R3).
const DIRECT_CELL: [&str; 2] = ["load_direct", "store_direct"];
/// Privatization markers for R4.
const PRIVATIZE: [&str; 3] = ["drop", "from_raw", "dealloc"];
/// OS blocking primitives (R5).
const PARK_CALLS: [&str; 2] = ["park", "park_timeout"];
/// Async section entry points (R6): awaiting any of these inside an atomic
/// block is a suspension hazard; `critical_async` is the free-function
/// spelling some front-ends use.
const ASYNC_ENTRIES: [&str; 3] = ["run_async", "try_run_async", "critical_async"];
const CONDVAR_METHODS: [&str; 3] = ["notify_one", "notify_all", "wait_timeout"];

/// Run every rule over one atomic block.
pub fn scan_site(site: &Site) -> Vec<Finding> {
    let flat = &site.body;
    let mut out = Vec::new();

    // Index of the first `.unsafe_op(` call: effects after it run under the
    // serial-irrevocable re-execution, not speculatively.
    let first_unsafe_op = flat.iter().enumerate().position(|(i, f)| {
        f.ident() == Some("unsafe_op") && i > 0 && flat[i - 1].is_punct('.') && !f.in_defer
    });

    for (i, f) in flat.iter().enumerate() {
        if f.in_defer {
            continue;
        }
        let Some(name) = f.ident() else { continue };
        let prev_dot = i > 0 && flat[i - 1].is_punct('.');
        let next_bang = flat.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let next_open = matches!(
            flat.get(i + 1).map(|n| &n.kind),
            Some(TokKind::Open(Delim::Paren))
        );
        let next_colon = flat.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && flat.get(i + 2).is_some_and(|n| n.is_punct(':'));
        let serialized = first_unsafe_op.is_some_and(|u| i > u);

        // --- R1: irrevocable effects -------------------------------------
        if !serialized {
            if IO_MACROS.contains(&name) && next_bang {
                out.push(finding(
                    Rule::IrrevocableEffect,
                    f.span,
                    format!(
                        "`{name}!` inside an atomic block is irrevocable; move it into \
                         ctx.defer(..) or serialize first with ctx.unsafe_op()?"
                    ),
                ));
            } else if ["write", "writeln"].contains(&name)
                && next_bang
                && args_contain(flat, i + 2, &["stdout", "stderr"])
            {
                out.push(finding(
                    Rule::IrrevocableEffect,
                    f.span,
                    format!("`{name}!` to a standard stream inside an atomic block is irrevocable"),
                ));
            } else if IO_CALLS.contains(&name) && next_open {
                out.push(finding(
                    Rule::IrrevocableEffect,
                    f.span,
                    format!(
                        "`{name}(..)` inside an atomic block is an irrevocable effect; \
                         defer it or serialize with ctx.unsafe_op()?"
                    ),
                ));
            } else if IO_PATH_HEADS.contains(&name) && next_colon {
                out.push(finding(
                    Rule::IrrevocableEffect,
                    f.span,
                    format!("`{name}::` filesystem access inside an atomic block is irrevocable"),
                ));
            } else if name == "exit"
                && i >= 3
                && flat[i - 1].is_punct(':')
                && flat[i - 2].is_punct(':')
                && flat[i - 3].ident() == Some("process")
            {
                out.push(finding(
                    Rule::IrrevocableEffect,
                    f.span,
                    "`process::exit` inside an atomic block tears down mid-transaction".into(),
                ));
            }
        }

        // --- R2: nested locks --------------------------------------------
        if prev_dot && name == "tx" && next_open {
            out.push(finding(
                Rule::NestedLock,
                f.span,
                "re-entrant `.tx(..)` request inside an atomic block: TLE cannot subsume \
                 inner critical sections (the x265 2PL bug); merge the sections or hand \
                 off via a ready flag"
                    .into(),
            ));
        } else if prev_dot && CRITICAL_METHODS.contains(&name) && next_open {
            out.push(finding(
                Rule::NestedLock,
                f.span,
                format!(
                    "re-entrant `{name}` inside an atomic block: TLE cannot subsume inner \
                     critical sections (the x265 2PL bug); merge the sections or hand off \
                     via a ready flag"
                ),
            ));
        } else if prev_dot && LOCK_METHODS.contains(&name) && next_open {
            out.push(finding(
                Rule::NestedLock,
                f.span,
                format!(
                    "`.{name}(..)` inside an atomic block acquires a second lock under \
                     speculation; an abort after acquisition violates two-phase locking"
                ),
            ));
        } else if prev_dot && ["read", "write"].contains(&name) && empty_args(flat, i + 1) {
            out.push(finding(
                Rule::NestedLock,
                f.span,
                format!(
                    "zero-argument `.{name}()` looks like an RwLock guard acquisition \
                     inside an atomic block (transactional access is `ctx.{name}(&cell, ..)`)"
                ),
            ));
        }

        // --- R3: escape hazards ------------------------------------------
        if prev_dot && ATOMIC_RMW.contains(&name) && next_open {
            out.push(finding(
                Rule::EscapeHazard,
                f.span,
                format!(
                    "atomic `.{name}(..)` inside an atomic block bypasses the TM read/write \
                     sets; it neither conflicts nor rolls back — use ctx accessors on a TCell"
                ),
            ));
        } else if prev_dot
            && ATOMIC_ORDERED.contains(&name)
            && next_open
            && args_contain(flat, i + 1, &ORDERINGS)
        {
            out.push(finding(
                Rule::EscapeHazard,
                f.span,
                format!(
                    "atomic `.{name}(Ordering::..)` inside an atomic block escapes the \
                     transaction; use ctx.read/ctx.write on a TCell"
                ),
            ));
        } else if DIRECT_CELL.contains(&name) && next_open {
            out.push(finding(
                Rule::EscapeHazard,
                f.span,
                format!(
                    "`{name}` inside an atomic block reads/writes around the transaction \
                     (no conflict detection, no rollback); use the ctx accessor instead"
                ),
            ));
        } else if ["read", "write", "read_volatile", "write_volatile"].contains(&name)
            && i >= 3
            && flat[i - 1].is_punct(':')
            && flat[i - 2].is_punct(':')
            && flat[i - 3].ident() == Some("ptr")
        {
            out.push(finding(
                Rule::EscapeHazard,
                f.span,
                format!("raw-pointer `ptr::{name}` inside an atomic block escapes the transaction"),
            ));
        }

        // --- R5: condvar misuse ------------------------------------------
        if name == "Condvar" {
            out.push(finding(
                Rule::CondvarMisuse,
                f.span,
                "OS `Condvar` inside an atomic block: the wait never commits the \
                 transaction (lost wakeups / deadlock); use TxCondvar via ctx.wait"
                    .into(),
            ));
        } else if PARK_CALLS.contains(&name) && next_open {
            out.push(finding(
                Rule::CondvarMisuse,
                f.span,
                format!(
                    "`{name}()` inside an atomic block parks while holding speculative \
                     state; use ctx.wait on a TxCondvar"
                ),
            ));
        } else if prev_dot && CONDVAR_METHODS.contains(&name) && next_open {
            out.push(finding(
                Rule::CondvarMisuse,
                f.span,
                format!(
                    "`.{name}(..)` is the OS condvar protocol; transactional code signals \
                     via ctx.signal/ctx.broadcast so aborted signallers wake no one"
                ),
            ));
        }

        // --- R6: suspension points ---------------------------------------
        if name == "await" && prev_dot {
            out.push(finding(
                Rule::AsyncInAtomic,
                f.span,
                "`.await` inside an atomic block: attempts must start and finish inside \
                 one poll \u{2014} suspending would hold speculative state across arbitrary \
                 scheduling delays; commit first, then await"
                    .into(),
            ));
        } else if name == "block_on" && next_open {
            out.push(finding(
                Rule::AsyncInAtomic,
                f.span,
                "`block_on(..)` inside an atomic block drives a future to completion while \
                 holding speculative state (and can deadlock the executor the section \
                 itself runs on); restructure so the async work happens outside the section"
                    .into(),
            ));
        } else if prev_dot && ASYNC_ENTRIES.contains(&name) && next_open {
            out.push(finding(
                Rule::AsyncInAtomic,
                f.span,
                format!(
                    "nested async section entry `.{name}(..)` inside an atomic block: the \
                     returned future cannot be awaited here (R6) and polling it inline \
                     re-enters the runtime (R2); restructure per paper \u{a7}V"
                ),
            ));
        }
    }

    // --- R4: TM_NoQuiesce on a privatizing body --------------------------
    let no_quiesce = flat.iter().enumerate().find(|(i, f)| {
        f.ident() == Some("no_quiesce") && *i > 0 && flat[i - 1].is_punct('.') && !f.in_defer
    });
    if let Some((_, nq)) = no_quiesce {
        let will_free = flat.iter().enumerate().any(|(i, f)| {
            f.ident() == Some("will_free_memory") && i > 0 && flat[i - 1].is_punct('.')
        });
        if !will_free {
            if let Some(marker) = privatization_marker(flat) {
                out.push(finding(
                    Rule::NoQuiescePrivatization,
                    nq.span,
                    format!(
                        "no_quiesce() asserted in a body that privatizes (`{}` at {}): \
                         doomed readers may still hold speculative references; remove the \
                         assertion or declare ctx.will_free_memory()",
                        marker.0, marker.1
                    ),
                ));
            }
        }
    }

    out
}

/// File-level R4: `set_lock_no_quiesce` promotes every section under that
/// lock to the no-drain path, so any privatizing body in the same file is
/// suspect even without an in-body `no_quiesce()`.
pub fn scan_set_lock_no_quiesce(file_toks: &[crate::lexer::Tok], sites: &[Site]) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(call) = file_toks.iter().enumerate().find(|(i, f)| {
        f.ident() == Some("set_lock_no_quiesce") && *i > 0 && file_toks[*i - 1].is_punct('.')
    }) else {
        return out;
    };
    for site in sites {
        let will_free = site.body.iter().enumerate().any(|(i, f)| {
            f.ident() == Some("will_free_memory") && i > 0 && site.body[i - 1].is_punct('.')
        });
        if will_free {
            continue;
        }
        if let Some(marker) = privatization_marker(&site.body) {
            out.push(finding(
                Rule::NoQuiescePrivatization,
                call.1.span,
                format!(
                    "set_lock_no_quiesce on a lock whose critical section privatizes \
                     (`{}` at {}): the skipped drain races doomed readers; keep the lock \
                     quiescing or declare ctx.will_free_memory() in that section",
                    marker.0, marker.1
                ),
            ));
            return out; // one finding per call site is enough
        }
    }
    out
}

/// First privatization marker in a body: `drop(..)`, `..::from_raw(..)`,
/// `..::dealloc(..)`.
fn privatization_marker(flat: &[Flat]) -> Option<(String, Span)> {
    flat.iter().enumerate().find_map(|(i, f)| {
        let name = f.ident()?;
        if f.in_defer || !PRIVATIZE.contains(&name) {
            return None;
        }
        let next_open = matches!(
            flat.get(i + 1).map(|n| &n.kind),
            Some(TokKind::Open(Delim::Paren))
        );
        next_open.then(|| (name.to_owned(), f.span))
    })
}

fn finding(rule: Rule, span: Span, message: String) -> Finding {
    Finding::new(rule, span, message)
}

/// The hazards worth chasing *through a call* — the reduced rule set the
/// call-graph layer runs over every function body reachable from an atomic
/// block. R1/R5/R6 keep their local shapes; R2 keeps only the
/// unambiguous acquisition shapes (`.lock()`-family, re-entrant
/// `critical*`/chained `.run(..)`, `.tx(..)`) because the zero-argument
/// `.read()`/`.write()` guard heuristic is too weak a signal outside the
/// closure it was written for. R3/R4 stay local by design: the kernel
/// crates legitimately use raw atomics, and privatization is a property of
/// the section, not of a helper.
pub fn scan_reachable_hazards(flat: &[Flat]) -> Vec<Finding> {
    let mut out = Vec::new();
    let first_unsafe_op = flat.iter().enumerate().position(|(i, f)| {
        f.ident() == Some("unsafe_op") && i > 0 && flat[i - 1].is_punct('.') && !f.in_defer
    });
    for (i, f) in flat.iter().enumerate() {
        if f.in_defer {
            continue;
        }
        let Some(name) = f.ident() else { continue };
        let prev_dot = i > 0 && flat[i - 1].is_punct('.');
        let next_bang = flat.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let next_open = matches!(
            flat.get(i + 1).map(|n| &n.kind),
            Some(TokKind::Open(Delim::Paren))
        );
        let next_colon = flat.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && flat.get(i + 2).is_some_and(|n| n.is_punct(':'));
        let serialized = first_unsafe_op.is_some_and(|u| i > u);

        // R1 — same irrevocable-effect shapes as the local rule.
        if !serialized
            && ((IO_MACROS.contains(&name) && next_bang)
                || (IO_CALLS.contains(&name) && next_open)
                || (IO_PATH_HEADS.contains(&name) && next_colon))
        {
            out.push(finding(
                Rule::IrrevocableEffect,
                f.span,
                format!("irrevocable effect `{name}`"),
            ));
        }
        // R2 — unambiguous acquisitions only.
        if prev_dot && next_open {
            if LOCK_METHODS.contains(&name) {
                out.push(finding(
                    Rule::NestedLock,
                    f.span,
                    format!("lock acquisition `.{name}(..)`"),
                ));
            } else if CRITICAL_METHODS.contains(&name) || name == "tx" {
                out.push(finding(
                    Rule::NestedLock,
                    f.span,
                    format!("atomic-section entry `.{name}(..)`"),
                ));
            }
        }
        // R5 — OS blocking primitives.
        if name == "Condvar"
            || (PARK_CALLS.contains(&name) && next_open)
            || (prev_dot && CONDVAR_METHODS.contains(&name) && next_open)
        {
            out.push(finding(
                Rule::CondvarMisuse,
                f.span,
                format!("OS blocking primitive `{name}`"),
            ));
        }
        // R6 — suspension points.
        if (name == "await" && prev_dot) || (name == "block_on" && next_open) {
            out.push(finding(
                Rule::AsyncInAtomic,
                f.span,
                format!("suspension point `{name}`"),
            ));
        }
    }
    out
}

/// Does the argument group opening at `open_idx` contain one of `names` at
/// any depth?
fn args_contain(flat: &[Flat], open_idx: usize, names: &[&str]) -> bool {
    let Some(open) = flat.get(open_idx) else {
        return false;
    };
    if !matches!(open.kind, TokKind::Open(_)) {
        return false;
    }
    let mut depth = 0i32;
    for f in &flat[open_idx..] {
        match f.kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokKind::Ident(ref s) if names.contains(&s.as_str()) => return true,
            _ => {}
        }
    }
    false
}

/// Is the group opening at `open_idx` an empty `()`?
fn empty_args(flat: &[Flat], open_idx: usize) -> bool {
    matches!(
        flat.get(open_idx).map(|f| &f.kind),
        Some(TokKind::Open(Delim::Paren))
    ) && matches!(
        flat.get(open_idx + 1).map(|f| &f.kind),
        Some(TokKind::Close(Delim::Paren))
    )
}
