//! Workspace orchestration: parse every file, run the local per-block
//! rules, then the workspace-level analyses (call-graph rule propagation,
//! lock-order cycles, the atomics-ordering audit), and apply suppressions
//! last.
//!
//! The workspace model is what separates this engine from a per-file
//! linter: R7 and R8 findings *are* disagreements between files, and the
//! transitive R1/R2/R5/R6 pass needs every `fn` body in scope before it
//! can chase a call out of an atomic block. Single-file entry points
//! ([`lint_source`]) still work — they are a one-file workspace.

use crate::callgraph;
use crate::extract::{find_sites, flatten_trees, Site};
use crate::lexer::{lex, Comment, Span, Tok};
use crate::lockorder::{self, LockNames};
use crate::ordering;
use crate::rules::{scan_set_lock_no_quiesce, scan_site, Finding, Rule};
use crate::suppress::{apply, parse_directives};
use crate::symbols::SymbolTable;
use crate::tree::{parse, Tree};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Analysis result for one source file.
#[derive(Debug)]
pub struct FileReport {
    pub path: PathBuf,
    /// Violations that survived suppression (plus `A1 bad-allow` errors).
    pub findings: Vec<Finding>,
    /// Violations silenced by a reasoned `allow`, with the reason.
    pub suppressed: Vec<(Finding, String)>,
    /// `A2 stale-allow`: suppressions that matched nothing.
    pub stale: Vec<Finding>,
    /// Number of atomic blocks located.
    pub sites: usize,
}

/// Workspace-level statistics — what the cross-file layers actually saw.
/// The self-scan test pins floors on these so the analyses can't silently
/// go blind.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkspaceStats {
    /// `fn` items indexed into the symbol table.
    pub fns_indexed: usize,
    /// Call references out of atomic blocks that resolved to a definition.
    pub calls_resolved: usize,
    /// Distinct binding identifiers traced to an `ElidableMutex` name.
    pub lock_names: usize,
    /// Held-while-acquiring edges in the lock-order graph.
    pub lock_edges: usize,
    /// Atomic accesses (with explicit orderings) in the R8 pool.
    pub atomic_accesses: usize,
}

/// Aggregated analysis over many files.
#[derive(Debug, Default)]
pub struct Report {
    pub files: Vec<FileReport>,
    pub files_scanned: usize,
    pub stats: WorkspaceStats,
}

impl Report {
    pub fn total_findings(&self) -> usize {
        self.files.iter().map(|f| f.findings.len()).sum()
    }

    pub fn total_suppressed(&self) -> usize {
        self.files.iter().map(|f| f.suppressed.len()).sum()
    }

    pub fn total_stale(&self) -> usize {
        self.files.iter().map(|f| f.stale.len()).sum()
    }

    pub fn total_sites(&self) -> usize {
        self.files.iter().map(|f| f.sites).sum()
    }
}

/// Per-file parse state carried between the phases.
struct FileCtx {
    toks: Vec<Tok>,
    comments: Vec<Comment>,
    forest: Vec<Tree>,
    sites: Vec<Site>,
    parse_error: Option<Finding>,
}

fn parse_file(src: &str) -> FileCtx {
    let empty = |err| FileCtx {
        toks: Vec::new(),
        comments: Vec::new(),
        forest: Vec::new(),
        sites: Vec::new(),
        parse_error: Some(err),
    };
    let (toks, comments) = match lex(src) {
        Ok(v) => v,
        Err(e) => return empty(Finding::new(Rule::ParseError, e.span, e.msg)),
    };
    let forest = match parse(toks.clone()) {
        Ok(f) => f,
        Err(e) => return empty(Finding::new(Rule::ParseError, e.span, e.msg)),
    };
    let sites = find_sites(&forest);
    FileCtx {
        toks,
        comments,
        forest,
        sites,
        parse_error: None,
    }
}

/// The R8 grouping key for a file: atomics are compared within one crate
/// (`crates/<name>`), one example, one integration test, or the root
/// binary — never across those boundaries, because same-named fields in
/// different crates are different atomics.
fn crate_key(path: &Path) -> String {
    let comps: Vec<&str> = path
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    if let Some(i) = comps.iter().position(|c| *c == "crates") {
        if let Some(name) = comps.get(i + 1) {
            return (*name).to_owned();
        }
    }
    for root in ["examples", "tests"] {
        if let Some(i) = comps.iter().position(|c| *c == root) {
            if let Some(file) = comps.get(i + 1) {
                return format!("{root}:{}", file.trim_end_matches(".rs"));
            }
        }
    }
    if comps.contains(&"src") {
        return "bin".to_owned();
    }
    path.display().to_string()
}

/// Analyze a set of sources as one workspace.
pub fn lint_sources(inputs: Vec<(PathBuf, String)>) -> Report {
    let paths: Vec<PathBuf> = inputs.iter().map(|(p, _)| p.clone()).collect();
    let ctxs: Vec<FileCtx> = inputs.iter().map(|(_, src)| parse_file(src)).collect();

    // Workspace indexes: symbols for the call graph, lock names for R7,
    // the access pool for R8.
    let mut symbols = SymbolTable::default();
    let mut lock_names = LockNames::default();
    let mut accesses: Vec<(String, ordering::Access)> = Vec::new();
    for (i, ctx) in ctxs.iter().enumerate() {
        symbols.index_file(i, &ctx.forest);
        let flat = flatten_trees(&ctx.forest);
        lock_names.harvest(&flat);
        let key = crate_key(&paths[i]);
        for a in ordering::collect(&flat, i) {
            accesses.push((key.clone(), a));
        }
    }

    let mut stats = WorkspaceStats {
        fns_indexed: symbols.fns.len(),
        atomic_accesses: accesses.len(),
        lock_names: lock_names.known(),
        ..WorkspaceStats::default()
    };

    // Per-file pending findings: local rules plus the transitive pass.
    let mut pending: Vec<Vec<Finding>> = Vec::with_capacity(ctxs.len());
    let mut lock_edges: Vec<lockorder::Edge> = Vec::new();
    for (i, ctx) in ctxs.iter().enumerate() {
        let mut findings = Vec::new();
        if let Some(err) = &ctx.parse_error {
            pending.push(vec![err.clone()]);
            continue;
        }
        for site in &ctx.sites {
            findings.extend(scan_site(site));
            findings.extend(callgraph::propagate(
                &site.body,
                site.ctx.as_deref(),
                i,
                &symbols,
                &paths,
            ));
            stats.calls_resolved +=
                callgraph::resolved_edges(&site.body, site.ctx.as_deref(), i, &symbols);
            lock_edges.extend(lockorder::edges_for_site(site, i, &lock_names, &symbols));
        }
        findings.extend(scan_set_lock_no_quiesce(&ctx.toks, &ctx.sites));
        pending.push(findings);
    }
    stats.lock_edges = lock_edges.len();

    // Workspace verdicts route back to their anchor files.
    for (file, f) in lockorder::find_cycles(&lock_edges, &paths) {
        pending[file].push(f);
    }
    for (file, f) in ordering::audit(&accesses, &paths) {
        pending[file].push(f);
    }

    // Suppressions and ordering, per file.
    let mut report = Report {
        files: Vec::with_capacity(ctxs.len()),
        files_scanned: ctxs.len(),
        stats,
    };
    for ((path, ctx), mut findings) in paths.into_iter().zip(&ctxs).zip(pending) {
        // Nested sites are scanned both standalone and as part of the
        // enclosing body; dedup by position+rule.
        let mut seen: HashSet<(Rule, Span)> = HashSet::new();
        findings.retain(|f| seen.insert((f.rule, f.span)));
        findings.sort_by_key(|f| (f.span, f.rule));

        let (allows, mut bad) = parse_directives(&ctx.comments, &ctx.toks);
        let (mut active, suppressed, stale) = apply(findings, &allows);
        active.append(&mut bad);
        active.sort_by_key(|f| (f.span, f.rule));

        report.files.push(FileReport {
            path,
            findings: active,
            suppressed,
            stale,
            sites: ctx.sites.len(),
        });
    }
    report
}

/// Analyze one source text (a one-file workspace).
pub fn lint_source(path: impl Into<PathBuf>, src: &str) -> FileReport {
    let mut report = lint_sources(vec![(path.into(), src.to_owned())]);
    report.files.remove(0)
}

/// Directory names never descended into. `fixtures` holds the
/// seeded-violation corpus — it is linted by the fixture harness, where the
/// violations are the point, not by workspace scans that must come up
/// clean.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Collect `.rs` files under `roots` (files are accepted as-is),
/// deterministically ordered.
pub fn collect_rs_files(roots: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for root in roots {
        if root.is_file() {
            out.push(root.clone());
        } else {
            descend(root, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn descend(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                descend(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyze every `.rs` file under `roots` as one workspace.
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<Report> {
    let files = collect_rs_files(roots)?;
    let mut inputs = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        inputs.push((path, src));
    }
    Ok(lint_sources(inputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys_partition_the_workspace() {
        assert_eq!(crate_key(Path::new("crates/kernel/src/lib.rs")), "kernel");
        assert_eq!(
            crate_key(Path::new("/abs/repo/crates/base/src/x.rs")),
            "base"
        );
        assert_eq!(crate_key(Path::new("examples/queue.rs")), "examples:queue");
        assert_eq!(crate_key(Path::new("tests/smoke.rs")), "tests:smoke");
        assert_eq!(crate_key(Path::new("src/bin/tle-lint.rs")), "bin");
    }

    #[test]
    fn workspace_findings_cross_files() {
        let report = lint_sources(vec![
            (
                PathBuf::from("crates/demo/src/a.rs"),
                "fn publish(s: &S) { s.flag.store(true, Ordering::Release); }".into(),
            ),
            (
                PathBuf::from("crates/demo/src/b.rs"),
                "fn consume(s: &S) -> bool { s.flag.load(Ordering::Acquire) }\n\
                 fn peek(s: &S) -> bool { s.flag.load(Ordering::Relaxed) }"
                    .into(),
            ),
        ]);
        let flagged: Vec<_> = report
            .files
            .iter()
            .flat_map(|f| &f.findings)
            .filter(|f| f.rule == Rule::OrderingAudit)
            .collect();
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert_eq!(report.stats.atomic_accesses, 3);
    }

    #[test]
    fn transitive_findings_honor_suppressions() {
        let fr = lint_source(
            "t.rs",
            "fn log_it() { println!(\"x\"); }\n\
             fn f(th: &T, l: &L) {\n\
                 // tle-lint: allow(R1, \"test helper logs on purpose\")\n\
                 th.critical(l, |ctx| { log_it(); Ok(()) });\n\
             }",
        );
        assert!(fr.findings.is_empty(), "{:?}", fr.findings);
        assert_eq!(fr.suppressed.len(), 1);
        assert_eq!(fr.suppressed[0].1, "test helper logs on purpose");
    }

    #[test]
    fn parse_errors_still_reported_per_file() {
        let report = lint_sources(vec![
            (PathBuf::from("bad.rs"), "fn f() { (".into()),
            (PathBuf::from("good.rs"), "fn g() {}".into()),
        ]);
        assert_eq!(report.files[0].findings[0].rule, Rule::ParseError);
        assert!(report.files[1].findings.is_empty());
    }
}
