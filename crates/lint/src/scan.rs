//! File orchestration: lex → tree → sites → rules → suppressions, plus the
//! workspace walker.

use crate::extract::find_sites;
use crate::lexer::{lex, Span};
use crate::rules::{scan_set_lock_no_quiesce, scan_site, Finding, Rule};
use crate::suppress::{apply, parse_directives};
use crate::tree::parse;
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Analysis result for one source file.
#[derive(Debug)]
pub struct FileReport {
    pub path: PathBuf,
    /// Violations that survived suppression (plus `A1 bad-allow` errors).
    pub findings: Vec<Finding>,
    /// Violations silenced by a reasoned `allow`.
    pub suppressed: Vec<Finding>,
    /// `A2 stale-allow`: suppressions that matched nothing.
    pub stale: Vec<Finding>,
    /// Number of atomic blocks located.
    pub sites: usize,
}

/// Aggregated analysis over many files.
#[derive(Debug, Default)]
pub struct Report {
    pub files: Vec<FileReport>,
    pub files_scanned: usize,
}

impl Report {
    pub fn total_findings(&self) -> usize {
        self.files.iter().map(|f| f.findings.len()).sum()
    }

    pub fn total_suppressed(&self) -> usize {
        self.files.iter().map(|f| f.suppressed.len()).sum()
    }

    pub fn total_stale(&self) -> usize {
        self.files.iter().map(|f| f.stale.len()).sum()
    }

    pub fn total_sites(&self) -> usize {
        self.files.iter().map(|f| f.sites).sum()
    }
}

/// Analyze one source text.
pub fn lint_source(path: impl Into<PathBuf>, src: &str) -> FileReport {
    let path = path.into();
    let (toks, comments) = match lex(src) {
        Ok(v) => v,
        Err(e) => {
            return FileReport {
                path,
                findings: vec![Finding {
                    rule: Rule::ParseError,
                    span: e.span,
                    message: e.msg,
                }],
                suppressed: Vec::new(),
                stale: Vec::new(),
                sites: 0,
            }
        }
    };
    let forest = match parse(toks.clone()) {
        Ok(f) => f,
        Err(e) => {
            return FileReport {
                path,
                findings: vec![Finding {
                    rule: Rule::ParseError,
                    span: e.span,
                    message: e.msg,
                }],
                suppressed: Vec::new(),
                stale: Vec::new(),
                sites: 0,
            }
        }
    };
    let sites = find_sites(&forest);
    let mut findings: Vec<Finding> = sites.iter().flat_map(scan_site).collect();
    findings.extend(scan_set_lock_no_quiesce(&toks, &sites));

    // Nested sites are scanned both standalone and as part of the enclosing
    // body; dedup by position+rule.
    let mut seen: HashSet<(Rule, Span)> = HashSet::new();
    findings.retain(|f| seen.insert((f.rule, f.span)));
    findings.sort_by_key(|f| (f.span, f.rule));

    let (allows, mut bad) = parse_directives(&comments, &toks);
    let (mut active, suppressed, stale) = apply(findings, &allows);
    active.append(&mut bad);
    active.sort_by_key(|f| (f.span, f.rule));

    FileReport {
        path,
        findings: active,
        suppressed,
        stale,
        sites: sites.len(),
    }
}

/// Directory names never descended into. `fixtures` holds the
/// seeded-violation corpus — it is linted by the fixture harness, where the
/// violations are the point, not by workspace scans that must come up
/// clean.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Collect `.rs` files under `roots` (files are accepted as-is),
/// deterministically ordered.
pub fn collect_rs_files(roots: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for root in roots {
        if root.is_file() {
            out.push(root.clone());
        } else {
            descend(root, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn descend(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                descend(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyze every `.rs` file under `roots`.
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<Report> {
    let files = collect_rs_files(roots)?;
    let mut report = Report {
        files: Vec::new(),
        files_scanned: files.len(),
    };
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        report.files.push(lint_source(&path, &src));
    }
    Ok(report)
}
