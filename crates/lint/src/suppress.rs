//! Suppression directives: `// tle-lint: allow(<rule>, "<reason>")`.
//!
//! A directive written on its own line suppresses matching findings on the
//! *next* code line; written after code, it suppresses its own line. The
//! reason is mandatory — a suppression is a reviewed exception, and the
//! review has to be written down. Directives that are malformed, name an
//! unknown rule, or omit the reason are themselves findings (`A1
//! bad-allow`); valid directives that no longer match anything are stale
//! (`A2 stale-allow`, enforced under `--deny-stale`).

use crate::lexer::{Comment, Span, Tok};
use crate::rules::{Finding, Rule};

/// One parsed `allow(rule, "reason")` clause.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: Rule,
    pub reason: String,
    /// Span of the comment carrying the clause.
    pub span: Span,
    /// The code line this clause suppresses (None when the directive
    /// dangles at end of file).
    pub target: Option<u32>,
}

/// Parse every directive in `comments`. `toks` supplies code-line positions
/// for own-line directives. Returns the valid allows plus `A1` findings for
/// the malformed ones.
pub fn parse_directives(comments: &[Comment], toks: &[Tok]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        let text = c.text.trim_start();
        let Some(rest) = text.strip_prefix("tle-lint:") else {
            continue;
        };
        let target = if c.own_line {
            next_code_line(toks, c.span.line)
        } else {
            Some(c.span.line)
        };
        parse_clauses(rest, c.span, target, &mut allows, &mut errors);
    }
    (allows, errors)
}

/// The first code line strictly after `line`.
fn next_code_line(toks: &[Tok], line: u32) -> Option<u32> {
    toks.iter().map(|t| t.span.line).filter(|&l| l > line).min()
}

fn parse_clauses(
    rest: &str,
    span: Span,
    target: Option<u32>,
    allows: &mut Vec<Allow>,
    errors: &mut Vec<Finding>,
) {
    let mut s = rest.trim();
    if s.is_empty() {
        errors.push(bad(
            span,
            "empty tle-lint directive; expected allow(<rule>, \"<reason>\")",
        ));
        return;
    }
    while !s.is_empty() {
        let Some(after_kw) = s.strip_prefix("allow") else {
            errors.push(bad(
                span,
                &format!(
                    "unknown tle-lint directive `{}`; only allow(..) is supported",
                    s
                ),
            ));
            return;
        };
        let Some(after_paren) = after_kw.trim_start().strip_prefix('(') else {
            errors.push(bad(span, "allow directive missing `(`"));
            return;
        };
        let Some(close) = find_clause_end(after_paren) else {
            errors.push(bad(span, "allow directive missing closing `)`"));
            return;
        };
        let clause = &after_paren[..close];
        match parse_one(clause, span, target) {
            Ok(a) => allows.push(a),
            Err(e) => errors.push(e),
        }
        s = after_paren[close + 1..].trim();
    }
}

/// Index of the `)` closing the clause, respecting a quoted reason.
fn find_clause_end(s: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in s.char_indices() {
        match ch {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ')' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_one(clause: &str, span: Span, target: Option<u32>) -> Result<Allow, Finding> {
    let (rule_txt, reason_txt) = match clause.split_once(',') {
        Some((r, rest)) => (r.trim(), rest.trim()),
        None => (clause.trim(), ""),
    };
    let Some(rule) = Rule::parse_suppressible(rule_txt) else {
        return Err(bad(
            span,
            &format!(
                "unknown rule `{rule_txt}` in allow(..); expected R1-R8 or a rule slug \
                 like irrevocable-effect"
            ),
        ));
    };
    let reason = reason_txt
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(bad(
            span,
            &format!(
                "allow({}) requires a reason: tle-lint: allow({}, \"why this is safe\")",
                rule.id(),
                rule.id()
            ),
        ));
    }
    Ok(Allow {
        rule,
        reason: reason.to_owned(),
        span,
        target,
    })
}

fn bad(span: Span, msg: &str) -> Finding {
    Finding::new(Rule::BadAllow, span, msg)
}

/// Split `findings` into (active, suppressed-with-reason) and report stale
/// allows. The reason rides along so reports (and the SARIF
/// `suppressions[].justification` field) can show *why* a finding was
/// waved through.
pub fn apply(
    findings: Vec<Finding>,
    allows: &[Allow],
) -> (Vec<Finding>, Vec<(Finding, String)>, Vec<Finding>) {
    let mut used = vec![false; allows.len()];
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let slot = allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.rule == f.rule && a.target == Some(f.span.line));
        match slot {
            Some((i, a)) => {
                used[i] = true;
                suppressed.push((f, a.reason.clone()));
            }
            None => active.push(f),
        }
    }
    let stale = allows
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| {
            Finding::new(
                Rule::StaleAllow,
                a.span,
                format!(
                    "stale suppression: allow({}, \"{}\") matches no finding on line {}",
                    a.rule.id(),
                    a.reason,
                    a.target.map_or_else(|| "<eof>".into(), |l| l.to_string()),
                ),
            )
        })
        .collect();
    (active, suppressed, stale)
}
