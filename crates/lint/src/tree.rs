//! Brace/bracket/paren token trees over the flat token stream.
//!
//! The analyzer works structurally — "the argument group of this
//! `critical(...)` call", "the body of this closure" — so the only parsing
//! it needs is delimiter matching. Everything else stays a flat token
//! sequence inside its group.

use crate::lexer::{Delim, LexError, Span, Tok, TokKind};

/// A token or a delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    Leaf(Tok),
    Group(Group),
}

/// A delimited group: `( ... )`, `[ ... ]` or `{ ... }`.
#[derive(Debug, Clone)]
pub struct Group {
    pub delim: Delim,
    pub open: Span,
    pub close: Span,
    pub kids: Vec<Tree>,
}

impl Tree {
    /// The identifier text, if this tree is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) => t.ident(),
            Tree::Group(_) => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_punct(c))
    }

    /// The position of this tree's first character.
    pub fn span(&self) -> Span {
        match self {
            Tree::Leaf(t) => t.span,
            Tree::Group(g) => g.open,
        }
    }
}

/// Build the token forest, consuming the lexer output.
pub fn parse(toks: Vec<Tok>) -> Result<Vec<Tree>, LexError> {
    // Each stack entry is a partially built group; the bottom entry is the
    // top-level forest (delim/open unused there).
    struct Frame {
        delim: Delim,
        open: Span,
        kids: Vec<Tree>,
    }
    let mut stack: Vec<Frame> = vec![Frame {
        delim: Delim::Brace,
        open: Span { line: 0, col: 0 },
        kids: Vec::new(),
    }];
    for tok in toks {
        match tok.kind {
            TokKind::Open(d) => stack.push(Frame {
                delim: d,
                open: tok.span,
                kids: Vec::new(),
            }),
            TokKind::Close(d) => {
                let frame = stack.pop().ok_or(LexError {
                    span: tok.span,
                    msg: "unbalanced closing delimiter".into(),
                })?;
                if stack.is_empty() || frame.delim != d {
                    return Err(LexError {
                        span: tok.span,
                        msg: "mismatched closing delimiter".into(),
                    });
                }
                stack
                    .last_mut()
                    .expect("checked non-empty")
                    .kids
                    .push(Tree::Group(Group {
                        delim: frame.delim,
                        open: frame.open,
                        close: tok.span,
                        kids: frame.kids,
                    }));
            }
            _ => stack
                .last_mut()
                .expect("stack never empties before input ends")
                .kids
                .push(Tree::Leaf(tok)),
        }
    }
    if stack.len() != 1 {
        let open = stack.last().expect("len >= 1").open;
        return Err(LexError {
            span: open,
            msg: "unclosed delimiter".into(),
        });
    }
    Ok(stack.pop().expect("single frame").kids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn forest(src: &str) -> Vec<Tree> {
        parse(lex(src).unwrap().0).unwrap()
    }

    #[test]
    fn groups_nest() {
        let f = forest("fn main() { a(b[c]); }");
        // fn, main, (), {}
        assert_eq!(f.len(), 4);
        let Tree::Group(body) = &f[3] else {
            panic!("expected body group");
        };
        assert_eq!(body.delim, Delim::Brace);
        // a, (), ;
        assert_eq!(body.kids.len(), 3);
    }

    #[test]
    fn close_spans_recorded() {
        let f = forest("x(\n)");
        let Tree::Group(g) = &f[1] else {
            panic!("expected group");
        };
        assert_eq!(g.open.line, 1);
        assert_eq!(g.close.line, 2);
    }

    #[test]
    fn unbalanced_is_an_error() {
        assert!(parse(lex("a { b").unwrap().0).is_err());
        assert!(parse(lex("a } b").unwrap().0).is_err());
        assert!(parse(lex("a ( ] b").unwrap().0).is_err());
    }
}
