//! A minimal Rust lexer — just enough fidelity for transaction-safety
//! analysis.
//!
//! The analyzer does not need a full grammar: rules fire on token shapes
//! (`.lock(`, `println!`, `Condvar`), so the lexer's only hard obligations
//! are the ones that would otherwise *corrupt* the token stream — string
//! and raw-string literals (so `"println!"` inside a test never looks like
//! a macro call), char-vs-lifetime disambiguation, nested block comments,
//! and exact line:column spans for every token (findings must point at the
//! innermost offending token).
//!
//! Comments are not discarded: they are returned alongside the tokens
//! because the suppression layer ([`crate::suppress`]) reads lint
//! directives out of them.

use std::fmt;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Bracket family of a delimiter token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

/// What a token is. Multi-character operators are left as single-character
/// puncts (`::` is two `Punct(':')`s); rule patterns match short sequences,
/// which keeps the lexer trivial and the patterns explicit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers arrive without the `r#`).
    Ident(String),
    /// `'a`, `'static`, ...
    Lifetime,
    /// Any literal: numbers, strings, raw strings, chars, byte variants.
    /// Carries the raw source text (quotes included for strings) — the
    /// lock-order analysis reads `ElidableMutex::new("name")` keys out of
    /// it; rule matching still treats literals as opaque.
    Literal(String),
    /// A single punctuation character.
    Punct(char),
    Open(Delim),
    Close(Delim),
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub span: Span,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The inner text of a plain `"..."` string literal (no raw/byte
    /// forms, no escape processing — good enough for lock-name keys,
    /// which the builder API keeps simple).
    pub fn str_payload(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Literal(raw) => raw
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .filter(|r| !r.contains('\\')),
            _ => None,
        }
    }
}

/// A comment, kept for the suppression layer.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Interior text with the `//`, `///`, `//!` or `/* */` markers
    /// stripped (leading doc markers removed, not trimmed further).
    pub text: String,
    /// Position of the first delimiter character.
    pub span: Span,
    /// True when no code token precedes the comment on its line — an
    /// own-line comment suppresses the *next* code line, a trailing one its
    /// own line.
    pub own_line: bool,
}

/// A lexing failure (unterminated literal/comment, stray delimiter at tree
/// stage). The analyzer reports it as a finding rather than crashing.
#[derive(Debug)]
pub struct LexError {
    pub span: Span,
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.msg)
    }
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    /// The source text consumed since `start` (an earlier `self.i`).
    fn text_since(&self, start: usize) -> String {
        self.chars[start..self.i].iter().collect()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, returning code tokens and comments separately.
pub fn lex(src: &str) -> Result<(Vec<Tok>, Vec<Comment>), LexError> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    // Line of the most recent code token, to classify comments as
    // trailing vs own-line.
    let mut last_tok_line: u32 = 0;

    while let Some(c) = cur.peek(0) {
        let span = cur.span();
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let own_line = last_tok_line != span.line;
                cur.bump();
                cur.bump();
                // Strip one doc marker (`///` or `//!`) if present.
                if matches!(cur.peek(0), Some('/') | Some('!')) {
                    cur.bump();
                }
                let mut text = String::new();
                while let Some(ch) = cur.peek(0) {
                    if ch == '\n' {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                comments.push(Comment {
                    text,
                    span,
                    own_line,
                });
            }
            '/' if cur.peek(1) == Some('*') => {
                let own_line = last_tok_line != span.line;
                cur.bump();
                cur.bump();
                if matches!(cur.peek(0), Some('*') | Some('!')) && cur.peek(1) != Some('/') {
                    cur.bump();
                }
                let mut depth = 1u32;
                let mut text = String::new();
                loop {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push('/');
                            text.push('*');
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                            text.push('*');
                            text.push('/');
                        }
                        (Some(ch), _) => {
                            text.push(ch);
                            cur.bump();
                        }
                        (None, _) => {
                            return Err(LexError {
                                span,
                                msg: "unterminated block comment".into(),
                            })
                        }
                    }
                }
                comments.push(Comment {
                    text,
                    span,
                    own_line,
                });
            }
            // Raw strings / raw identifiers / byte strings share prefixes
            // with plain identifiers; disambiguate before the ident arm.
            'r' | 'b' if starts_raw_or_byte(&cur) => {
                let start = cur.i;
                let kind = match lex_raw_or_byte(&mut cur, span)? {
                    Some(raw_ident) => TokKind::Ident(raw_ident),
                    None => TokKind::Literal(cur.text_since(start)),
                };
                toks.push(Tok { kind, span });
                last_tok_line = span.line;
            }
            _ if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Ident(text),
                    span,
                });
                last_tok_line = span.line;
            }
            _ if c.is_ascii_digit() => {
                let start = cur.i;
                lex_number(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Literal(cur.text_since(start)),
                    span,
                });
                last_tok_line = span.line;
            }
            '"' => {
                let start = cur.i;
                lex_string(&mut cur, span)?;
                toks.push(Tok {
                    kind: TokKind::Literal(cur.text_since(start)),
                    span,
                });
                last_tok_line = span.line;
            }
            '\'' => {
                let start = cur.i;
                let kind = lex_quote(&mut cur, span, start)?;
                toks.push(Tok { kind, span });
                last_tok_line = span.line;
            }
            '(' | '[' | '{' | ')' | ']' | '}' => {
                cur.bump();
                let kind = match c {
                    '(' => TokKind::Open(Delim::Paren),
                    '[' => TokKind::Open(Delim::Bracket),
                    '{' => TokKind::Open(Delim::Brace),
                    ')' => TokKind::Close(Delim::Paren),
                    ']' => TokKind::Close(Delim::Bracket),
                    _ => TokKind::Close(Delim::Brace),
                };
                toks.push(Tok { kind, span });
                last_tok_line = span.line;
            }
            _ => {
                cur.bump();
                toks.push(Tok {
                    kind: TokKind::Punct(c),
                    span,
                });
                last_tok_line = span.line;
            }
        }
    }
    Ok((toks, comments))
}

/// Does the cursor sit on `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"` or
/// `br#"`? (Plain identifiers starting with r/b fall through to the ident
/// arm.)
fn starts_raw_or_byte(cur: &Cursor) -> bool {
    match (cur.peek(0), cur.peek(1)) {
        (Some('r'), Some('"')) | (Some('r'), Some('#')) => true,
        (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
        (Some('b'), Some('r')) => matches!(cur.peek(2), Some('"') | Some('#')),
        _ => false,
    }
}

/// Consume a raw string, byte literal or raw identifier. Returns
/// `Some(text)` when the construct was a raw identifier (`r#match`), else
/// `None` for literals.
fn lex_raw_or_byte(cur: &mut Cursor, span: Span) -> Result<Option<String>, LexError> {
    let first = cur.bump().expect("caller checked");
    if first == 'b' {
        match cur.peek(0) {
            Some('\'') => {
                // Byte char b'x'.
                cur.bump();
                lex_char_body(cur, span)?;
                return Ok(None);
            }
            Some('"') => {
                cur.bump();
                lex_string_body(cur, span)?;
                return Ok(None);
            }
            Some('r') => {
                cur.bump();
            }
            _ => unreachable!("caller checked byte-literal shape"),
        }
    }
    // Here: past `r` or `br`. Either a raw string (`#`* `"`) or a raw
    // identifier (`r#ident`).
    if first == 'r' && cur.peek(0) == Some('#') && cur.peek(1).is_some_and(is_ident_start) {
        cur.bump(); // the '#'
        let mut text = String::new();
        while let Some(ch) = cur.peek(0) {
            if !is_ident_continue(ch) {
                break;
            }
            text.push(ch);
            cur.bump();
        }
        return Ok(Some(text));
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        return Err(LexError {
            span,
            msg: "malformed raw literal".into(),
        });
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return Ok(None);
                }
            }
            Some(_) => {}
            None => {
                return Err(LexError {
                    span,
                    msg: "unterminated raw string".into(),
                })
            }
        }
    }
}

fn lex_string(cur: &mut Cursor, span: Span) -> Result<(), LexError> {
    cur.bump(); // opening quote
    lex_string_body(cur, span)
}

fn lex_string_body(cur: &mut Cursor, span: Span) -> Result<(), LexError> {
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump();
            }
            Some('"') => return Ok(()),
            Some(_) => {}
            None => {
                return Err(LexError {
                    span,
                    msg: "unterminated string literal".into(),
                })
            }
        }
    }
}

/// Past the opening `'`: either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor, span: Span, start: usize) -> Result<TokKind, LexError> {
    cur.bump(); // the '\''
    match (cur.peek(0), cur.peek(1)) {
        (Some('\\'), _) => {
            lex_char_body(cur, span)?;
            Ok(TokKind::Literal(cur.text_since(start)))
        }
        (Some(c0), Some('\'')) if c0 != '\'' => {
            // 'x' — single-char literal.
            cur.bump();
            cur.bump();
            Ok(TokKind::Literal(cur.text_since(start)))
        }
        (Some(c0), _) if is_ident_start(c0) => {
            // 'lifetime (no closing quote).
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            Ok(TokKind::Lifetime)
        }
        (Some(_), _) => {
            lex_char_body(cur, span)?;
            Ok(TokKind::Literal(cur.text_since(start)))
        }
        (None, _) => Err(LexError {
            span,
            msg: "unterminated char literal".into(),
        }),
    }
}

/// Past the opening quote of a (byte-)char literal: consume through the
/// closing `'`.
fn lex_char_body(cur: &mut Cursor, span: Span) -> Result<(), LexError> {
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump();
            }
            Some('\'') => return Ok(()),
            Some(_) => {}
            None => {
                return Err(LexError {
                    span,
                    msg: "unterminated char literal".into(),
                })
            }
        }
    }
}

fn lex_number(cur: &mut Cursor) {
    // Integer part plus any suffix: `0xFF`, `1_000u64`, `2e3`.
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    // Fractional part — but not a `..` range and not a method call `1.pow`.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let (toks, _) = lex(src).unwrap();
        toks.iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // The `println!` inside the string must not surface as an ident.
        assert_eq!(idents(r#"let x = "println!{}";"#), vec!["let", "x"]);
        assert_eq!(idents(r##"let y = r#"critical("a")"#;"##), vec!["let", "y"]);
        assert_eq!(idents(r#"let z = b"lock()";"#), vec!["let", "z"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").unwrap();
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let lits = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Literal(_)))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(lits, 2);
    }

    #[test]
    fn comments_are_collected_with_placement() {
        let src = "let a = 1; // trailing\n// own line\nlet b = 2;\n/* block */ let c = 3;";
        let (_, comments) = lex(src).unwrap();
        assert_eq!(comments.len(), 3);
        assert!(!comments[0].own_line);
        assert_eq!(comments[0].text, " trailing");
        assert!(comments[1].own_line);
        assert!(comments[2].own_line);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* a /* b */ c */ x").unwrap();
        assert_eq!(comments.len(), 1);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].ident(), Some("x"));
    }

    #[test]
    fn spans_are_one_based_and_exact() {
        let (toks, _) = lex("ab cd\n  ef").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 1, col: 4 });
        assert_eq!(toks[2].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let (toks, _) = lex("for i in 0..10 { }").unwrap();
        let puncts = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(puncts, 2);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let s = \"oops").is_err());
    }

    #[test]
    fn literals_carry_their_raw_text() {
        let (toks, _) = lex(r#"m("list-set", 42, 'x')"#).unwrap();
        let lits: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Literal(raw) => Some(raw.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["\"list-set\"", "42", "'x'"]);
        let payloads: Vec<_> = toks.iter().filter_map(|t| t.str_payload()).collect();
        assert_eq!(payloads, vec!["list-set"]);
    }

    #[test]
    fn str_payload_skips_escaped_and_non_plain_strings() {
        let (toks, _) = lex(r#"a("with \"escape\"") b(r"raw")"#).unwrap();
        // The escaped string and the raw string both decline to offer a
        // payload — lock names never need either form.
        assert!(toks.iter().all(|t| t.str_payload().is_none()));
    }
}
