//! R7 `lock-order`: static detection of lock-acquisition cycles.
//!
//! The x265 experience in the paper (§V) is the motivating bug: two code
//! paths took the same pair of locks in opposite orders, and the 2PL
//! fallback deadlocked where single-global-lock TLE had silently
//! serialized. The hazard is invisible to per-block rules — each block is
//! individually fine — so this analysis is workspace-level: it builds a
//! directed graph of "lock A is held while lock B is acquired" edges and
//! reports every edge that participates in a cycle.
//!
//! ## Lock identity
//!
//! Nodes are keyed by the *name string* passed to `ElidableMutex::new`
//! ("name1" in `ElidableMutex::new("name1")`), harvested from let
//! bindings, `Arc::new(..)` wrappers, struct-field initializers and
//! statics. A lock expression that can't be traced to a harvested name
//! keys as `?ident` (the last path segment of the expression) — distinct
//! unresolved idents stay distinct, which can only under-report cycles,
//! never invent them across unrelated locks that share no name.
//!
//! ## Edges
//!
//! While inside the body of an atomic block on lock A, an edge A → B is
//! recorded for: a nested `.critical*(&B, ..)` or `.tx(&B)..` block, a
//! bare `.lock()`/`.try_lock()`/`.raw_lock()` on B, and any of those
//! reached through resolvable calls (the [`crate::callgraph`] walk).
//! `.defer(..)` bodies run post-unlock and contribute nothing.
//! Self-edges are ignored: re-entrant acquisition is R2's diagnosis, and
//! a one-lock "cycle" is not an ordering bug.

use crate::callgraph::{calls_in, MAX_DEPTH};
use crate::extract::{Flat, Site, CRITICAL_METHODS};
use crate::lexer::{Delim, Span, TokKind};
use crate::rules::{Finding, Related, Rule};
use crate::symbols::SymbolTable;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

/// Binding-ident → lock-name table, harvested across the workspace.
/// `None` marks an ident bound to *different* lock names in different
/// places — ambiguous, so expressions through it key as unresolved.
#[derive(Debug, Default)]
pub struct LockNames {
    map: HashMap<String, Option<String>>,
}

/// Wrapper constructors that may sit between a binding and the
/// `ElidableMutex::new(..)` call.
const WRAPPERS: [&str; 3] = ["Arc", "Box", "Rc"];

impl LockNames {
    /// Harvest every `ElidableMutex::new("name")` in a flattened file and
    /// trace each back to its binding identifier.
    pub fn harvest(&mut self, flat: &[Flat]) {
        for (i, f) in flat.iter().enumerate() {
            if f.ident() != Some("ElidableMutex") {
                continue;
            }
            // Forward shape: `ElidableMutex :: new ( "name" ...`.
            let is_new = flat.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && flat.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && flat.get(i + 3).and_then(|t| t.ident()) == Some("new")
                && matches!(
                    flat.get(i + 4).map(|t| &t.kind),
                    Some(TokKind::Open(Delim::Paren))
                );
            if !is_new {
                continue;
            }
            let Some(name) = flat.get(i + 5).and_then(|t| t.str_payload()) else {
                continue;
            };
            if let Some(binding) = binding_before(flat, i) {
                match self.map.get(binding) {
                    Some(Some(prev)) if prev != name => {
                        self.map.insert(binding.to_owned(), None);
                    }
                    Some(_) => {}
                    None => {
                        self.map.insert(binding.to_owned(), Some(name.to_owned()));
                    }
                }
            }
        }
    }

    /// Number of binding identifiers traced to a lock name (ambiguous
    /// entries included — they were harvested, just unusable).
    pub fn known(&self) -> usize {
        self.map.len()
    }

    /// The graph key for a flattened lock expression (`&self.shard[i]`,
    /// `&queue_lock`, ...): the harvested name of the last top-level
    /// identifier, else `?ident`.
    pub fn key_for(&self, lock_expr: &[Flat]) -> Option<String> {
        let mut depth = 0usize;
        let mut last: Option<&str> = None;
        for f in lock_expr {
            match &f.kind {
                TokKind::Open(Delim::Bracket) | TokKind::Open(Delim::Paren) => depth += 1,
                TokKind::Close(Delim::Bracket) | TokKind::Close(Delim::Paren) => {
                    depth = depth.saturating_sub(1);
                }
                TokKind::Ident(id) if depth == 0 && id != "self" => last = Some(id),
                _ => {}
            }
        }
        let ident = last?;
        Some(match self.map.get(ident) {
            Some(Some(name)) => name.clone(),
            _ => format!("?{ident}"),
        })
    }
}

/// Walk backward from the `ElidableMutex` token to the identifier it is
/// being bound to: `let NAME = ..`, `let NAME: Ty = ..`,
/// `static NAME: Ty = ..`, `NAME: Arc::new(..)` field init.
fn binding_before(flat: &[Flat], idx: usize) -> Option<&str> {
    let window = idx.saturating_sub(16);
    for k in (window..idx).rev() {
        let f = &flat[k];
        if f.is_punct('=') {
            // `let`/`static` declaration: the binding is the ident right
            // after the keyword (skipping `mut`).
            for j in (window.saturating_sub(8)..k).rev() {
                if matches!(flat[j].ident(), Some("let") | Some("static")) {
                    return flat[j + 1..k]
                        .iter()
                        .find_map(|t| t.ident().filter(|&i| i != "mut"));
                }
            }
            return None;
        }
        // A single `:` (not `::`) is a struct-field initializer.
        if f.is_punct(':')
            && !flat.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && k > 0
            && !flat[k - 1].is_punct(':')
        {
            return flat[k - 1].ident();
        }
        // Wrapper-constructor tokens are transparent; anything else that
        // isn't part of the binding shape ends the search.
        let transparent = matches!(&f.kind, TokKind::Open(Delim::Paren))
            || f.is_punct(':')
            || f.ident()
                .is_some_and(|i| i == "new" || WRAPPERS.contains(&i));
        if !transparent {
            return None;
        }
    }
    None
}

/// One "outer lock held while inner lock acquired" edge.
#[derive(Debug)]
pub struct Edge {
    pub from: String,
    pub to: String,
    /// File of the outer atomic block — the finding anchors here.
    pub file: usize,
    /// Anchor span: the inner acquisition for direct nesting, the
    /// originating call token for edges through the call graph.
    pub span: Span,
    /// Span of the outer block's method token.
    pub site_span: Span,
    /// Extra locations: the actual inner acquisition when it lives in a
    /// callee body.
    pub inner: Option<(usize, Span, String)>,
}

/// Inner lock acquisitions in a flat body: `(key, span)` pairs.
fn acquisitions_in(flat: &[Flat], names: &LockNames) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    for (i, f) in flat.iter().enumerate() {
        if f.in_defer {
            continue;
        }
        let Some(m) = f.ident() else { continue };
        let prev_dot = i > 0 && flat[i - 1].is_punct('.');
        let next_open = matches!(
            flat.get(i + 1).map(|n| &n.kind),
            Some(TokKind::Open(Delim::Paren))
        );
        if !prev_dot || !next_open {
            continue;
        }
        if CRITICAL_METHODS.contains(&m) || m == "tx" {
            // Key is the first argument: tokens after the open paren up to
            // the matching close or a top-level comma.
            let mut depth = 0usize;
            let mut arg = Vec::new();
            for t in &flat[i + 2..] {
                match &t.kind {
                    TokKind::Open(_) => depth += 1,
                    TokKind::Close(_) if depth == 0 => break,
                    TokKind::Close(_) => depth -= 1,
                    TokKind::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                arg.push(t.clone());
            }
            if let Some(key) = names.key_for(&arg) {
                out.push((key, f.span));
            }
        } else if matches!(m, "lock" | "try_lock" | "raw_lock") {
            // Receiver: the ident before the dot, skipping one trailing
            // index group (`self.shard[i].lock()`).
            let mut r = i - 1; // at '.'
            if r > 0 && matches!(flat[r - 1].kind, TokKind::Close(Delim::Bracket)) {
                let mut depth = 0usize;
                while r > 0 {
                    r -= 1;
                    match &flat[r].kind {
                        TokKind::Close(Delim::Bracket) => depth += 1,
                        TokKind::Open(Delim::Bracket) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
            if let Some(recv) = r.checked_sub(1).and_then(|p| flat[p].ident()) {
                if recv != "self" {
                    if let Some(key) = names.key_for(&[flat[r - 1].clone()]) {
                        out.push((key, f.span));
                    }
                }
            }
        }
    }
    out
}

/// All edges out of one atomic block: direct nested acquisitions plus
/// acquisitions in reachable callee bodies.
pub fn edges_for_site(
    site: &Site,
    file: usize,
    names: &LockNames,
    symbols: &SymbolTable,
) -> Vec<Edge> {
    let Some(from) = names.key_for(&site.lock) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (to, span) in acquisitions_in(&site.body, names) {
        if to != from {
            out.push(Edge {
                from: from.clone(),
                to,
                file,
                span,
                site_span: site.span,
                inner: None,
            });
        }
    }
    // Through the call graph: each resolvable call out of the body opens
    // its own bounded walk.
    for call in calls_in(&site.body, site.ctx.as_deref()) {
        let Some(fn_idx) = symbols.resolve(&call.name, file) else {
            continue;
        };
        let mut visited = HashSet::from([fn_idx]);
        let mut stack = vec![(fn_idx, 1usize)];
        while let Some((cur, depth)) = stack.pop() {
            let def = &symbols.fns[cur];
            for (to, span) in acquisitions_in(&def.body, names) {
                if to != from {
                    out.push(Edge {
                        from: from.clone(),
                        to,
                        file,
                        span: call.span,
                        site_span: site.span,
                        inner: Some((
                            def.file,
                            span,
                            format!("inner acquisition inside `{}`", def.name),
                        )),
                    });
                }
            }
            if depth >= MAX_DEPTH {
                continue;
            }
            for next in calls_in(&def.body, None) {
                if let Some(ni) = symbols.resolve(&next.name, def.file) {
                    if visited.insert(ni) {
                        stack.push((ni, depth + 1));
                    }
                }
            }
        }
    }
    out
}

/// Detect cycles in the acquisition graph and produce one R7 finding per
/// cycle-participating `(from, to)` pair, routed to the outer block's
/// file.
pub fn find_cycles(edges: &[Edge], paths: &[PathBuf]) -> Vec<(usize, Finding)> {
    // Build the key graph.
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut adj: Vec<Vec<usize>> = Vec::new();
    let node = |k: &str,
                names: &mut Vec<String>,
                index: &mut HashMap<String, usize>,
                adj: &mut Vec<Vec<usize>>| {
        *index.entry(k.to_owned()).or_insert_with(|| {
            names.push(k.to_owned());
            adj.push(Vec::new());
            names.len() - 1
        })
    };
    let mut pairs: HashSet<(usize, usize)> = HashSet::new();
    for e in edges {
        let a = node(&e.from, &mut names, &mut index, &mut adj);
        let b = node(&e.to, &mut names, &mut index, &mut adj);
        if pairs.insert((a, b)) {
            adj[a].push(b);
        }
    }

    let scc = tarjan(&adj);
    // Cycle-participating edge: both endpoints in the same SCC of size ≥ 2.
    let mut scc_size = vec![0usize; names.len()];
    for &c in &scc {
        scc_size[c] += 1;
    }
    let mut reported: HashSet<(usize, usize)> = HashSet::new();
    let mut out = Vec::new();
    for e in edges {
        let a = index[&e.from];
        let b = index[&e.to];
        if scc[a] != scc[b] || scc_size[scc[a]] < 2 || !reported.insert((a, b)) {
            continue;
        }
        let members: Vec<&str> = names
            .iter()
            .enumerate()
            .filter(|&(i, _)| scc[i] == scc[a])
            .map(|(_, n)| n.as_str())
            .collect();
        let mut f = Finding::new(
            Rule::LockOrder,
            e.span,
            format!(
                "lock `{}` is acquired while `{}` is held, and the opposite order is \
                 reachable elsewhere — static lock-order cycle among {{{}}}; under the 2PL \
                 fallback this is the x265 deadlock shape (single-lock elision hid it)",
                e.to,
                e.from,
                members.join(", "),
            ),
        );
        f.related.push(Related {
            path: paths[e.file].clone(),
            span: e.site_span,
            note: format!("outer block on `{}` entered here", e.from),
        });
        if let Some((file, span, note)) = &e.inner {
            f.related.push(Related {
                path: paths[*file].clone(),
                span: *span,
                note: note.clone(),
            });
        }
        out.push((e.file, f));
    }
    out
}

/// Tarjan strongly-connected components; returns the component id of each
/// node. Iterative to keep pathological inputs off the call stack.
fn tarjan(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // Explicit DFS frame: (node, next child position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, child)) = frames.last() {
            if child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(child) {
                frames.last_mut().expect("frame present").1 += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{find_sites, flatten_trees};
    use crate::lexer::lex;
    use crate::tree::parse;

    fn analyze(src: &str) -> Vec<(usize, Finding)> {
        let forest = parse(lex(src).unwrap().0).unwrap();
        let flat = flatten_trees(&forest);
        let mut names = LockNames::default();
        names.harvest(&flat);
        let mut symbols = SymbolTable::default();
        symbols.index_file(0, &forest);
        let edges: Vec<Edge> = find_sites(&forest)
            .iter()
            .flat_map(|s| edges_for_site(s, 0, &names, &symbols))
            .collect();
        find_cycles(&edges, &[PathBuf::from("t.rs")])
    }

    #[test]
    fn harvest_traces_bindings_through_all_shapes() {
        let src = "let queue_lock = ElidableMutex::new(\"queue\");\n\
                   let shared = Arc::new(ElidableMutex::new(\"shared\"));\n\
                   static GLOBAL: ElidableMutex<u64> = ElidableMutex::new(\"global\");\n\
                   fn mk() -> S { S { shard: ElidableMutex::new(\"shard0\") } }";
        let flat = flatten_trees(&parse(lex(src).unwrap().0).unwrap());
        let mut names = LockNames::default();
        names.harvest(&flat);
        let key = |expr: &str| {
            let f = flatten_trees(&parse(lex(expr).unwrap().0).unwrap());
            names.key_for(&f).unwrap()
        };
        assert_eq!(key("&queue_lock"), "queue");
        assert_eq!(key("&shared"), "shared");
        assert_eq!(key("&GLOBAL"), "global");
        assert_eq!(key("&self.shard[i]"), "shard0");
        assert_eq!(key("&mystery"), "?mystery");
    }

    #[test]
    fn opposite_order_blocks_form_a_reported_cycle() {
        let found = analyze(
            "let a = ElidableMutex::new(\"a\"); let b = ElidableMutex::new(\"b\");\n\
             fn f(th: &T) { th.critical(&a, |ctx| { th.critical(&b, |c2| { Ok(()) }) }); }\n\
             fn g(th: &T) { th.critical(&b, |ctx| { th.critical(&a, |c2| { Ok(()) }) }); }",
        );
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].1.message.contains("lock-order cycle"));
    }

    #[test]
    fn consistent_order_is_clean_and_self_nesting_is_not_a_cycle() {
        let found = analyze(
            "let a = ElidableMutex::new(\"a\"); let b = ElidableMutex::new(\"b\");\n\
             fn f(th: &T) { th.critical(&a, |ctx| { th.critical(&b, |c2| { Ok(()) }) }); }\n\
             fn g(th: &T) { th.critical(&a, |ctx| { th.critical(&a, |c2| { Ok(()) }) }); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn cycle_through_helper_function_is_found() {
        let found = analyze(
            "let a = ElidableMutex::new(\"a\"); let b = ElidableMutex::new(\"b\");\n\
             fn take_b(th: &T) { th.critical(&b, |c2| { Ok(()) }); }\n\
             fn f(th: &T) { th.critical(&a, |ctx| { take_b(th); Ok(()) }); }\n\
             fn g(th: &T) { th.tx(&b).run(|ctx| { th.tx(&a).run(|c2| { Ok(()) }) }); }",
        );
        assert_eq!(found.len(), 2, "{found:?}");
        let through_helper = found
            .iter()
            .find(|(_, f)| f.related.iter().any(|r| r.note.contains("take_b")))
            .expect("edge through helper carries its inner span");
        assert_eq!(through_helper.1.rule, Rule::LockOrder);
    }

    #[test]
    fn plain_lock_calls_key_into_the_graph() {
        let found = analyze(
            "let a = ElidableMutex::new(\"a\");\n\
             fn f(th: &T) { th.critical(&a, |ctx| { side.lock(); Ok(()) }); }\n\
             fn g(th: &T) { side.lock(); th.critical(&a, |c| { Ok(()) }); }",
        );
        // `side` alone nests under `a`; no opposite edge exists (the bare
        // `side.lock()` outside any block carries no held-lock context).
        assert!(found.is_empty(), "{found:?}");
        let found = analyze(
            "let a = ElidableMutex::new(\"a\"); let s2 = ElidableMutex::new(\"s2\");\n\
             fn f(th: &T) { th.critical(&a, |ctx| { s2.lock(); Ok(()) }); }\n\
             fn g(th: &T) { th.critical(&s2, |ctx| { th.critical(&a, |c| { Ok(()) }) }); }",
        );
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn three_lock_rotation_reports_every_edge() {
        let found = analyze(
            "let a = ElidableMutex::new(\"a\"); let b = ElidableMutex::new(\"b\"); \
             let c = ElidableMutex::new(\"c\");\n\
             fn f(th: &T) { th.critical(&a, |x| { th.critical(&b, |y| { Ok(()) }) }); }\n\
             fn g(th: &T) { th.critical(&b, |x| { th.critical(&c, |y| { Ok(()) }) }); }\n\
             fn h(th: &T) { th.critical(&c, |x| { th.critical(&a, |y| { Ok(()) }) }); }",
        );
        assert_eq!(found.len(), 3, "{found:?}");
    }
}
