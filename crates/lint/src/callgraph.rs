//! The intra-workspace call graph, and transitive rule propagation over
//! it.
//!
//! PR 5's engine inspected only the literal closure body of each atomic
//! block, so `critical(|| helper())` where `helper` does I/O, takes a
//! second lock, parks on an OS condvar or awaits passed clean. This layer
//! closes that hole: it resolves simple intra-crate calls out of each
//! block body, walks the reachable function bodies (bounded depth,
//! cycle-safe), and re-runs the reduced rule set
//! ([`crate::rules::scan_reachable_hazards`]) over every body it can
//! reach. Each finding reports the full call chain with spans at both
//! ends.
//!
//! ## Resolution rules (and their honest limits)
//!
//! Three call shapes resolve, all by name against the workspace
//! [`SymbolTable`]:
//!
//! 1. **Direct calls** `helper(..)` — same-file definition first, else a
//!    workspace-unique definition.
//! 2. **Path calls** `self::helper(..)`, `crate::mod::helper(..)` — the
//!    last segment resolves as above; paths headed by `std`/`core`/
//!    `alloc` are external and skipped (their hazards are already local
//!    rule shapes: `fs::`, `sleep(`, ...).
//! 3. **Method calls** `x.helper(..)` — only when the name has exactly
//!    one definition in the whole workspace and is not a common std
//!    method name (the analyzer has no type system; a unique local name
//!    is the strongest receiver-type evidence available). Calls on the
//!    block's ctx parameter are the sanctioned TM API and never edges.
//!
//! Anything else — trait dispatch, closures passed as values, macro
//! indirection, shadowed std names — stays unresolved. The miss direction
//! is false negatives, which is the right polarity for a linter that
//! gates CI.

use crate::extract::Flat;
use crate::lexer::{Delim, Span, TokKind};
use crate::rules::{scan_reachable_hazards, Finding, Related, Rule};
use crate::symbols::SymbolTable;
use std::collections::HashSet;
use std::path::PathBuf;

/// Maximum call-chain depth walked from an atomic block. Deep enough for
/// any real helper stack; bounds pathological (or adversarial) inputs.
pub const MAX_DEPTH: usize = 8;

/// Method names that never form call-graph edges: they are either the
/// hazard surface itself (flagged directly where they appear) or std
/// methods so common that a workspace-unique `fn` of the same name is
/// coincidence, not a receiver.
const METHOD_EDGE_DENYLIST: [&str; 36] = [
    // hazard / TM surface (flagged in place, not descended into)
    "critical",
    "critical_with",
    "critical_hinted",
    "run",
    "try_run",
    "run_async",
    "try_run_async",
    "tx",
    "lock",
    "try_lock",
    "raw_lock",
    "defer",
    "unsafe_op",
    "wait",
    "signal",
    "broadcast",
    // std-shadow names (no type system: unique-name evidence is too weak)
    "new",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "iter",
    "next",
    "read",
    "write",
    "load",
    "store",
    "swap",
    "take",
    "set",
    "send",
    "recv",
];

/// External path heads whose callees are never indexed.
const EXTERNAL_HEADS: [&str; 4] = ["std", "core", "alloc", "parking_lot"];

/// One call reference found in a flat body.
#[derive(Debug, Clone)]
pub struct CallRef {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// Span of the name token.
    pub span: Span,
    /// Position of the name token in the flat body (the R1 serialization
    /// cutoff needs token order, not just spans).
    pub idx: usize,
}

/// Every resolvable-shaped call in `flat`. `ctx` is the atomic block's
/// context parameter (calls on it are the TM API, not edges); pass `None`
/// for plain function bodies.
pub fn calls_in(flat: &[Flat], ctx: Option<&str>) -> Vec<CallRef> {
    let mut out = Vec::new();
    for (i, f) in flat.iter().enumerate() {
        if f.in_defer {
            continue;
        }
        let Some(name) = f.ident() else { continue };
        let next_open = matches!(
            flat.get(i + 1).map(|n| &n.kind),
            Some(TokKind::Open(Delim::Paren))
        );
        if !next_open {
            continue;
        }
        // `fn name(..)` is a definition, not a call.
        if i > 0 && flat[i - 1].ident() == Some("fn") {
            continue;
        }
        let prev_dot = i > 0 && flat[i - 1].is_punct('.');
        let prev_path = i >= 2 && flat[i - 1].is_punct(':') && flat[i - 2].is_punct(':');
        if prev_dot {
            // Method call: receiver must not be the ctx parameter, and the
            // name must not be denylisted. (Uniqueness is enforced at
            // resolution time.)
            if METHOD_EDGE_DENYLIST.contains(&name) {
                continue;
            }
            let receiver = i.checked_sub(2).and_then(|r| flat[r].ident());
            if ctx.is_some() && receiver == ctx {
                continue;
            }
        } else if prev_path {
            // Path call: skip externals by walking to the head segment.
            if path_head(flat, i).is_some_and(|h| EXTERNAL_HEADS.contains(&h)) {
                continue;
            }
        }
        out.push(CallRef {
            name: name.to_owned(),
            span: f.span,
            idx: i,
        });
    }
    out
}

/// The first segment of the `a::b::name` path ending at `idx`.
fn path_head(flat: &[Flat], idx: usize) -> Option<&str> {
    let mut seg = idx;
    while seg >= 2 && flat[seg - 1].is_punct(':') && flat[seg - 2].is_punct(':') {
        // Generic turbofish (`Vec::<u8>::new`) and `<T as Trait>::` shapes
        // don't occur with the simple heads we care about; stop at the
        // first non-ident.
        match seg.checked_sub(3).and_then(|p| flat[p].ident()) {
            Some(_) => seg -= 3,
            None => break,
        }
    }
    flat[seg].ident()
}

/// A hazard reached through one or more calls: the finding anchors at the
/// *first* call token inside the atomic block, and the related spans walk
/// the chain to the hazard token.
pub fn propagate(
    site_body: &[Flat],
    ctx: Option<&str>,
    from_file: usize,
    symbols: &SymbolTable,
    paths: &[PathBuf],
) -> Vec<Finding> {
    // R1 serialization: calls after a `.unsafe_op()` in the block body run
    // serial-irrevocably, so irrevocable effects below them are sanctioned.
    let first_unsafe_op = site_body.iter().enumerate().position(|(i, f)| {
        f.ident() == Some("unsafe_op") && i > 0 && site_body[i - 1].is_punct('.') && !f.in_defer
    });

    let mut out = Vec::new();
    let mut reported: HashSet<(Rule, Span, Span)> = HashSet::new();
    for call in calls_in(site_body, ctx) {
        let Some(fn_idx) = symbols.resolve(&call.name, from_file) else {
            continue;
        };
        let serialized = first_unsafe_op.is_some_and(|u| call.idx > u);
        // Depth-first walk with an explicit chain; cycle-safe via the
        // visited set (per origin call, so sibling calls each get their
        // own full chain).
        let mut visited: HashSet<usize> = HashSet::new();
        let mut stack = vec![(fn_idx, vec![(call.name.clone(), call.span, from_file)])];
        visited.insert(fn_idx);
        while let Some((cur, chain)) = stack.pop() {
            let def = &symbols.fns[cur];
            for hazard in scan_reachable_hazards(&def.body) {
                if serialized && hazard.rule == Rule::IrrevocableEffect {
                    continue;
                }
                if !reported.insert((hazard.rule, call.span, hazard.span)) {
                    continue;
                }
                let chain_txt: Vec<&str> = chain.iter().map(|(n, _, _)| n.as_str()).collect();
                let mut f = Finding::new(
                    hazard.rule,
                    call.span,
                    format!(
                        "{} reached through the call chain `block -> {}`: {} (R{} applies \
                         transitively; the closure body alone looks clean)",
                        hazard.message,
                        chain_txt.join(" -> "),
                        hazard.rule.hazard(),
                        rule_number(hazard.rule),
                    ),
                );
                f.related.push(Related {
                    path: paths[def.file].clone(),
                    span: hazard.span,
                    note: format!("{} inside `{}`", hazard.message, def.name),
                });
                for (name, span, file) in chain.iter().skip(1) {
                    f.related.push(Related {
                        path: paths[*file].clone(),
                        span: *span,
                        note: format!("via call to `{name}`"),
                    });
                }
                out.push(f);
            }
            if chain.len() >= MAX_DEPTH {
                continue;
            }
            for next in calls_in(&def.body, None) {
                if let Some(next_idx) = symbols.resolve(&next.name, def.file) {
                    if visited.insert(next_idx) {
                        let mut chain = chain.clone();
                        chain.push((next.name.clone(), next.span, def.file));
                        stack.push((next_idx, chain));
                    }
                }
            }
        }
    }
    out
}

fn rule_number(rule: Rule) -> u32 {
    match rule {
        Rule::IrrevocableEffect => 1,
        Rule::NestedLock => 2,
        Rule::EscapeHazard => 3,
        Rule::NoQuiescePrivatization => 4,
        Rule::CondvarMisuse => 5,
        Rule::AsyncInAtomic => 6,
        Rule::LockOrder => 7,
        Rule::OrderingAudit => 8,
        _ => 0,
    }
}

/// Count of resolvable call edges out of `flat` — workspace statistics for
/// the self-scan report.
pub fn resolved_edges(
    flat: &[Flat],
    ctx: Option<&str>,
    file: usize,
    symbols: &SymbolTable,
) -> usize {
    calls_in(flat, ctx)
        .iter()
        .filter(|c| symbols.resolve(&c.name, file).is_some())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::find_sites;
    use crate::lexer::lex;
    use crate::tree::parse;

    fn setup(src: &str) -> (SymbolTable, Vec<crate::extract::Site>) {
        let forest = parse(lex(src).unwrap().0).unwrap();
        let mut t = SymbolTable::default();
        t.index_file(0, &forest);
        (t, find_sites(&forest))
    }

    fn run(src: &str) -> Vec<Finding> {
        let (t, sites) = setup(src);
        let paths = vec![PathBuf::from("t.rs")];
        sites
            .iter()
            .flat_map(|s| propagate(&s.body, s.ctx.as_deref(), 0, &t, &paths))
            .collect()
    }

    #[test]
    fn hazard_through_one_helper_is_found_with_chain() {
        let found = run("fn log_it(v: u64) { println!(\"{v}\"); }\n\
             fn f(th: &T, l: &L) { th.critical(l, |ctx| { log_it(1); Ok(()) }); }");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::IrrevocableEffect);
        assert!(found[0].message.contains("block -> log_it"));
        // Anchored at the call inside the block; hazard span at the far end.
        assert_eq!(found[0].span.line, 2);
        assert_eq!(found[0].related[0].span.line, 1);
    }

    #[test]
    fn two_hop_chain_and_cycle_safety() {
        let found = run("fn a() { b(); }\n\
             fn b() { a(); std::thread::sleep(d); }\n\
             fn f(th: &T, l: &L) { th.critical(l, |ctx| { a(); Ok(()) }); }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("block -> a -> b"));
    }

    #[test]
    fn ctx_calls_and_defer_args_are_not_edges() {
        let found = run("fn helper() { println!(\"x\"); }\n\
             fn f(th: &T, l: &L) { th.critical(l, |ctx| { \
             ctx.defer(move || helper()); ctx.write(&c, 1) }); }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unsafe_op_serializes_later_transitive_r1() {
        let found = run("fn helper() { println!(\"x\"); }\n\
             fn f(th: &T, l: &L) { th.critical(l, |ctx| { \
             ctx.unsafe_op()?; helper(); Ok(()) }); }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn transitive_nested_lock_is_found() {
        let found = run("fn push_side(s: &S) { s.side.lock().push(1); }\n\
             fn f(th: &T, l: &L) { th.critical(l, |ctx| { push_side(s); Ok(()) }); }");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::NestedLock);
    }

    #[test]
    fn ambiguous_method_names_do_not_resolve() {
        let found = run("fn process(x: u32) { println!(\"{x}\"); }\n\
             fn g() { fn process(y: u32) { y; } }\n\
             fn f(th: &T, l: &L) { th.critical(l, |ctx| { q.process(1); Ok(()) }); }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unique_method_name_resolves() {
        let found = run(
            "fn flush_row(r: &R) { r.file.write_all(b\"x\"); std::thread::sleep(d); }\n\
             fn f(th: &T, l: &L) { th.critical(l, |ctx| { row.flush_row(); Ok(()) }); }",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::IrrevocableEffect);
    }

    #[test]
    fn std_paths_and_denylisted_methods_are_skipped() {
        let (t, _) = setup("fn get() { println!(\"shadow\"); }");
        let flat_src = "fn f(th: &T, l: &L) { th.critical(l, |ctx| { \
                        m.get(1); std::mem::drop(x); Ok(()) }); }";
        let forest = parse(lex(flat_src).unwrap().0).unwrap();
        let sites = find_sites(&forest);
        let paths = vec![PathBuf::from("a.rs"), PathBuf::from("b.rs")];
        let found = propagate(&sites[0].body, sites[0].ctx.as_deref(), 1, &t, &paths);
        assert!(found.is_empty(), "{found:?}");
    }
}
