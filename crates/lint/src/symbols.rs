//! The workspace symbol table: every `fn` item in every scanned file,
//! indexed by name.
//!
//! The table is deliberately simple — the analyzer has no type system, so
//! a "symbol" is a function name plus its flattened body tokens. That is
//! enough for the call-graph layer ([`crate::callgraph`]) to resolve the
//! three call shapes the workspace actually uses (direct name, `self::`/
//! crate-path tails, and method calls with workspace-unique names) and to
//! re-run the transitive rules over reachable bodies.
//!
//! Recognition is shape-based: an `fn` keyword, the following identifier,
//! then the first brace group at the same nesting level before any `;`
//! (trait *declarations* end in `;` and are skipped). Nested functions,
//! methods in `impl`/`trait` blocks, and functions inside `mod` or macro
//! bodies are all found because the walk descends into every group.

use crate::extract::{flatten_trees, Flat};
use crate::lexer::{Delim, Span};
use crate::tree::{Group, Tree};
use std::collections::HashMap;

/// One indexed function item.
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Index of the defining file in the workspace file list.
    pub file: usize,
    /// Span of the name token.
    pub span: Span,
    /// The flattened body (with `.defer(..)` ranges marked).
    pub body: Vec<Flat>,
}

/// All function items across the workspace, with a name index.
#[derive(Debug, Default)]
pub struct SymbolTable {
    pub fns: Vec<FnDef>,
    by_name: HashMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Index every `fn` item in `forest` (file `file_idx`), appending to
    /// the table.
    pub fn index_file(&mut self, file_idx: usize, forest: &[Tree]) {
        self.walk(file_idx, forest);
    }

    fn walk(&mut self, file_idx: usize, kids: &[Tree]) {
        for (i, t) in kids.iter().enumerate() {
            if t.ident() == Some("fn") {
                if let Some(name_tree) = kids.get(i + 1) {
                    if let Some(name) = name_tree.ident() {
                        if let Some(body) = fn_body(&kids[i + 2..]) {
                            let idx = self.fns.len();
                            self.fns.push(FnDef {
                                name: name.to_owned(),
                                file: file_idx,
                                span: name_tree.span(),
                                body: flatten_trees(&body.kids),
                            });
                            self.by_name.entry(name.to_owned()).or_default().push(idx);
                        }
                    }
                }
            }
            if let Tree::Group(g) = t {
                self.walk(file_idx, &g.kids);
            }
        }
    }

    /// All definitions of `name`, in file order.
    pub fn lookup(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Resolve a call to `name` seen in `from_file`: a same-file
    /// definition wins when it is the *only* one in that file; otherwise
    /// the definition must be unique across the workspace (ambiguous
    /// names stay unresolved — a documented limit, not an error).
    pub fn resolve(&self, name: &str, from_file: usize) -> Option<usize> {
        let candidates = self.lookup(name);
        let mut local = candidates
            .iter()
            .filter(|&&i| self.fns[i].file == from_file);
        if let Some(&first) = local.next() {
            return local.next().is_none().then_some(first);
        }
        match candidates {
            [only] => Some(*only),
            _ => None,
        }
    }
}

/// The body group of a `fn` item whose tokens follow `rest` (cursor just
/// past the name): the first brace group at this level, unless a `;` comes
/// first (a trait/extern declaration).
fn fn_body(rest: &[Tree]) -> Option<&Group> {
    for t in rest {
        match t {
            Tree::Group(g) if g.delim == Delim::Brace => return Some(g),
            Tree::Leaf(tok) if tok.is_punct(';') => return None,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::parse;

    fn table(src: &str) -> SymbolTable {
        let mut t = SymbolTable::default();
        t.index_file(0, &parse(lex(src).unwrap().0).unwrap());
        t
    }

    #[test]
    fn indexes_free_fns_methods_and_nested_fns() {
        let t = table(
            "fn top() { fn inner() {} }\n\
             impl Widget { pub fn method(&self) -> u32 { 1 } }\n\
             trait T { fn declared(&self); fn defaulted(&self) {} }\n\
             mod m { fn in_mod() {} }",
        );
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["top", "inner", "method", "defaulted", "in_mod"]);
        // `declared` has no body and is not indexed.
        assert!(t.lookup("declared").is_empty());
    }

    #[test]
    fn bodies_are_flattened_with_defer_marks() {
        let t = table("fn f(ctx: &C) { ctx.defer(move || println!(\"x\")); other(); }");
        let body = &t.fns[t.lookup("f")[0]].body;
        let println_tok = body.iter().find(|f| f.ident() == Some("println")).unwrap();
        assert!(println_tok.in_defer);
        let other = body.iter().find(|f| f.ident() == Some("other")).unwrap();
        assert!(!other.in_defer);
    }

    #[test]
    fn resolve_prefers_same_file_then_unique() {
        let mut t = SymbolTable::default();
        t.index_file(
            0,
            &parse(lex("fn helper() {} fn only_here() {}").unwrap().0).unwrap(),
        );
        t.index_file(1, &parse(lex("fn helper() {}").unwrap().0).unwrap());
        // Same-file wins.
        assert_eq!(t.resolve("helper", 0), Some(0));
        assert_eq!(t.resolve("helper", 1), Some(2));
        // Unique across workspace resolves from anywhere.
        assert_eq!(t.resolve("only_here", 1), Some(1));
        // Ambiguous from a third file stays unresolved.
        assert_eq!(t.resolve("helper", 2), None);
        assert_eq!(t.resolve("nope", 0), None);
    }

    #[test]
    fn generics_and_return_types_do_not_confuse_body_detection() {
        let t = table("fn g<T: Fn() -> [u8; 4]>(x: T) -> impl Iterator<Item = u8> { x() }");
        assert_eq!(t.fns.len(), 1);
        assert!(t.fns[0].body.iter().any(|f| f.ident() == Some("x")));
    }
}
