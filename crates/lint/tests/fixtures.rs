//! Fixture-corpus harness: every seeded violation is caught by exactly its
//! rule, negatives come up clean, and spans land on the innermost
//! offending token.
//!
//! Expectation grammar, in the fixture sources themselves:
//!
//! ```text
//! println!("x"); //~ R1             finding of rule R1 on this line
//! $side.lock();  //~ R2 @31         ... and its column is exactly 31
//! inner_take();  //~ R2,R7          two rules fire on this line
//! flag.load(Relaxed); //~ R8 suppressed   finding exists but is silenced
//!                                         by a reasoned allow directive
//! ```
//!
//! Files without any `//~` marker are negative fixtures and must produce
//! zero findings. A file named `r<n>_neg_*` counts as rule R<n>'s negative
//! when it carries no R<n> markers — it may still be a positive for
//! *other* rules (R7 demonstrations necessarily contain R2-shaped nested
//! acquisitions, for example).

use std::path::PathBuf;
use tle_lint::{lint_source, Rule, LINT_RULES};

struct Marker {
    rule: &'static str,
    line: u32,
    col: Option<u32>,
    suppressed: bool,
}

fn parse_markers(src: &str) -> Vec<Marker> {
    let mut out = Vec::new();
    for (i, text) in src.lines().enumerate() {
        let Some(pos) = text.find("//~") else {
            continue;
        };
        let mut words = text[pos + 3..].split_whitespace();
        let ids = words.next().expect("//~ marker names a rule");
        let mut col = None;
        let mut suppressed = false;
        for w in words {
            if w == "suppressed" {
                suppressed = true;
            } else if let Some(c) = w.strip_prefix('@').and_then(|c| c.parse().ok()) {
                col = Some(c);
            } else {
                panic!("bad marker word `{w}` on line {}", i + 1);
            }
        }
        for id in ids.split(',') {
            let rule = LINT_RULES
                .iter()
                .map(|r| r.id())
                .find(|r| *r == id)
                .unwrap_or_else(|| panic!("unknown rule `{id}` in marker on line {}", i + 1));
            out.push(Marker {
                rule,
                line: i as u32 + 1,
                col,
                suppressed,
            });
        }
    }
    out
}

fn fixture_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "fixture corpus is missing");
    files
}

/// Positives: every finding matches a marker (same rule, same line) and
/// every marker is hit; where a marker pins a column, some finding of that
/// rule sits exactly there. `suppressed` markers must land in the
/// suppressed list instead. Negatives (no markers): zero findings.
#[test]
fn corpus_findings_match_expectations_exactly() {
    for path in fixture_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let markers = parse_markers(&src);
        let report = lint_source(&path, &src);
        assert!(
            report.stale.is_empty(),
            "{}: fixtures must not carry stale suppressions: {:?}",
            path.display(),
            report.stale
        );
        if markers.is_empty() {
            assert!(
                report.findings.is_empty() && report.suppressed.is_empty(),
                "{}: negative fixture produced findings: {:?} {:?}",
                path.display(),
                report.findings,
                report.suppressed
            );
            continue;
        }
        for f in &report.findings {
            assert!(
                markers
                    .iter()
                    .any(|m| !m.suppressed && m.rule == f.rule.id() && m.line == f.span.line),
                "{}: unexpected finding {} {} at {}",
                path.display(),
                f.rule.id(),
                f.message,
                f.span
            );
        }
        for (f, reason) in &report.suppressed {
            assert!(
                markers
                    .iter()
                    .any(|m| m.suppressed && m.rule == f.rule.id() && m.line == f.span.line),
                "{}: unmarked suppression {} at {} (reason: {reason})",
                path.display(),
                f.rule.id(),
                f.span
            );
        }
        for m in &markers {
            let hits: Vec<_> = if m.suppressed {
                report
                    .suppressed
                    .iter()
                    .map(|(f, _)| f)
                    .filter(|f| f.rule.id() == m.rule && f.span.line == m.line)
                    .collect()
            } else {
                report
                    .findings
                    .iter()
                    .filter(|f| f.rule.id() == m.rule && f.span.line == m.line)
                    .collect()
            };
            assert!(
                !hits.is_empty(),
                "{}: marker {} on line {} was not caught",
                path.display(),
                m.rule,
                m.line
            );
            if let Some(col) = m.col {
                assert!(
                    hits.iter().any(|f| f.span.col == col),
                    "{}: {} on line {} expected at column {col}, got {:?}",
                    path.display(),
                    m.rule,
                    m.line,
                    hits.iter().map(|f| f.span.col).collect::<Vec<_>>()
                );
            }
        }
    }
}

/// The corpus demonstrates every rule: at least two positive files and at
/// least one negative file per rule.
#[test]
fn corpus_covers_every_rule() {
    let mut positives = vec![0usize; LINT_RULES.len()];
    let mut negatives = vec![0usize; LINT_RULES.len()];
    for path in fixture_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let markers = parse_markers(&src);
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        for (i, rule) in LINT_RULES.iter().enumerate() {
            let has_rule = markers.iter().any(|m| m.rule == rule.id());
            if has_rule {
                positives[i] += 1;
            }
            let prefix = format!("r{}_neg", i + 1);
            if name.starts_with(&prefix) && !has_rule {
                negatives[i] += 1;
            }
        }
    }
    for (i, rule) in LINT_RULES.iter().enumerate() {
        assert!(
            positives[i] >= 2,
            "rule {} needs >= 2 positive fixtures, found {}",
            rule.id(),
            positives[i]
        );
        assert!(
            negatives[i] >= 1,
            "rule {} needs >= 1 negative fixture, found {}",
            rule.id(),
            negatives[i]
        );
    }
}

/// Span quality (macro bodies and multi-line closures) is pinned by the
/// `@<col>` markers — make sure those fixtures actually carry them.
#[test]
fn span_fixtures_pin_columns() {
    let mut pinned = 0;
    for path in fixture_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("span_") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let markers = parse_markers(&src);
        assert!(
            markers.iter().all(|m| m.col.is_some()),
            "{name}: span fixtures must pin columns"
        );
        pinned += markers.len();
    }
    assert!(pinned >= 3, "expected at least 3 column-pinned markers");
}

/// Transitive findings must explain themselves: any finding whose message
/// mentions a call chain carries at least one related span pointing at the
/// hazard's true location.
#[test]
fn transitive_findings_carry_related_spans() {
    let mut chained = 0;
    for path in fixture_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let report = lint_source(&path, &src);
        for f in &report.findings {
            if f.message.contains("call chain") {
                assert!(
                    !f.related.is_empty(),
                    "{}: chained finding without related spans: {}",
                    path.display(),
                    f.message
                );
                chained += 1;
            }
        }
    }
    assert!(chained >= 3, "expected >= 3 chained findings in the corpus");
}

/// A file the lexer rejects surfaces as a P1 parse-error finding, not a
/// silent skip.
#[test]
fn unparseable_source_is_reported() {
    let report = lint_source("broken.rs", "fn f() { let s = \"unterminated; }");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, Rule::ParseError);
}
