//! The self-scan gate: the whole workspace (crates/, examples/, src/,
//! tests/) must come up clean — every real finding fixed or carrying a
//! reviewed, reasoned suppression, and no suppression left stale. This is
//! the same scan CI runs via `tle-lint --deny --deny-stale`.

use std::path::PathBuf;
use tle_lint::lint_paths;

fn workspace_roots() -> Vec<PathBuf> {
    let ws = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    ["crates", "examples", "src", "tests"]
        .iter()
        .map(|d| ws.join(d))
        .filter(|p| p.exists())
        .collect()
}

#[test]
fn workspace_self_scan_is_clean() {
    let report = lint_paths(&workspace_roots()).expect("workspace readable");
    let mut complaints = String::new();
    for file in &report.files {
        for f in file.findings.iter().chain(&file.stale) {
            complaints.push_str(&format!(
                "\n  {}:{}: [{}] {}",
                file.path.display(),
                f.span,
                f.rule.id(),
                f.message
            ));
        }
    }
    assert!(
        complaints.is_empty(),
        "workspace self-scan must be clean:{complaints}"
    );
    // The scan actually saw the codebase: 133 files, 211 atomic blocks at
    // the time of writing (the lazy-subscription PR added the invalidate
    // explorer suite, the schedule-token property suite and this gate's
    // sibling) — use generous floors so growth never trips this.
    assert!(
        report.files_scanned >= 110,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.total_sites() >= 160,
        "suspiciously few atomic blocks found: {}",
        report.total_sites()
    );
    // The one deliberate hazard (the nested-section panic test) stays
    // suppressed-with-reason rather than deleted.
    assert!(
        report.total_suppressed() >= 1,
        "expected the documented nested-critical suppression to be live"
    );
}
