//! The self-scan gate: the whole workspace (crates/, examples/, src/,
//! tests/) must come up clean — every real finding fixed or carrying a
//! reviewed, reasoned suppression, and no suppression left stale. This is
//! the same scan CI runs via `tle-lint --deny --deny-stale`.

use std::path::PathBuf;
use tle_lint::lint_paths;

fn workspace_roots() -> Vec<PathBuf> {
    let ws = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    ["crates", "examples", "src", "tests"]
        .iter()
        .map(|d| ws.join(d))
        .filter(|p| p.exists())
        .collect()
}

#[test]
fn workspace_self_scan_is_clean() {
    let report = lint_paths(&workspace_roots()).expect("workspace readable");
    let mut complaints = String::new();
    for file in &report.files {
        for f in file.findings.iter().chain(&file.stale) {
            complaints.push_str(&format!(
                "\n  {}:{}: [{}] {}",
                file.path.display(),
                f.span,
                f.rule.id(),
                f.message
            ));
        }
    }
    assert!(
        complaints.is_empty(),
        "workspace self-scan must be clean:{complaints}"
    );
    // The scan actually saw the codebase: 142 files, 211 atomic blocks at
    // the time of writing (the workspace-engine PR added the call-graph,
    // lock-order and ordering-audit layers plus this suite's new fixtures)
    // — use generous floors so growth never trips this.
    assert!(
        report.files_scanned >= 130,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.total_sites() >= 180,
        "suspiciously few atomic blocks found: {}",
        report.total_sites()
    );
    // The deliberate hazards stay suppressed-with-reason rather than
    // deleted: the nested-critical panic test plus the three R8 triage
    // notes (trace ring, two STM undo captures).
    assert!(
        report.total_suppressed() >= 4,
        "expected the documented suppressions to be live, found {}",
        report.total_suppressed()
    );
    // The workspace layers really ran: the symbol table indexed the tree,
    // atomic blocks resolved calls, lock names were harvested, and the
    // ordering audit saw the kernel's atomics. Measured at the time of
    // writing: 2005 fns, 25 resolved calls, 13 lock names, 247 accesses.
    let stats = report.stats;
    assert!(
        stats.fns_indexed >= 1500,
        "suspiciously few fns indexed: {}",
        stats.fns_indexed
    );
    assert!(
        stats.calls_resolved >= 10,
        "suspiciously few calls resolved from atomic blocks: {}",
        stats.calls_resolved
    );
    assert!(
        stats.lock_names >= 8,
        "suspiciously few lock names harvested: {}",
        stats.lock_names
    );
    assert!(
        stats.atomic_accesses >= 150,
        "suspiciously few atomic accesses audited: {}",
        stats.atomic_accesses
    );
}
