//! Pins the compile-time gate on the naive lazy-subscription mode
//! (DESIGN.md §17): `AlgoMode::AdaptiveHtmLazyUnsafe` exists only in
//! dev/check builds, so release binaries reject any construction of it at
//! compile time — the variant is simply absent. A `compile_fail` doctest
//! cannot prove that (doctests build with `debug_assertions`, where the
//! variant exists), so this scan pins the mechanism instead: every mention
//! of the identifier in non-test source must sit directly under the exact
//! gating attribute, and the scan must actually find the known use sites.

use std::fs;
use std::path::{Path, PathBuf};

/// The one attribute that gates the variant everywhere. Spelled once, so a
/// drive-by edit (dropping `debug_assertions`, widening to all builds)
/// shows up as a scan violation rather than a silent policy change.
const GATE: &str = r#"#[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]"#;
const IDENT: &str = "AdaptiveHtmLazyUnsafe";

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Files compiled only under `cfg(test)`: integration-test targets (any
/// `tests/` directory) are built with `--test`, so the `test` arm of the
/// gate already covers them.
fn is_test_target(path: &Path) -> bool {
    path.components()
        .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "fixtures")
}

/// Line index where the file's trailing `#[cfg(test)] mod …` region starts
/// (everything after it is unit-test code, gated by `test`).
fn test_mod_start(lines: &[&str]) -> usize {
    lines
        .windows(2)
        .position(|w| w[0].trim() == "#[cfg(test)]" && w[1].trim_start().starts_with("mod "))
        .unwrap_or(lines.len())
}

#[test]
fn naive_lazy_variant_is_compile_gated_everywhere() {
    let ws = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "examples", "src"] {
        rust_files(&ws.join(dir), &mut files);
    }

    let mut gated = 0usize;
    let mut violations = String::new();
    for path in &files {
        if is_test_target(path) {
            continue;
        }
        let text = fs::read_to_string(path).unwrap_or_default();
        if !text.contains(IDENT) {
            continue;
        }
        let lines: Vec<&str> = text.lines().collect();
        let test_start = test_mod_start(&lines);
        for (i, line) in lines.iter().enumerate() {
            if !line.contains(IDENT) || i >= test_start {
                continue;
            }
            if line.trim_start().starts_with("//") {
                continue; // doc comments may name the variant freely
            }
            // Walk back over the item's attributes and doc comments; the
            // gate must be among them.
            let has_gate = lines[..i]
                .iter()
                .rev()
                .take_while(|l| {
                    let s = l.trim_start();
                    s.starts_with('#') || s.starts_with("//")
                })
                .any(|l| l.trim() == GATE);
            if has_gate {
                gated += 1;
            } else {
                violations.push_str(&format!(
                    "\n  {}:{}: {}",
                    path.display(),
                    i + 1,
                    line.trim()
                ));
            }
        }
    }

    assert!(
        violations.is_empty(),
        "every non-test use of {IDENT} must sit under {GATE}:{violations}"
    );
    // The scan saw the real seams, not an empty set: the enum declaration,
    // TryFrom<u8>, FromStr, the AlgoMode predicate arms, and the sync/async
    // runner + controller match arms — 11 sites at the time of writing.
    assert!(
        gated >= 8,
        "suspiciously few gated {IDENT} sites found: {gated}"
    );
}

#[test]
fn declaration_site_carries_the_exact_gate() {
    let system = workspace_root().join("crates/core/src/system.rs");
    let text = fs::read_to_string(&system).expect("crates/core/src/system.rs readable");
    let lines: Vec<&str> = text.lines().collect();
    let decl = lines
        .iter()
        .position(|l| l.trim() == "AdaptiveHtmLazyUnsafe = 7,")
        .expect("AdaptiveHtmLazyUnsafe variant declaration present");
    assert_eq!(
        lines[decl - 1].trim(),
        GATE,
        "the variant declaration must be gated by the exact attribute"
    );
}
