//! R7 positive: two sections take the same pair of locks in opposite
//! orders — the paper's §V x265 deadlock shape. Each inner acquisition is
//! simultaneously a nested-lock violation (R2) and an edge of the
//! lock-order cycle (R7).

static PAGE: ElidableMutex<u64> = ElidableMutex::new("page");
static ROW: ElidableMutex<u64> = ElidableMutex::new("row");

fn forward(th: &Thread) {
    th.critical(&PAGE, |ctx| {
        th.critical(&ROW, |inner| { Ok(()) }) //~ R2,R7 @12
    });
}

fn reverse(th: &Thread) {
    th.critical(&ROW, |ctx| {
        th.critical(&PAGE, |inner| { Ok(()) }) //~ R2,R7 @12
    });
}
