// R5 negative: Wang's construction — waiting and signalling through the
// transactional condvar. `ctx.wait` commits the section before parking and
// re-enters on wakeup; `ctx.signal`/`ctx.broadcast` are deferred to
// commit, so an aborted signaller wakes no one.

fn tx_wait(th: &ThreadHandle, lock: &ElidableMutex, cv: &TxCondvar, c: &TCell<bool>) {
    th.critical(lock, |ctx| {
        if !ctx.read(c)? {
            return ctx.wait(cv, None);
        }
        Ok(())
    });
}

fn tx_signal(th: &ThreadHandle, lock: &ElidableMutex, cv: &TxCondvar, c: &TCell<bool>) {
    th.critical(lock, |ctx| {
        ctx.write(c, true)?;
        ctx.signal(cv)?;
        Ok(())
    });
}

fn tx_broadcast(th: &ThreadHandle, lock: &ElidableMutex, cv: &TxCondvar, c: &TCell<u64>) {
    th.critical(lock, |ctx| {
        ctx.update(c, |v| v + 1)?;
        ctx.broadcast(cv)?;
        Ok(())
    });
}
