// R3 positive: direct atomics inside an atomic block. The access bypasses
// the TM read/write sets — it neither participates in conflict detection
// nor rolls back, so an aborted attempt leaves the counter bumped.

fn count_inside(th: &ThreadHandle, lock: &ElidableMutex, ops: &AtomicU64, c: &TCell<u64>) {
    th.critical(lock, |ctx| {
        ops.fetch_add(1, Ordering::Relaxed); //~ R3
        ctx.write(c, 1)?;
        Ok(())
    });
}

fn flag_inside(th: &ThreadHandle, lock: &ElidableMutex, flag: &AtomicBool, c: &TCell<u64>) {
    th.critical(lock, |ctx| {
        if flag.load(Ordering::Acquire) { //~ R3
            ctx.write(c, 1)?;
        }
        flag.store(true, Ordering::Release); //~ R3
        Ok(())
    });
}
