// R1 positive: console I/O inside the speculative body (paper §VI). The
// print cannot be rolled back when the hardware transaction aborts after
// the call.

fn account_log(th: &ThreadHandle, lock: &ElidableMutex, cell: &TCell<u64>) {
    th.critical(lock, |ctx| {
        let v = ctx.read(cell)?;
        println!("balance now {v}"); //~ R1
        ctx.write(cell, v + 1)?;
        Ok(())
    });
}

fn account_debug(th: &ThreadHandle, lock: &ElidableMutex, cell: &TCell<u64>) {
    th.critical(lock, |ctx| {
        dbg!(ctx.read(cell)?); //~ R1
        Ok(())
    });
}
