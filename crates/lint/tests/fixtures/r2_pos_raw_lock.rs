// R2 positive: acquiring a second, non-elided lock under speculation. If
// the transaction aborts after the acquisition the release never runs —
// the two-phase-locking discipline the paper's x265 fix restores.

fn double_lock(th: &ThreadHandle, lock: &ElidableMutex, side: &Mutex<Vec<u8>>) {
    th.critical(lock, |ctx| {
        let mut out = side.lock(); //~ R2
        out.push(ctx.read_byte()?);
        Ok(())
    });
}

fn guarded_read(th: &ThreadHandle, lock: &ElidableMutex, table: &RwLock<u64>) {
    th.critical(lock, |ctx| {
        let snapshot = table.read(); //~ R2
        ctx.write_snapshot(snapshot)?;
        Ok(())
    });
}

fn try_side_lock(th: &ThreadHandle, lock: &ElidableMutex, side: &Mutex<u64>) {
    th.critical(lock, |_ctx| {
        if let Some(g) = side.try_lock() { //~ R2
            drop(g);
        }
        Ok(())
    });
}
