//! R7 negative: both sections nest the same pair in the SAME order.
//! The nesting itself is still R2 (TLE cannot subsume inner sections),
//! but the acquisition graph is acyclic — no lock-order finding.

static PARENT: ElidableMutex<u64> = ElidableMutex::new("parent");
static CHILD: ElidableMutex<u64> = ElidableMutex::new("child");

fn path_one(th: &Thread) {
    th.critical(&PARENT, |ctx| {
        th.critical(&CHILD, |inner| { Ok(()) }) //~ R2
    });
}

fn path_two(th: &Thread) {
    th.critical(&PARENT, |ctx| {
        th.critical(&CHILD, |inner| { Ok(()) }) //~ R2
    });
}
