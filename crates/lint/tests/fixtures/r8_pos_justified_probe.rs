//! R8 with a reasoned suppression: the relaxed load is deliberate — a
//! monitoring probe that tolerates staleness — and the author says so.
//! The finding is produced, then lands in the suppressed list with the
//! reason attached (it feeds SARIF `suppressions[]`, not the verdict).

fn publish(s: &Shared) {
    s.ready.store(true, Ordering::Release);
}

fn consume(s: &Shared) -> bool {
    s.ready.load(Ordering::Acquire)
}

fn probe_for_dashboard(s: &Shared) -> bool {
    // tle-lint: allow(R8, "monitoring probe: value is advisory, staleness is fine")
    s.ready.load(Ordering::Relaxed) //~ R8 suppressed
}
