// R6 positive: suspension points inside an atomic block. Attempts must
// start and finish inside one poll — an `.await` would hold speculative
// state (orecs, line claims, the serial token) across arbitrary scheduling
// delays, and `block_on` drives a future to completion on the very
// executor worker the section runs on (deadlock-prone).

async fn await_in_section(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<u64>) {
    th.tx(lock)
        .run_async(|ctx| {
            let v = ctx.read(c)?;
            fetch_remote(v).await; //~ R6
            ctx.write(c, v + 1)?;
            Ok(())
        })
        .await;
}

fn block_on_in_section(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<u64>) {
    th.tx(lock).run(|ctx| {
        let v = ctx.read(c)?;
        block_on(fetch_remote(v)); //~ R6
        ctx.write(c, v + 1)?;
        Ok(())
    });
}

fn block_on_in_legacy_section(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<u64>) {
    th.critical(lock, |ctx| {
        exec.block_on(refresh()); //~ R6
        ctx.update(c, |v| v + 1)?;
        Ok(())
    });
}
