// R6 negative: the sanctioned async shapes. Awaiting the section future
// itself is the API (`.run_async(..).await` — the await is *outside* the
// closure); `ctx.wait` suspends safely because the transaction commits
// before parking; and async work between sections never holds speculative
// state.

async fn await_the_section(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<u64>) {
    th.tx(lock)
        .run_async(|ctx| {
            ctx.update(c, |v| v + 1)?;
            Ok(())
        })
        .await;
}

async fn tx_wait_is_safe(th: &ThreadHandle, lock: &ElidableMutex, cv: &TxCondvar, c: &TCell<bool>) {
    th.tx(lock)
        .run_async(|ctx| {
            if !ctx.read(c)? {
                return ctx.wait(cv, None);
            }
            Ok(())
        })
        .await;
}

async fn async_work_between_sections(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<u64>) {
    let v = th.tx(lock).run_async(|ctx| ctx.read(c)).await;
    let enriched = fetch_remote(v).await;
    th.tx(lock)
        .deadline_us(5_000)
        .try_run_async(|ctx| ctx.write(c, enriched))
        .await;
}
