//! Transitive R1: the block body is clean to a per-block scan — the
//! irrevocable effect hides one call away. The finding anchors at the
//! call site inside the block and carries the hazard's true location as a
//! related span.

fn log_progress(done: u64) {
    println!("progress: {done}");
}

fn drain(th: &Thread, lock: &ElidableMutex<u64>, cell: &TCell<u64>) {
    th.critical(lock, |ctx| {
        let done = ctx.read(cell)?;
        log_progress(done); //~ R1 @9
        Ok(())
    });
}
