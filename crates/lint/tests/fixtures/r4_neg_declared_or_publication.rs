// R4 negative: the two sanctioned no-quiesce shapes. Publication-only
// bodies (paper Listing 2's producer) never privatize, and a privatizing
// body that declares `ctx.will_free_memory()` re-enrolls in the
// allocator-mandated drain.

fn publish_only(th: &ThreadHandle, lock: &ElidableMutex, slot: &TCell<u64>, tail: &TCell<u64>) {
    th.critical(lock, |ctx| {
        let t = ctx.read(tail)?;
        ctx.write(slot, t)?;
        ctx.write(tail, t + 1)?;
        // Publication, not privatization: skipping the drain is safe.
        ctx.no_quiesce();
        Ok(())
    });
}

fn declared_free(th: &ThreadHandle, lock: &ElidableMutex, slot: &TCell<*mut u8>) {
    th.critical(lock, |ctx| {
        let p = ctx.read(slot)?;
        ctx.write(slot, core::ptr::null_mut())?;
        drop(unsafe { Box::from_raw(p) });
        ctx.no_quiesce();
        ctx.will_free_memory();
        Ok(())
    });
}
