//! R8 positive: `ready` is a publication flag — stored with `Release`,
//! consumed with `Acquire` — but a third path peeks at it with `Relaxed`.
//! On x86 TSO the peek works by accident; on ARM/POWER it can observe the
//! flag without the payload it publishes (paper §IV-B).

fn publish(s: &Shared) {
    s.payload = 42;
    s.ready.store(true, Ordering::Release);
}

fn consume(s: &Shared) -> bool {
    s.ready.load(Ordering::Acquire)
}

fn peek(s: &Shared) -> bool {
    s.ready.load(Ordering::Relaxed) //~ R8 @13
}
