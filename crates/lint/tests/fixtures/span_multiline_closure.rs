// Span quality: in a long multi-line closure the finding must anchor on
// the offending token's own line and column, not the `critical` call line.
// The `@<col>` markers pin exact columns.

fn long_body(th: &ThreadHandle, lock: &ElidableMutex, cells: &[TCell<u64>], ops: &AtomicU64) {
    th.critical(lock, |ctx| {
        let mut acc = 0u64;
        for c in cells {
            acc = acc.wrapping_add(ctx.read(c)?);
        }
        if acc > 100 {
            ctx.write(&cells[0], 0)?;
        } else {
            ctx.write(&cells[0], acc)?;
        }
        ops.fetch_add(1, Ordering::Relaxed); //~ R3 @13
        let spare = acc
            .checked_mul(3)
            .unwrap_or_else(|| {
                eprintln!("overflow at {acc}"); //~ R1 @17
                0
            });
        ctx.write(&cells[1], spare)?;
        Ok(())
    });
}
