// R2 negative: the sink's turn pattern — the raw mutex is taken *between*
// two atomic blocks, never inside one (privatization-by-turn; in PBZip2
// this is the output-file write). Sequential sections on the same lock are
// fine; only nesting is the hazard.

fn submit(th: &ThreadHandle, lock: &ElidableMutex, out: &Mutex<Vec<u8>>, next: &TCell<u64>, id: u64) {
    th.critical(lock, |ctx| {
        if ctx.read(next)? != id {
            return ctx.wait_turn();
        }
        Ok(())
    });
    // We exclusively own the turn: lock outside any transaction.
    {
        let mut buf = out.lock();
        buf.push(id as u8);
    }
    th.critical(lock, |ctx| {
        ctx.write(next, id + 1)?;
        Ok(())
    });
}

fn transactional_read_write(th: &ThreadHandle, lock: &ElidableMutex, cell: &TCell<u64>) {
    th.critical(lock, |ctx| {
        // ctx.read/ctx.write take arguments — these are the transactional
        // accessors, not RwLock guards.
        let v = ctx.read(cell)?;
        ctx.write(cell, v + 1)?;
        Ok(())
    });
}
