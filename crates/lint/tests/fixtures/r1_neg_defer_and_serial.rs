// R1 negative: both sanctioned escapes for irrevocable effects.
//
// (1) The paper's §VI rewrite — route the effect through a deferred action
//     that runs after commit/unlock.
// (2) Declare the section irrevocable up front with ctx.unsafe_op()?; the
//     runner re-executes it serially, so later effects never speculate.

fn deferred_logging(th: &ThreadHandle, lock: &ElidableMutex, cell: &TCell<u64>) {
    th.critical(lock, |ctx| {
        let v = ctx.read(cell)?;
        ctx.defer(move || println!("committed with {v}"));
        ctx.write(cell, v + 1)?;
        Ok(())
    });
}

fn serial_io(th: &ThreadHandle, lock: &ElidableMutex, cell: &TCell<u64>) {
    th.critical(lock, |ctx| {
        ctx.unsafe_op()?;
        // Serial-irrevocable from here on: the effect happens exactly once.
        println!("running serially");
        std::thread::sleep(Duration::from_millis(1));
        ctx.write(cell, 1)?;
        Ok(())
    });
}
