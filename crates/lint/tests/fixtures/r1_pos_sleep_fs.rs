// R1 positive: sleeping and filesystem access inside an atomic block. Both
// are TM-unsafe actions (paper §VI) that force serial-irrevocable
// execution — or worse, execute speculatively and then unwind.

fn throttle(th: &ThreadHandle, lock: &ElidableMutex, cell: &TCell<u64>) {
    th.critical(lock, |ctx| {
        let v = ctx.read(cell)?;
        std::thread::sleep(Duration::from_millis(v)); //~ R1
        Ok(())
    });
}

fn checkpoint(th: &ThreadHandle, lock: &ElidableMutex, cell: &TCell<u64>) {
    th.critical(lock, |ctx| {
        let v = ctx.read(cell)?;
        File::create("checkpoint.bin")?; //~ R1
        std::fs::remove_file("checkpoint.old")?; //~ R1
        ctx.write(cell, v)?;
        Ok(())
    });
}
