// R3 negative: the transactional accessors, plus the look-alikes the rule
// must not trip on — slice/element swap takes indices (no memory
// Ordering), and statistics atomics touched *outside* the closure are the
// drivers' sanctioned pattern.

fn disciplined(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<u64>, ops: &AtomicU64) {
    ops.fetch_add(1, Ordering::Relaxed); // outside: fine
    th.critical(lock, |ctx| {
        let v = ctx.read(c)?;
        ctx.write(c, v + 1)?;
        ctx.update(c, |x| x * 2)?;
        Ok(())
    });
    let _snapshot = c.load_direct(); // quiescent-state read: fine
}

fn shuffles(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<u64>) {
    let mut scratch = [1u64, 2, 3];
    th.critical(lock, |ctx| {
        scratch.swap(0, 2); // slice swap, no Ordering: fine
        ctx.write(c, scratch[0])?;
        Ok(())
    });
}
