// R3 positive: TCell back-doors and raw-pointer access inside an atomic
// block. `load_direct`/`store_direct` are quiescent-state accessors — used
// under speculation they read around the transaction's own write set.

fn peek_around(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<u64>) {
    th.critical(lock, |ctx| {
        let shadow = c.load_direct(); //~ R3
        ctx.write(c, shadow + 1)?;
        Ok(())
    });
}

fn poke_around(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<u64>, p: *mut u64) {
    th.critical(lock, |ctx| {
        c.store_direct(9); //~ R3
        let v = unsafe { std::ptr::read(p) }; //~ R3
        ctx.write(c, v)?;
        Ok(())
    });
}
