// R5 positive: bare thread parking inside an atomic block. The thread
// blocks while holding speculative state (or the elided lock's serial
// fallback), and nothing ever aborts it to let the unpark happen.

fn spin_park(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<bool>) {
    th.critical(lock, |ctx| {
        if !ctx.read(c)? {
            std::thread::park(); //~ R5
        }
        Ok(())
    });
}

fn timed_park(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<bool>) {
    th.critical(lock, |ctx| {
        if !ctx.read(c)? {
            park_timeout(TIMEOUT); //~ R5
        }
        Ok(())
    });
}
