//! Transitive R2: the helper acquires a side lock while the atomic block
//! holds its own — the two-phase-locking shape, laundered through a call.

fn push_pending(q: &Queue, item: u64) {
    q.pending.lock().push(item);
}

fn submit(th: &Thread, lock: &ElidableMutex<u64>, q: &Queue) {
    th.critical(lock, |ctx| {
        push_pending(q, 7); //~ R2
        Ok(())
    });
}
