// R5 positive: OS condition-variable protocol inside an atomic block
// (paper §III). The wait never commits the transaction, so the matching
// signal can land before the waiter's predicate write is visible — lost
// wakeups — and under elision the parked thread holds the section open.

fn os_wait(th: &ThreadHandle, lock: &ElidableMutex, cv: &Condvar, c: &TCell<bool>) {
    th.critical(lock, |ctx| {
        while !ctx.read(c)? {
            cv.wait_timeout(guard(), TIMEOUT); //~ R5
        }
        Ok(())
    });
}

fn os_signal(th: &ThreadHandle, lock: &ElidableMutex, cv: &StdCondvar, c: &TCell<bool>) {
    th.critical(lock, |ctx| {
        ctx.write(c, true)?;
        cv.notify_one(); //~ R5
        Ok(())
    });
}

fn cv_built_inside(th: &ThreadHandle, lock: &ElidableMutex, c: &TCell<bool>) {
    th.critical(lock, |ctx| {
        let cv = Condvar::new(); //~ R5
        ctx.write(c, true)?;
        Ok(())
    });
}
