// R4 positive: TM_NoQuiesce asserted by a transaction that privatizes
// (paper §IV-B). Skipping the drain while freeing the payload races
// doomed transactions that still hold speculative references to it.

fn pop_and_free(th: &ThreadHandle, lock: &ElidableMutex, slot: &TCell<*mut u8>) {
    th.critical(lock, |ctx| {
        let p = ctx.read(slot)?;
        ctx.write(slot, core::ptr::null_mut())?;
        drop(unsafe { Box::from_raw(p) });
        ctx.no_quiesce(); //~ R4
        Ok(())
    });
}

fn recycle(th: &ThreadHandle, lock: &ElidableMutex, slot: &TCell<*mut u8>) {
    th.critical(lock, |ctx| {
        let p = ctx.read(slot)?;
        unsafe { dealloc(p, layout()) };
        ctx.no_quiesce(); //~ R4
        Ok(())
    });
}
