// R6 positive: entering another async section from inside an atomic block.
// The returned future can neither be awaited here (suspension hazard) nor
// polled inline (re-entrant runtime), and the nesting itself is the x265
// two-phase-locking bug in async clothing — the builder re-entry is R2,
// the async terminal R6.

async fn nested_async_entry(th: &ThreadHandle, a: &ElidableMutex, b: &ElidableMutex) {
    th.tx(a)
        .run_async(|ctx| {
            let fut = th
                .tx(b) //~ R2
                .run_async(|inner| Ok(())); //~ R6
            drop(fut);
            Ok(())
        })
        .await;
}

fn nested_try_entry_from_sync(th: &ThreadHandle, a: &ElidableMutex, b: &ElidableMutex) {
    th.critical(a, |ctx| {
        let fut = th
            .tx(b) //~ R2
            .try_run_async(|inner| Ok(())); //~ R6
        drop(fut);
        Ok(())
    });
}

fn legacy_async_spelling(th: &ThreadHandle, a: &ElidableMutex, b: &ElidableMutex) {
    th.tx(a).run(|ctx| {
        th.critical_async(b, |inner| Ok(())); //~ R6
        Ok(())
    });
}
