//! R8 positive, store side: `state` is advanced with an AcqRel CAS (which
//! is both the release write and the acquire read of the protocol), but
//! the reset path stores with `Relaxed` — readers synchronizing on the
//! CAS can miss writes ordered before the reset.

fn reset(s: &Shared) {
    s.state.store(0, Ordering::Relaxed); //~ R8 @13
}

fn advance(s: &Shared) -> bool {
    s.state
        .compare_exchange(1, 2, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}
