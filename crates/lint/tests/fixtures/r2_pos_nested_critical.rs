// R2 positive: the x265 bug class (paper §V) — re-entering the TLE runtime
// while an atomic block is already open. The inner commit releases
// transactional metadata the outer section still depends on.

fn transfer(th: &ThreadHandle, a: &ElidableMutex, b: &ElidableMutex, c: &TCell<u64>) {
    th.critical(a, |ctx| {
        let v = ctx.read(c)?;
        th.critical(b, |inner| { //~ R2
            inner.write(c, v + 1)?;
            Ok(())
        });
        Ok(())
    });
}

fn reserve_then_fill(th: &ThreadHandle, q: &ElidableMutex, c: &TCell<u64>) {
    th.critical(q, |ctx| {
        ctx.write(c, 1)?;
        th.critical_with(q, (2, 8), |inner| { //~ R2
            inner.write(c, 2)?;
            Ok(())
        });
        Ok(())
    });
}
