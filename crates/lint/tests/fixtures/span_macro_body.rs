// Span quality: a violation inside a macro_rules! template must be
// reported at the offending token's own position inside the macro body —
// not at the macro definition or an invocation. The `@<col>` markers pin
// the exact column of the innermost offending token.

macro_rules! logged_bump {
    ($th:expr, $lock:expr, $cell:expr) => {
        $th.critical($lock, |ctx| {
            let v = ctx.read($cell)?;
            println!("bump to {}", v + 1); //~ R1 @13
            ctx.write($cell, v + 1)?;
            Ok(())
        })
    };
}

macro_rules! locked_push {
    ($th:expr, $lock:expr, $side:expr) => {
        $th.critical($lock, |ctx| {
            let mut g = $side.lock(); //~ R2 @31
            g.push(ctx.tag()?);
            Ok(())
        })
    };
}

fn drive(th: &ThreadHandle, lock: &ElidableMutex, cell: &TCell<u64>, side: &Mutex<Vec<u8>>) {
    logged_bump!(th, &lock, &cell);
    locked_push!(th, &lock, &side);
}
