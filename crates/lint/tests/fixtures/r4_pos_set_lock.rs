// R4 positive (file-level): `set_lock_no_quiesce` promotes every section
// under the lock to the no-drain path, so a privatizing section in the
// same file is suspect even without an in-body `no_quiesce()`.

fn setup(sys: &TmSystem, lock: &ElidableMutex) {
    sys.set_lock_no_quiesce(lock, true); //~ R4
}

fn drain_one(th: &ThreadHandle, lock: &ElidableMutex, slot: &TCell<*mut u8>) {
    th.critical(lock, |ctx| {
        let p = ctx.read(slot)?;
        ctx.write(slot, core::ptr::null_mut())?;
        drop(unsafe { Box::from_raw(p) });
        Ok(())
    });
}
