//! R8 negative: honest concurrent code the audit must stay quiet on.
//! `hits` is a pure relaxed counter (no publication pair exists), and
//! `ready` is a disciplined Release/Acquire pair with no relaxed access.
//! The relaxed `fetch_add` on `seq` is idiomatic even though `seq` is
//! published — RMWs are not the flagged plain-load/store shape.

fn hit(s: &Stats) {
    s.hits.fetch_add(1, Ordering::Relaxed);
}

fn read_hits(s: &Stats) -> u64 {
    s.hits.load(Ordering::Relaxed)
}

fn publish(s: &Stats) {
    s.ready.store(true, Ordering::Release);
}

fn wait_ready(s: &Stats) -> bool {
    s.ready.load(Ordering::Acquire)
}

fn bump_seq(s: &Stats) {
    s.seq.store(1, Ordering::Release);
    s.seq.load(Ordering::Acquire);
    s.seq.fetch_add(1, Ordering::Relaxed);
}
