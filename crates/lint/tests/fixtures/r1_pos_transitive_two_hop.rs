//! Transitive R1 across two hops: block -> flush -> write_out. The
//! finding's related spans walk the whole chain to the `fs::` access.

fn write_out(bytes: &[u8]) {
    fs::write("/tmp/out.bin", bytes);
}

fn flush(buf: &Buffer) {
    write_out(&buf.bytes);
}

fn commit(th: &Thread, lock: &ElidableMutex<u64>, buf: &Buffer) {
    th.critical(lock, |ctx| {
        flush(buf); //~ R1
        Ok(())
    });
}
