//! R7 positive: a three-lock rotation (a→b, b→c, c→a). No pair is ever
//! taken in both orders, so a pairwise checker would miss it; the SCC
//! walk reports all three edges. One section uses the `tx(..)` request
//! form to pin that both entry spellings feed the same graph.

static INDEX: ElidableMutex<u64> = ElidableMutex::new("index");
static BLOCKS: ElidableMutex<u64> = ElidableMutex::new("blocks");
static JOURNAL: ElidableMutex<u64> = ElidableMutex::new("journal");

fn index_then_blocks(th: &Thread) {
    th.critical(&INDEX, |ctx| {
        th.critical(&BLOCKS, |inner| { Ok(()) }) //~ R2,R7
    });
}

fn blocks_then_journal(th: &Thread) {
    th.critical(&BLOCKS, |ctx| {
        th.tx(&JOURNAL).run(|inner| { Ok(()) }) //~ R2,R7
    });
}

fn journal_then_index(th: &Thread) {
    th.critical(&JOURNAL, |ctx| {
        th.critical(&INDEX, |inner| { Ok(()) }) //~ R2,R7
    });
}
