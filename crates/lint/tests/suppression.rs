//! Suppression mechanics, pinned: reasons are mandatory, placement is
//! line-accurate, and stale directives are themselves findings.

use tle_lint::{lint_source, Rule};

const VIOLATION: &str = "th.critical(&lock, |ctx| {\n    println!(\"x\");\n    Ok(())\n});\n";

fn with_directive(directive: &str) -> String {
    // Own-line directive immediately above the offending line.
    format!(
        "fn f(th: &T, lock: &L) {{\n    th.critical(&lock, |ctx| {{\n        {directive}\n        println!(\"x\");\n        Ok(())\n    }});\n}}\n"
    )
}

#[test]
fn reasoned_allow_suppresses_next_line() {
    let src = with_directive("// tle-lint: allow(R1, \"demo: logged under test harness\")");
    let r = lint_source("t.rs", &src);
    assert!(
        r.findings.is_empty(),
        "suppression failed: {:?}",
        r.findings
    );
    assert_eq!(r.suppressed.len(), 1);
    assert_eq!(r.suppressed[0].0.rule, Rule::IrrevocableEffect);
    assert!(r.stale.is_empty());
}

#[test]
fn trailing_allow_suppresses_own_line() {
    let src = "fn f(th: &T, lock: &L) {\n    th.critical(&lock, |ctx| {\n        println!(\"x\"); // tle-lint: allow(irrevocable-effect, \"slug form works too\")\n        Ok(())\n    });\n}\n";
    let r = lint_source("t.rs", src);
    assert!(r.findings.is_empty());
    assert_eq!(r.suppressed.len(), 1);
}

#[test]
fn allow_without_reason_is_a_lint_error() {
    let src = with_directive("// tle-lint: allow(R1)");
    let r = lint_source("t.rs", &src);
    // The original finding stays active AND the bad directive is reported.
    let bad: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == Rule::BadAllow)
        .collect();
    let orig: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == Rule::IrrevocableEffect)
        .collect();
    assert_eq!(bad.len(), 1, "missing A1 for reasonless allow");
    assert!(bad[0].message.contains("requires a reason"));
    assert_eq!(orig.len(), 1, "reasonless allow must not suppress");
    assert!(r.suppressed.is_empty());
}

#[test]
fn empty_reason_is_a_lint_error() {
    let src = with_directive("// tle-lint: allow(R1, \"\")");
    let r = lint_source("t.rs", &src);
    assert!(r.findings.iter().any(|f| f.rule == Rule::BadAllow));
    assert!(r.suppressed.is_empty());
}

#[test]
fn unknown_rule_is_a_lint_error() {
    let src = with_directive("// tle-lint: allow(R9, \"no such rule\")");
    let r = lint_source("t.rs", &src);
    let bad: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == Rule::BadAllow)
        .collect();
    assert_eq!(bad.len(), 1);
    assert!(bad[0].message.contains("unknown rule"));
}

#[test]
fn stale_allow_is_reported() {
    // Directive present, but the line below is clean.
    let src = "fn f(th: &T, lock: &L) {\n    th.critical(&lock, |ctx| {\n        // tle-lint: allow(R1, \"was needed before the defer rewrite\")\n        ctx.write(&c, 1)?;\n        Ok(())\n    });\n}\n";
    let r = lint_source("t.rs", src);
    assert!(r.findings.is_empty());
    assert_eq!(r.stale.len(), 1);
    assert_eq!(r.stale[0].rule, Rule::StaleAllow);
    assert!(r.stale[0].message.contains("matches no finding"));
}

#[test]
fn allow_is_rule_specific_and_line_specific() {
    // An R2 allow does not silence an R1 finding on the same line...
    let src = with_directive("// tle-lint: allow(R2, \"wrong rule on purpose\")");
    let r = lint_source("t.rs", &src);
    assert!(r.findings.iter().any(|f| f.rule == Rule::IrrevocableEffect));
    assert_eq!(r.stale.len(), 1, "mismatched allow must go stale");

    // ... and an allow two lines away does not reach the violation.
    let src2 = format!("// tle-lint: allow(R1, \"too far away\")\nfn g() {{}}\nfn f(th: &T, lock: &L) {{\n{VIOLATION}}}\n");
    let r2 = lint_source("t.rs", &src2);
    assert!(r2
        .findings
        .iter()
        .any(|f| f.rule == Rule::IrrevocableEffect));
    assert_eq!(r2.stale.len(), 1);
}

#[test]
fn one_comment_can_carry_multiple_clauses() {
    let src = "fn f(th: &T, lock: &L) {\n    th.critical(&lock, |ctx| {\n        // tle-lint: allow(R1, \"demo io\") allow(R2, \"demo lock\")\n        println!(\"{}\", side.lock().len());\n        Ok(())\n    });\n}\n";
    let r = lint_source("t.rs", src);
    assert!(
        r.findings.is_empty(),
        "both rules suppressed: {:?}",
        r.findings
    );
    assert_eq!(r.suppressed.len(), 2);
    assert!(r.stale.is_empty());
}
