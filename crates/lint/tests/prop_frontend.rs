//! Property tests for the analyzer's front end (lexer + token-tree
//! parser). The workspace engine now feeds every `.rs` file in the repo
//! through this code, so the front end must be total: any input either
//! parses or reports a clean error — it never panics, never hangs, and
//! never lets delimiters silently unbalance.

use proptest::prelude::*;
use tle_lint::lexer::lex;
use tle_lint::tree::{parse, Tree};
use tle_lint::{lint_source, Rule};

/// Count delimiter groups recursively — used to sanity-check that the
/// tree really consumed the token stream's structure.
fn count_groups(trees: &[Tree]) -> usize {
    trees
        .iter()
        .map(|t| match t {
            Tree::Group(g) => 1 + count_groups(&g.kids),
            _ => 0,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Total on arbitrary bytes: lex/parse/lint either succeed or return
    /// an error value. `lint_source` additionally turns front-end errors
    /// into a P1 finding instead of propagating them.
    #[test]
    fn front_end_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok((toks, _comments)) = lex(&src) {
            let _ = parse(toks);
        }
        let report = lint_source("soup.rs", &src);
        for f in &report.findings {
            // Byte soup carries no atomic blocks; the only possible
            // finding is the parse-error report itself.
            prop_assert_eq!(f.rule, Rule::ParseError);
        }
    }

    /// Printable soup (the common hand-edited-file case) gets the same
    /// guarantee, and exercises ident/punct/comment paths more densely.
    #[test]
    fn front_end_never_panics_on_printable_soup(
        src in "[a-zA-Z0-9_ .,;:&|!?'\"/(){}<>=+*#~@$%^-]{0,80}",
    ) {
        if let Ok((toks, _)) = lex(&src) {
            let _ = parse(toks);
        }
        let _ = lint_source("soup.rs", &src);
    }

    /// Balanced-by-construction streams always parse, and one extra
    /// closer always turns into a reported error — delimiters are either
    /// balanced or loudly unbalanced, never silently dropped.
    #[test]
    fn balanced_streams_parse_and_unbalanced_ones_report(
        atoms in prop::collection::vec((0u8..5, "[a-z]{1,5}"), 0..40),
    ) {
        let mut src = String::new();
        let mut stack: Vec<char> = Vec::new();
        for (kind, word) in &atoms {
            match kind {
                0 => {
                    src.push_str(word);
                    src.push(' ');
                }
                1 => {
                    src.push_str("( ");
                    stack.push(')');
                }
                2 => {
                    src.push_str("{ ");
                    stack.push('}');
                }
                3 => {
                    src.push_str("[ ");
                    stack.push(']');
                }
                _ => {
                    if let Some(c) = stack.pop() {
                        src.push(c);
                        src.push(' ');
                    } else {
                        src.push_str("; ");
                    }
                }
            }
        }
        while let Some(c) = stack.pop() {
            src.push(c);
            src.push(' ');
        }

        let (toks, _) = lex(&src).expect("balanced printable stream lexes");
        let n_open = src.chars().filter(|c| "({[".contains(*c)).count();
        let forest = parse(toks).expect("balanced stream parses");
        prop_assert_eq!(count_groups(&forest), n_open);

        let (toks, _) = lex(&format!("{src})")).expect("still lexes");
        prop_assert!(parse(toks).is_err(), "extra closer must be reported");
    }

    /// String literals and comments are opaque: hazard-shaped text inside
    /// them never reaches the rules. This is what lets a log message say
    /// "println" or a comment cite `.lock()` without tripping the linter.
    #[test]
    fn strings_and_comments_are_opaque_to_rules(
        payload in "[a-zA-Z0-9_ .!|&]{0,24}",
        hazard in 0u8..4,
    ) {
        let hazard_text = match hazard {
            0 => format!("println!({payload})"),
            1 => format!("side.lock() {payload}"),
            2 => format!("th.critical(&l, {payload}"),
            _ => payload.clone(),
        };
        let src = format!(
            "fn f(th: &T, lock: &L) {{\n    th.critical(&lock, |ctx| {{\n        \
             let msg = \"{hazard_text}\";\n        // note: {hazard_text}\n        \
             ctx.write(&cell, 1)?;\n        Ok(())\n    }});\n}}\n"
        );
        let report = lint_source("opaque.rs", &src);
        prop_assert!(
            report.findings.is_empty() && report.suppressed.is_empty() && report.stale.is_empty(),
            "hazard text in string/comment leaked into rules: {:?}",
            report.findings
        );
    }

    /// Token spans come out in source order — line/col pairs never go
    /// backwards. Every downstream anchor (markers, SARIF, related spans)
    /// leans on this.
    #[test]
    fn token_spans_are_monotonic(src in "[a-z0-9_ .;(){}\n]{0,80}") {
        if let Ok((toks, _)) = lex(&src) {
            let mut prev = (0u32, 0u32);
            for t in &toks {
                let cur = (t.span.line, t.span.col);
                prop_assert!(cur >= prev, "span went backwards: {prev:?} -> {cur:?}");
                prev = cur;
            }
        }
    }
}
