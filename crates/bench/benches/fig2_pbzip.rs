//! Figure 2 (a-f): PBZip2 compress/decompress execution time vs. worker
//! threads, for block sizes 100K / 300K / 900K, under all five algorithms.
//!
//! The paper uses a 650 MB file on a 4-core/8-thread i7; we default to a
//! scaled-down synthetic input (DESIGN.md §3.5-3.6) and compare *shape*:
//! pthread vs. STM+CondVar crossing at higher thread counts, STM+Spin
//! worst, HTM close to or above pthread.

use tle_bench::workloads::{pbzip_compress_trial, pbzip_decompress_trial};
use tle_bench::{fmt_secs, full_sweep, thread_sweep, trials, Table};
use tle_core::{AlgoMode, ALL_MODES};

fn main() {
    let input_len = if full_sweep() { 24_000_000 } else { 3_000_000 };
    let input = tle_pbz::gen_text(0x650, input_len);
    let block_sizes: &[usize] = &[100_000, 300_000, 900_000];
    let n_trials = trials(if full_sweep() { 5 } else { 2 });
    println!(
        "Figure 2: PBZip2, input {} MB, {} trials per point",
        input_len / 1_000_000,
        n_trials
    );

    for (op_name, decompress) in [("Compress", false), ("Decompress", true)] {
        for &bs in block_sizes {
            let panel = format!(
                "Fig 2 {}: {} block size {}K (seconds)",
                panel_letter(op_name, bs),
                op_name,
                bs / 1000
            );
            let mut headers = vec!["threads".to_string()];
            headers.extend(ALL_MODES.iter().map(|m| m.label().to_string()));
            let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
            let mut table = Table::new(&panel, &href);

            // Pre-compress once for the decompression panels.
            let compressed = if decompress {
                let sys = tle_bench::fresh_system(AlgoMode::Baseline);
                Some(tle_pbz::compress_parallel(
                    &sys,
                    &input,
                    &tle_pbz::PipelineConfig {
                        workers: 4,
                        block_size: bs,
                        fifo_cap: 8,
                    },
                ))
            } else {
                None
            };

            for threads in thread_sweep() {
                let mut row = vec![threads.to_string()];
                for mode in ALL_MODES {
                    let mut total = 0.0;
                    for _ in 0..n_trials {
                        let (secs, _) = match &compressed {
                            Some(c) => pbzip_decompress_trial(mode, threads, bs, c),
                            None => pbzip_compress_trial(mode, threads, bs, &input),
                        };
                        total += secs;
                    }
                    row.push(fmt_secs(total / n_trials as f64));
                }
                table.row(row);
            }
            table.print();
        }
    }
}

fn panel_letter(op: &str, bs: usize) -> &'static str {
    match (op, bs) {
        ("Compress", 100_000) => "(a)",
        ("Compress", 300_000) => "(b)",
        ("Compress", 900_000) => "(c)",
        ("Decompress", 100_000) => "(d)",
        ("Decompress", 300_000) => "(e)",
        _ => "(f)",
    }
}
