//! Figure 4: x265 HTM abort and serial-fallback rates vs. worker threads.
//!
//! Paper shape: abort rates grow with thread count and remain substantial
//! (the untuned 2-retry policy sends a significant share of transactions
//! to the serial path), suggesting headroom from fallback tuning — which
//! `ablate_htm_retry` explores.
//!
//! The conflict/capacity/event columns come from the per-cause abort
//! counters the diagnostics layer maintains (`TxStats::by_cause`, always
//! compiled in); each table also prints the full non-zero breakdown so
//! rarer causes (`unsafe`, `explicit`) show up when they occur. Building
//! with `--features trace` additionally dumps a summary of the transaction
//! event ring — per-event-kind counts over the most recent trial window.

use tle_base::trace;
use tle_base::AbortCause;
use tle_bench::workloads::{x265_trial_cfg, VideoSize};
use tle_bench::{fmt_pct, full_sweep, thread_sweep, Table};
use tle_core::AlgoMode;
use tle_htm::HtmConfig;

fn main() {
    let full = full_sweep();
    println!("Figure 4: x265 HTM abort statistics (HTM+CondVar)");
    // Two hardware models: the default (calibrated to a quiet machine —
    // with fewer cores than threads, true conflict windows are rare), and
    // an interrupt-pressure model whose event-abort probability stands in
    // for the TLB-miss/interrupt/preemption aborts a busy Haswell shows.
    let configs = [
        ("default hardware model", HtmConfig::default()),
        (
            "interrupt-pressure model (event_prob=5e-3)",
            HtmConfig {
                event_prob: 5e-3,
                ..HtmConfig::default()
            },
        ),
    ];
    for (cfg_label, cfg) in configs {
        for size in [VideoSize::Small, VideoSize::Medium] {
            let mut table = Table::new(
                &format!("Fig 4: HTM aborts, {} input — {}", size.label(), cfg_label),
                &[
                    "threads",
                    "commits",
                    "aborts",
                    "abort-rate",
                    "conflicts",
                    "capacity",
                    "events",
                    "fallback-rate",
                    "per-cause breakdown",
                ],
            );
            for threads in thread_sweep() {
                trace::clear();
                let (_, stats) =
                    x265_trial_cfg(AlgoMode::HtmCondvar, threads, size, full, cfg.clone());
                table.row(vec![
                    threads.to_string(),
                    stats.htm_commits.to_string(),
                    stats.htm_aborts.to_string(),
                    fmt_pct(stats.htm_abort_rate()),
                    stats.htm.cause(AbortCause::Conflict).to_string(),
                    stats.htm.cause(AbortCause::Capacity).to_string(),
                    stats.htm.cause(AbortCause::Event).to_string(),
                    fmt_pct(stats.fallback_rate()),
                    stats.abort_breakdown(),
                ]);
            }
            table.print();
            if trace::compiled() {
                // Ring summary of the last trial in the sweep (the ring
                // keeps the most recent RING_CAP events per thread).
                let summary = trace::TraceSummary::of(&trace::snapshot());
                print!("event ring (last trial):");
                for kind in trace::TraceKind::ALL {
                    let n = summary.kind(kind);
                    if n > 0 {
                        print!(" {}={}", kind.label(), n);
                    }
                }
                print!("\n           abort causes:");
                for cause in AbortCause::ALL {
                    let n = summary.aborts(cause);
                    if n > 0 {
                        print!(" {}={}", cause.label(), n);
                    }
                }
                println!("\n");
            }
        }
    }
}
