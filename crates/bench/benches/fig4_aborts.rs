//! Figure 4: x265 HTM abort and serial-fallback rates vs. worker threads.
//!
//! Paper shape: abort rates grow with thread count and remain substantial
//! (the untuned 2-retry policy sends a significant share of transactions
//! to the serial path), suggesting headroom from fallback tuning — which
//! `ablate_htm_retry` explores.

use tle_bench::workloads::{x265_trial_cfg, VideoSize};
use tle_bench::{fmt_pct, full_sweep, thread_sweep, Table};
use tle_core::AlgoMode;
use tle_htm::HtmConfig;

fn main() {
    let full = full_sweep();
    println!("Figure 4: x265 HTM abort statistics (HTM+CondVar)");
    // Two hardware models: the default (calibrated to a quiet machine —
    // with fewer cores than threads, true conflict windows are rare), and
    // an interrupt-pressure model whose event-abort probability stands in
    // for the TLB-miss/interrupt/preemption aborts a busy Haswell shows.
    let configs = [
        ("default hardware model", HtmConfig::default()),
        (
            "interrupt-pressure model (event_prob=5e-3)",
            HtmConfig {
                event_prob: 5e-3,
                ..HtmConfig::default()
            },
        ),
    ];
    for (cfg_label, cfg) in configs {
        for size in [VideoSize::Small, VideoSize::Medium] {
            let mut table = Table::new(
                &format!("Fig 4: HTM aborts, {} input — {}", size.label(), cfg_label),
                &[
                    "threads",
                    "commits",
                    "aborts",
                    "abort-rate",
                    "conflicts",
                    "capacity",
                    "events",
                    "fallback-rate",
                ],
            );
            for threads in thread_sweep() {
                let (_, stats) =
                    x265_trial_cfg(AlgoMode::HtmCondvar, threads, size, full, cfg.clone());
                table.row(vec![
                    threads.to_string(),
                    stats.htm_commits.to_string(),
                    stats.htm_aborts.to_string(),
                    fmt_pct(stats.htm_abort_rate()),
                    stats.htm_conflicts.to_string(),
                    stats.htm_capacity.to_string(),
                    stats.htm_events.to_string(),
                    fmt_pct(stats.fallback_rate()),
                ]);
            }
            table.print();
        }
    }
}
