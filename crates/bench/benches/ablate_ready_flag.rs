//! Ablation (paper §V): Listing 3 (produce while holding the queue lock,
//! non-2PL) vs. Listing 4 (ready flag) under the baseline locks.
//!
//! The paper states: "Across several workload configurations and thread
//! counts, we confirmed that this modification did not affect performance."
//! This bench reproduces that check — and the ready-flag variant is then
//! also run under TLE, which the Listing 3 shape cannot be.

use std::sync::Arc;
use tle_bench::{fmt_secs, thread_sweep, Table};
use tle_core::{AlgoMode, TmSystem, ALL_MODES};
use tle_wfe::lookahead::{NestedQueue, ReadyQueue};

const ITEMS: u64 = 5_000;

/// Simulated produce step (the work x265 does per lookahead node: a frame
/// complexity estimate — tens of microseconds, dwarfing the queue ops, as
/// in the paper's setting where the parity claim is made).
fn produce_work(i: u64) -> u64 {
    let mut acc = i;
    for _ in 0..20_000 {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    acc
}

fn run_nested(producers: usize) -> f64 {
    let q: Arc<NestedQueue<u64>> = Arc::new(NestedQueue::new());
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..ITEMS / producers as u64 {
                    // Listing 3: lock held across the produce step.
                    q.produce_while_locked(|| Box::new(produce_work(p as u64 * ITEMS + i)));
                }
            })
        })
        .collect();
    let consumer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while let Some(v) = q.pop() {
                std::hint::black_box(*v);
                n += 1;
            }
            n
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    q.close();
    consumer.join().unwrap();
    t0.elapsed().as_secs_f64()
}

fn run_ready(sys: &Arc<TmSystem>, producers: usize) -> f64 {
    let q: Arc<ReadyQueue<u64>> = Arc::new(ReadyQueue::new(64));
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let sys = Arc::clone(sys);
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let th = sys.register();
                for i in 0..ITEMS / producers as u64 {
                    // Listing 4: reserve, produce outside the lock, publish.
                    let Some(r) = q.reserve(&th) else { break };
                    let item = produce_work(p as u64 * ITEMS + i);
                    q.publish(&th, r, Box::new(item));
                }
            })
        })
        .collect();
    let consumer = {
        let sys = Arc::clone(sys);
        let q = Arc::clone(&q);
        std::thread::spawn(move || {
            let th = sys.register();
            let mut n = 0u64;
            while let Some(v) = q.pop_ready(&th) {
                std::hint::black_box(*v);
                n += 1;
            }
            n
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    {
        let th = sys.register();
        q.close(&th);
    }
    consumer.join().unwrap();
    t0.elapsed().as_secs_f64()
}

fn main() {
    println!("Ready-flag ablation ({ITEMS} items through the lookahead queue)");

    // Part 1: the paper's performance-parity check, baseline locks only.
    let mut t1 = Table::new(
        "§V: Listing 3 (nested, pthread-only) vs Listing 4 (ready flag), baseline",
        &["producers", "listing3-sec", "listing4-sec"],
    );
    for producers in thread_sweep() {
        let nested = run_nested(producers);
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let ready = run_ready(&sys, producers);
        t1.row(vec![
            producers.to_string(),
            fmt_secs(nested),
            fmt_secs(ready),
        ]);
    }
    t1.print();
    println!("\npaper claim: the refactoring does not affect (baseline) performance");

    // Part 2: the refactored shape is what TLE can elide.
    let mut t2 = Table::new(
        "§V: Listing 4 under every algorithm (2 producers)",
        &["algorithm", "seconds"],
    );
    for mode in ALL_MODES {
        let sys = Arc::new(TmSystem::new(mode));
        t2.row(vec![mode.label().to_string(), fmt_secs(run_ready(&sys, 2))]);
    }
    t2.print();
}
