//! Ablation (paper §VII-A): the HTM retry-before-serialize policy.
//!
//! The paper uses 2 retries (GCC's default) and observes 13-18% fallback
//! rates, remarking that "it would be beneficial for programmers to be
//! able to suggest retry policies on a transaction-by-transaction basis".
//! This bench sweeps the retry knob on the PBZip2 queue workload.

use std::sync::Arc;
use tle_bench::workloads::TrialStats;
use tle_bench::{fmt_pct, fmt_secs, full_sweep, Table};
use tle_core::{AlgoMode, TlePolicy, TmSystem};
use tle_htm::HtmConfig;
use tle_pbz::{compress_parallel, PipelineConfig};

fn main() {
    let input_len = if full_sweep() { 12_000_000 } else { 2_000_000 };
    let input = tle_pbz::gen_text(0x650, input_len);
    let workers = 4;
    let bs = 100_000;
    println!(
        "HTM retry ablation: PBZip2 compress, {} MB, {} workers, block {}K",
        input_len / 1_000_000,
        workers,
        bs / 1000
    );

    let mut table = Table::new(
        "§VII-A ablation: HTM retries before serial fallback",
        &["retries", "seconds", "abort-rate", "fallback-rate"],
    );
    for retries in [1u32, 2, 4, 8, 16] {
        // Interrupt-pressure hardware model: on this host true conflict
        // aborts are rare (threads timeshare one CPU), so the retry knob is
        // exercised against event aborts, the other big TSX abort class.
        let sys = Arc::new(
            TmSystem::builder()
                .mode(AlgoMode::HtmCondvar)
                .policy(TlePolicy {
                    htm_retries: retries,
                    ..TlePolicy::default()
                })
                .htm_config(HtmConfig {
                    event_prob: 2e-2,
                    ..HtmConfig::default()
                })
                .build(),
        );
        let cfg = PipelineConfig {
            workers,
            block_size: bs,
            fifo_cap: 8,
        };
        let t0 = std::time::Instant::now();
        let out = compress_parallel(&sys, &input, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        std::hint::black_box(&out);
        let stats = TrialStats::capture(&sys);
        table.row(vec![
            retries.to_string(),
            fmt_secs(secs),
            fmt_pct(stats.htm_abort_rate()),
            fmt_pct(stats.fallback_rate()),
        ]);
    }
    table.print();
    println!(
        "\npaper configuration is 2 retries; more retries trade spin time for fewer serializations"
    );
}
