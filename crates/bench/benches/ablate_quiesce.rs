//! Ablation (paper §IV): what does one quiescence drain cost, and how does
//! it scale with the number of concurrently running transactions?
//!
//! The paper argues drain cost grows linearly with thread count (one slot
//! to poll per thread) and that a long-running transaction blocks
//! *unrelated* committers. Both effects are measured directly here.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tle_base::TCell;
use tle_bench::Table;
use tle_core::{AlgoMode, ElidableMutex, TmSystem};
use tle_stm::QuiescePolicy;

fn main() {
    println!("Quiescence ablation");
    drain_scaling();
    long_tx_blocking();
}

/// Committer latency vs. number of concurrently active transactions.
fn drain_scaling() {
    let mut table = Table::new(
        "§IV: commit latency vs active transactions (ns/commit)",
        &["active-txns", "Always", "Never"],
    );
    for active in [0usize, 1, 2, 4, 8] {
        let mut cells = vec![active.to_string()];
        for policy in [QuiescePolicy::Always, QuiescePolicy::Never] {
            let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
            sys.stm.set_policy(policy);
            let stop = Arc::new(AtomicBool::new(false));
            // Background threads running short back-to-back transactions.
            let bg: Vec<_> = (0..active)
                .map(|i| {
                    let sys = Arc::clone(&sys);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let th = sys.register();
                        let lock = ElidableMutex::new("bg");
                        let cell = TCell::new(0u64);
                        let mut spin = i as u64;
                        while !stop.load(Ordering::Relaxed) {
                            th.tx(&lock).run(|ctx| {
                                ctx.update(&cell, |v| v + 1)?;
                                Ok(())
                            });
                            // Hold some non-transactional time so drains
                            // actually observe running transactions.
                            spin = spin.wrapping_mul(6364136223846793005).wrapping_add(1);
                            if spin.is_multiple_of(4) {
                                std::hint::spin_loop();
                            }
                        }
                    })
                })
                .collect();
            // Measured committer.
            let th = sys.register();
            let lock = ElidableMutex::new("fg");
            let cell = TCell::new(0u64);
            const OPS: u64 = 50_000;
            let t0 = std::time::Instant::now();
            for _ in 0..OPS {
                th.tx(&lock).run(|ctx| {
                    ctx.update(&cell, |v| v + 1)?;
                    Ok(())
                });
            }
            let ns = t0.elapsed().as_nanos() as f64 / OPS as f64;
            stop.store(true, Ordering::Relaxed);
            for h in bg {
                h.join().unwrap();
            }
            cells.push(format!("{ns:.0}"));
        }
        table.row(cells);
    }
    table.print();
}

/// A long-running transaction delays an unrelated committer's drain.
fn long_tx_blocking() {
    let mut table = Table::new(
        "§IV: unrelated-committer latency with one long transaction in flight (us/commit)",
        &["long-tx", "Always", "Selective+NoQuiesce"],
    );
    for long_running in [false, true] {
        let mut cells = vec![long_running.to_string()];
        for (policy, use_noq) in [
            (QuiescePolicy::Always, false),
            (QuiescePolicy::Selective, true),
        ] {
            let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
            sys.stm.set_policy(policy);
            let stop = Arc::new(AtomicBool::new(false));
            let long = if long_running {
                let sys = Arc::clone(&sys);
                let stop = Arc::clone(&stop);
                Some(std::thread::spawn(move || {
                    let th = sys.register();
                    let lock = ElidableMutex::new("long");
                    let cells: Vec<TCell<u64>> = (0..512).map(TCell::new).collect();
                    while !stop.load(Ordering::Relaxed) {
                        // A transaction that reads a lot and dawdles.
                        th.tx(&lock).run(|ctx| {
                            let mut acc = 0u64;
                            for c in &cells {
                                acc = acc.wrapping_add(ctx.read(c)?);
                            }
                            for _ in 0..2000 {
                                std::hint::spin_loop();
                            }
                            std::hint::black_box(acc);
                            Ok(())
                        });
                    }
                }))
            } else {
                None
            };
            let th = sys.register();
            let lock = ElidableMutex::new("fg");
            let cell = TCell::new(0u64);
            const OPS: u64 = 20_000;
            let t0 = std::time::Instant::now();
            for _ in 0..OPS {
                th.tx(&lock).run(|ctx| {
                    ctx.update(&cell, |v| v + 1)?;
                    if use_noq {
                        ctx.no_quiesce();
                    }
                    Ok(())
                });
            }
            let us = t0.elapsed().as_micros() as f64 / OPS as f64;
            stop.store(true, Ordering::Relaxed);
            if let Some(h) = long {
                h.join().unwrap();
            }
            cells.push(format!("{us:.2}"));
        }
        table.row(cells);
    }
    table.print();
    println!("\npaper claim: the drain makes unrelated committers wait for long transactions;\nTM_NoQuiesce removes that coupling for transactions that do not privatize");
}
