//! Adaptive per-lock policy (extension): fixed modes vs. the feedback
//! controller across a phase-shifting workload.
//!
//! The paper's experience reports make one point repeatedly: no single
//! algorithm wins everywhere — HTM loses to capacity overflows (§VII-B),
//! STM loses to conflict storms that end in serial convoys, and the
//! baseline lock wins exactly when speculation keeps failing. A per-lock
//! controller that watches the abort-cause mix can hop between them.
//!
//! Three phases, same lock, run back to back:
//!
//! - **capacity**: every section writes more lines than the simulated
//!   HTM's write capacity, from per-thread disjoint regions. HTM burns
//!   two doomed speculative passes per section before convoying through
//!   the serial gate; STM commits first try.
//! - **storm**: read-modify-write of one hot pair with a scheduler yield
//!   between the reads and the writes, so another thread's commit lands
//!   mid-section. Every speculative flavour pays repeated doomed passes;
//!   the plain lock just holds the mutex across the yield.
//! - **read-mostly**: read-dominated sections with rare writes. Elision
//!   commits without bouncing the lock word.
//!
//! Sections carry plain (uninstrumented) compute ballast so per-access
//! instrumentation is a small fraction of section cost — the differences
//! that remain are the *wasted work* each policy causes: doomed passes,
//! retries, serial convoys. On a single-CPU host (CI) that wasted work is
//! exactly what separates the columns, since parallel speedup is zero by
//! construction; the storm phase's yields stand in for the preemption
//! interleavings a multi-core run produces naturally.
//!
//! The controller run starts from `HtmCondvar` and must discover
//! HTM → STM (capacity), STM → Baseline (storm), Baseline → HTM (probe)
//! on its own. Expected: the adaptive column tracks the best fixed mode in
//! every phase and beats the worst fixed total by a wide margin.

use std::sync::{Arc, Barrier};
use tle_base::{Padded, TCell};
use tle_bench::{fmt_secs, Table};
use tle_core::{AdaptiveConfig, AlgoMode, ElidableMutex, ModeSwitchEvent, TmSystem};

const THREADS: usize = 4;
/// More distinct cache lines than the simulated HTM's `write_cap_lines`
/// (128). The cells must be line-`Padded`: contiguous `TCell<u64>`s pack
/// eight to a line and would never overflow the write set.
const CAP_CELLS: usize = 144;
const CAP_OPS: u64 = 320;
const STORM_OPS: u64 = 10_000;
const READ_OPS: u64 = 16_000;

/// Ballast rounds: multiply-rotate chains on a local, no shared state.
/// Sized so per-access instrumentation stays a small fraction of section
/// cost (the paper's sections do real work between their accesses too).
const CAP_BALLAST: u32 = 896;
const STORM_BALLAST: u32 = 256;
const READ_BALLAST: u32 = 480;

const PHASES: [&str; 3] = ["capacity", "storm", "read-mostly"];

/// Plain compute: the uninstrumented "real work" of a critical section.
#[inline(always)]
fn churn(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
    }
    x
}

struct Workload {
    /// Per-thread disjoint write regions (capacity phase), one cell per
    /// cache line so each counts against the HTM write capacity.
    regions: Vec<Vec<Padded<TCell<u64>>>>,
    /// The contended pair (storm phase).
    hot: Vec<Padded<TCell<u64>>>,
    /// The read-mostly array.
    cold: Vec<TCell<u64>>,
}

impl Workload {
    fn new() -> Self {
        Workload {
            regions: (0..THREADS)
                .map(|_| (0..CAP_CELLS).map(|_| Padded(TCell::new(0))).collect())
                .collect(),
            hot: (0..2).map(|_| Padded(TCell::new(0))).collect(),
            cold: (0..8).map(|_| TCell::new(0)).collect(),
        }
    }
}

/// Run one phase with all threads aligned on barriers; returns seconds.
fn run_phase(sys: &Arc<TmSystem>, lock: &ElidableMutex, w: &Arc<Workload>, phase: usize) -> f64 {
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let sys = Arc::clone(sys);
            let lock = lock.clone();
            let w = Arc::clone(w);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let th = sys.register();
                barrier.wait();
                let mut acc = 0u64;
                match phase {
                    0 => {
                        for _ in 0..CAP_OPS {
                            th.tx(&lock).run(|ctx| {
                                for c in &w.regions[t] {
                                    let v = ctx.read(&**c)?;
                                    ctx.write(&**c, churn(v, CAP_BALLAST).wrapping_add(1))?;
                                }
                                Ok(())
                            });
                        }
                    }
                    1 => {
                        for _ in 0..STORM_OPS {
                            th.tx(&lock).run(|ctx| {
                                let a = ctx.read(&*w.hot[0])?;
                                let b = ctx.read(&*w.hot[1])?;
                                // Mid-section yield: on one CPU this hands
                                // the core to a sibling whose commit then
                                // invalidates our reads — the interleaving
                                // a multi-core box produces for free.
                                std::thread::yield_now();
                                ctx.write(&*w.hot[0], churn(a, STORM_BALLAST) | 1)?;
                                ctx.write(&*w.hot[1], churn(b, STORM_BALLAST) | 1)?;
                                Ok(())
                            });
                        }
                    }
                    _ => {
                        for i in 0..READ_OPS {
                            acc ^= th.tx(&lock).run(|ctx| {
                                let mut sum = 0u64;
                                for c in &w.cold {
                                    sum ^= churn(ctx.read(c)?, READ_BALLAST);
                                }
                                if i % 64 == 0 {
                                    ctx.write(&w.cold[0], sum | 1)?;
                                }
                                Ok(sum)
                            });
                            if i % 16 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                std::hint::black_box(acc);
            })
        })
        .collect();
    barrier.wait();
    let t0 = std::time::Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    t0.elapsed().as_secs_f64()
}

/// The three phases under one fixed mode (or the adaptive controller).
/// Returns per-phase seconds plus the controller's switch log.
fn run_config(adaptive: bool, mode: AlgoMode) -> ([f64; 3], Vec<ModeSwitchEvent>) {
    let sys = Arc::new(
        TmSystem::builder()
            .mode(mode)
            .adaptive(adaptive)
            .adaptive_config(AdaptiveConfig {
                // React within a couple of controller steps of a phase
                // change, and keep baseline probes rare enough that a
                // storm parked on the lock pays ~1% speculative probing.
                min_dwell_steps: 2,
                min_window_samples: 16,
                baseline_probe_steps: 200,
                ..AdaptiveConfig::default()
            })
            .build(),
    );
    let lock = ElidableMutex::new("adapt-bench");
    let w = Arc::new(Workload::new());
    let ctrl = if adaptive {
        sys.adopt_lock(&lock);
        Some(sys.start_controller(std::time::Duration::from_millis(1)))
    } else {
        None
    };
    let mut secs = [0.0f64; 3];
    for (i, s) in secs.iter_mut().enumerate() {
        *s = run_phase(&sys, &lock, &w, i);
    }
    if let Some(c) = ctrl {
        c.stop();
    }
    (secs, sys.mode_switches())
}

/// Repetitions per config; per-phase medians reject the scheduler noise a
/// timeshared single-CPU runner injects into sub-second phases.
const REPS: usize = 3;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn main() {
    let configs: [(&str, bool, AlgoMode); 4] = [
        ("pthread", false, AlgoMode::Baseline),
        ("STM+CondVar", false, AlgoMode::StmCondvar),
        ("HTM+CondVar", false, AlgoMode::HtmCondvar),
        ("adaptive", true, AlgoMode::HtmCondvar),
    ];
    let mut table = Table::new(
        "per-lock adaptive policy vs fixed modes (phase-shifting workload)",
        &["config", PHASES[0], PHASES[1], PHASES[2], "total"],
    );
    let mut switch_log = Vec::new();
    let mut totals = Vec::new();
    let mut per_phase: Vec<[f64; 3]> = Vec::new();
    for (label, adaptive, mode) in configs {
        let mut reps: Vec<([f64; 3], Vec<ModeSwitchEvent>)> = Vec::new();
        for _ in 0..REPS {
            reps.push(run_config(adaptive, mode));
        }
        let mut secs = [0.0f64; 3];
        for (i, s) in secs.iter_mut().enumerate() {
            *s = median(reps.iter().map(|(p, _)| p[i]).collect());
        }
        let switches = reps.pop().unwrap().1;
        let total: f64 = secs.iter().sum();
        table.row(vec![
            label.to_string(),
            fmt_secs(secs[0]),
            fmt_secs(secs[1]),
            fmt_secs(secs[2]),
            fmt_secs(total),
        ]);
        totals.push((label, total));
        per_phase.push(secs);
        if adaptive {
            switch_log = switches;
        }
    }
    table.print();

    println!("\ncontroller trajectory ({} switches):", switch_log.len());
    for ev in &switch_log {
        println!("  {ev}");
    }

    let adaptive_secs = per_phase[3];
    for (i, phase) in PHASES.iter().enumerate() {
        let best = per_phase[..3]
            .iter()
            .map(|s| s[i])
            .fold(f64::INFINITY, f64::min);
        println!(
            "phase {phase}: adaptive {} vs best fixed {} ({:+.1}%)",
            fmt_secs(adaptive_secs[i]),
            fmt_secs(best),
            (adaptive_secs[i] / best - 1.0) * 100.0
        );
    }
    let adaptive_total = totals[3].1;
    let worst_fixed = totals[..3].iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
    println!(
        "total: adaptive {} vs worst fixed {} ({:.2}x faster)",
        fmt_secs(adaptive_total),
        fmt_secs(worst_fixed),
        worst_fixed / adaptive_total
    );
}
