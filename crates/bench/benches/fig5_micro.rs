//! Figure 5 (a-f): set-microbenchmark throughput vs. threads for the three
//! quiescence configurations (STM = always drain, NoQ = never,
//! SelectNoQ = the paper's `TM_NoQuiesce`).
//!
//! Paper shapes to reproduce:
//! - list (high contention): SelectNoQ ≈ NoQ, both above STM; with 50%
//!   lookups SelectNoQ can *beat* NoQ (occasional drains act as congestion
//!   control);
//! - hash/tree (lower contention): SelectNoQ on par with, slightly below,
//!   NoQ; both above STM.

use tle_bench::workloads::{micro_trial, Mix};
use tle_bench::{full_sweep, thread_sweep, trials, Table};
use tle_stm::QuiescePolicy;

const POLICIES: [QuiescePolicy; 3] = [
    QuiescePolicy::Always,
    QuiescePolicy::Never,
    QuiescePolicy::Selective,
];

fn main() {
    let ops: u64 = if full_sweep() { 300_000 } else { 100_000 };
    let n_trials = trials(if full_sweep() { 3 } else { 2 });
    println!("Figure 5: set microbenchmarks, {ops} ops/thread, {n_trials} trials per point");

    let panels = [
        ("a", "list", Mix::UpdateOnly),
        ("b", "list", Mix::HalfLookup),
        ("c", "hash", Mix::UpdateOnly),
        ("d", "hash", Mix::HalfLookup),
        ("e", "tree", Mix::UpdateOnly),
        ("f", "tree", Mix::HalfLookup),
    ];
    for (letter, kind, mix) in panels {
        let mut table = Table::new(
            &format!(
                "Fig 5 ({letter}): {kind} set, {} — throughput (Mops/s)",
                mix.label()
            ),
            &["threads", "STM", "NoQ", "SelectNoQ"],
        );
        for threads in thread_sweep() {
            let mut row = vec![threads.to_string()];
            for policy in POLICIES {
                let mut total = 0.0;
                for _ in 0..n_trials {
                    total += micro_trial(kind, policy, threads, mix, ops).0;
                }
                row.push(format!("{:.3}", total / n_trials as f64 / 1e6));
            }
            table.row(row);
        }
        table.print();
    }
}
