//! Criterion micro-benchmarks for the TM primitives: cell access, orec
//! protocol, transaction begin/commit, quiescence drain, HTM access path.
//! Not a paper figure — engineering baselines for the runtime itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use tle_base::{OrecTable, TCell};
use tle_core::{AlgoMode, ElidableMutex, TmSystem};
use tle_stm::{QuiescePolicy, StmGlobal};

fn bench_tcell(c: &mut Criterion) {
    let cell = TCell::new(7u64);
    c.bench_function("tcell/load_direct", |b| {
        b.iter(|| black_box(cell.load_direct()))
    });
    c.bench_function("tcell/store_direct", |b| {
        b.iter(|| cell.store_direct(black_box(9u64)))
    });
}

fn bench_orec(c: &mut Criterion) {
    let t = OrecTable::new();
    c.bench_function("orec/index_of", |b| {
        b.iter(|| black_box(t.index_of(black_box(0xDEAD_BEEF))))
    });
    c.bench_function("orec/lock_release", |b| {
        let i = t.index_of(0x1000);
        b.iter(|| {
            let seen = t.load(i);
            assert!(t.try_lock(i, seen, 1));
            t.release(i, (seen >> 1) + 1);
        })
    });
}

fn bench_stm_tx(c: &mut Criterion) {
    let g = StmGlobal::new(QuiescePolicy::Never);
    let slot = g.slots.register_raw().unwrap();
    let cell = TCell::new(0u64);
    c.bench_function("stm/ro_tx_1read", |b| {
        b.iter(|| {
            let mut tx = g.begin(slot);
            black_box(tx.read(&cell).unwrap());
            tx.commit().unwrap();
        })
    });
    c.bench_function("stm/rw_tx_1write", |b| {
        b.iter(|| {
            let mut tx = g.begin(slot);
            tx.update(&cell, |v| v + 1).unwrap();
            tx.commit().unwrap();
        })
    });
    let g_q = StmGlobal::new(QuiescePolicy::Always);
    let slot_q = g_q.slots.register_raw().unwrap();
    let cell_q = TCell::new(0u64);
    c.bench_function("stm/rw_tx_1write_with_quiesce", |b| {
        b.iter(|| {
            let mut tx = g_q.begin(slot_q);
            tx.update(&cell_q, |v| v + 1).unwrap();
            tx.commit().unwrap();
        })
    });
}

fn bench_tle_modes(c: &mut Criterion) {
    for mode in [
        AlgoMode::Baseline,
        AlgoMode::StmCondvar,
        AlgoMode::HtmCondvar,
    ] {
        let sys = Arc::new(TmSystem::new(mode));
        let th = sys.register();
        let lock = ElidableMutex::new("bench");
        let cell = TCell::new(0u64);
        c.bench_function(format!("tle/incr/{}", mode.label()), |b| {
            b.iter(|| {
                th.tx(&lock).run(|ctx| {
                    ctx.update(&cell, |v| v + 1)?;
                    Ok(())
                })
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tcell, bench_orec, bench_stm_tx, bench_tle_modes
}
criterion_main!(benches);
