//! §VII-A in-text statistics: transaction counts, STM abort rate, HTM
//! fallback rate for the PBZip2 workload.
//!
//! Paper reference points (650 MB input): 950-1100 transactions, ~0.1% of
//! STM transactions aborted at least once, 13-18% of HTM transactions
//! aborted twice and fell back to serial mode.

use tle_bench::workloads::pbzip_compress_trial;
use tle_bench::{fmt_pct, full_sweep, Table};
use tle_core::AlgoMode;

fn main() {
    let input_len = if full_sweep() { 24_000_000 } else { 3_000_000 };
    let input = tle_pbz::gen_text(0x650, input_len);
    let bs = 100_000;
    println!(
        "PBZip2 transaction statistics (input {} MB, block {}K, 4 workers)",
        input_len / 1_000_000,
        bs / 1000
    );

    let mut table = Table::new(
        "§VII-A PBZip2 statistics",
        &[
            "algorithm",
            "commits",
            "aborts",
            "abort-rate",
            "serial-fallbacks",
            "fallback-rate",
            "per-cause breakdown",
        ],
    );
    for mode in [AlgoMode::StmCondvar, AlgoMode::HtmCondvar] {
        let (_, stats) = pbzip_compress_trial(mode, 4, bs, &input);
        let (commits, aborts, abort_rate) = if mode == AlgoMode::HtmCondvar {
            (stats.htm_commits, stats.htm_aborts, stats.htm_abort_rate())
        } else {
            (stats.stm.commits, stats.stm.aborts, stats.stm.abort_rate())
        };
        table.row(vec![
            mode.label().to_string(),
            commits.to_string(),
            aborts.to_string(),
            fmt_pct(abort_rate),
            stats.serial_fallbacks.to_string(),
            fmt_pct(stats.fallback_rate()),
            // Measured by the diagnostics layer: which cause each abort
            // was attributed to, summed over both TM domains.
            stats.abort_breakdown(),
        ]);
    }
    table.print();
    println!(
        "\npaper reference: ~1000 transactions, STM abort rate ~0.1%, HTM fallback 13-18%\n\
         (our transaction count scales with input size / block size; rates are the comparable shape)"
    );
}
