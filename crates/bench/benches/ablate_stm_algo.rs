//! Ablation: `ml_wt` (the paper's STM) vs NOrec on the Figure 5 set
//! microbenchmarks and the PBZip2 queue workload.
//!
//! The interesting contrast: `ml_wt` pays a per-commit quiescence drain for
//! privatization safety (which `TM_NoQuiesce` selectively removes); NOrec
//! is privatization-safe by construction — but serializes all writer
//! commits through one sequence lock and re-validates by value. Who wins
//! depends on write-commit frequency and read-set sizes.

use std::sync::Arc;
use tle_bench::workloads::{micro_trial_algo, Mix};
use tle_bench::{fmt_secs, thread_sweep, Table};
use tle_core::{AlgoMode, TmSystem};
use tle_pbz::{compress_parallel, PipelineConfig};
use tle_stm::{QuiescePolicy, StmAlgo};

fn main() {
    println!("STM algorithm ablation: ml_wt vs NOrec");

    // Part 1: set microbenchmarks.
    for (kind, mix) in [
        ("list", Mix::HalfLookup),
        ("hash", Mix::HalfLookup),
        ("tree", Mix::HalfLookup),
    ] {
        let mut table = Table::new(
            &format!("{kind} set, {} — throughput (Mops/s)", mix.label()),
            &["threads", "ml_wt", "ml_wt+SelectNoQ", "NOrec"],
        );
        for threads in thread_sweep() {
            let mut row = vec![threads.to_string()];
            for (algo, policy) in [
                (StmAlgo::MlWt, QuiescePolicy::Always),
                (StmAlgo::MlWt, QuiescePolicy::Selective),
                (StmAlgo::Norec, QuiescePolicy::Always),
            ] {
                let (tput, _) = micro_trial_algo(kind, policy, algo, threads, mix, 60_000);
                row.push(format!("{:.3}", tput / 1e6));
            }
            table.row(row);
        }
        table.print();
    }

    // Part 2: the PBZip2 pipeline.
    let input = tle_pbz::gen_text(0x650, 2_000_000);
    let mut table = Table::new(
        "PBZip2 compress (2 MB, 4 workers, 100K blocks) — seconds",
        &["algo", "seconds"],
    );
    for algo in [StmAlgo::MlWt, StmAlgo::Norec] {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        sys.set_stm_algo(algo);
        let cfg = PipelineConfig {
            workers: 4,
            block_size: 100_000,
            fifo_cap: 8,
        };
        let t0 = std::time::Instant::now();
        let out = compress_parallel(&sys, &input, &cfg);
        std::hint::black_box(&out);
        table.row(vec![
            algo.label().to_string(),
            fmt_secs(t0.elapsed().as_secs_f64()),
        ]);
    }
    table.print();
}
