//! Ablation (extension): TMTS-style fallback (global serialization) vs
//! glibc-style fallback (the lock itself), under failure pressure.
//!
//! Paper §II-C: "any serialization of any transaction (whether due to
//! irrevocability or contention) causes unrelated transactions to be
//! suspended. … If a programmer identified critical sections that could be
//! protected by disjoint sets of locks, and then used TM to elide those
//! locks, they cease to be treated as disjoint from the perspective of the
//! TM system."
//!
//! The workload makes that concrete: each thread hammers **its own lock**
//! (fully disjoint). Under event-abort pressure, `HTM+CondVar` routes
//! failures through the global serial gate — strangling every other
//! thread — while `AdaptiveHTM(glibc)` falls back to the one affected lock.

use std::sync::Arc;
use tle_base::Padded;
use tle_bench::{fmt_pct, fmt_secs, thread_sweep, Table};
use tle_core::{AlgoMode, ElidableMutex, TmSystem};
use tle_htm::HtmConfig;

const OPS_PER_THREAD: u64 = 30_000;

fn run(mode: AlgoMode, threads: usize, event_prob: f64) -> (f64, f64) {
    let sys = Arc::new(
        TmSystem::builder()
            .mode(mode)
            .htm_config(HtmConfig {
                event_prob,
                ..HtmConfig::default()
            })
            .build(),
    );
    // Cache-line padding matters here exactly as on real TSX: adjacent
    // lock words would share a conflict-table line and make "disjoint"
    // locks alias (the classic lock-elision false-sharing gotcha).
    let locks: Arc<Vec<Padded<ElidableMutex>>> = Arc::new(
        (0..threads)
            .map(|_| Padded(ElidableMutex::new("disjoint")))
            .collect(),
    );
    let cells: Arc<Vec<Padded<tle_base::TCell<u64>>>> = Arc::new(
        (0..threads)
            .map(|_| Padded(tle_base::TCell::new(0)))
            .collect(),
    );
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let sys = Arc::clone(&sys);
            let locks = Arc::clone(&locks);
            let cells = Arc::clone(&cells);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let th = sys.register();
                barrier.wait();
                for _ in 0..OPS_PER_THREAD {
                    th.tx(&locks[t]).run(|ctx| {
                        ctx.update(&cells[t], |v| v + 1)?;
                        Ok(())
                    });
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = std::time::Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    for c in cells.iter() {
        assert_eq!(c.load_direct(), OPS_PER_THREAD);
    }
    let total = threads as f64 * OPS_PER_THREAD as f64;
    let fallback_rate = sys.stats.serial_fallbacks.get() as f64 / total;
    (secs, fallback_rate)
}

fn main() {
    println!("Fallback-model ablation: disjoint per-thread locks, {OPS_PER_THREAD} ops/thread");
    for event_prob in [0.0, 0.02] {
        let mut table = Table::new(
            &format!("event_prob = {event_prob}: serial fallback vs lock fallback (seconds)"),
            &[
                "threads",
                "HTM+CondVar",
                "fallback%",
                "AdaptiveHTM(glibc)",
                "fallback%",
            ],
        );
        for threads in thread_sweep() {
            let (tmts, fb1) = run(AlgoMode::HtmCondvar, threads, event_prob);
            let (glibc, fb2) = run(AlgoMode::AdaptiveHtm, threads, event_prob);
            table.row(vec![
                threads.to_string(),
                fmt_secs(tmts),
                fmt_pct(fb1),
                fmt_secs(glibc),
                fmt_pct(fb2),
            ]);
        }
        table.print();
    }
    println!(
        "\npaper §II-C: under the TMTS, disjoint locks cease to be treated as disjoint;\n\
         the glibc model keeps failures local to the failing lock"
    );
}
