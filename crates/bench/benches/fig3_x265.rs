//! Figure 3 (a-c): x265 speedup (vs. single-threaded pthread) against
//! worker threads for small/medium/large inputs, all five algorithms.
//!
//! Paper shape to reproduce: HTM+CondVar outperforms pthread in almost
//! every case (peak +9.5% at 4 threads); STM+Spin is disastrous; the
//! STM+CondVar variants track pthread closely.

use tle_bench::workloads::{x265_trial, VideoSize};
use tle_bench::{fmt_x, full_sweep, thread_sweep, trials, Table};
use tle_core::{AlgoMode, ALL_MODES};

fn main() {
    let full = full_sweep();
    let n_trials = trials(if full { 5 } else { 2 });
    println!("Figure 3: x265 speedup vs 1-thread pthread, {n_trials} trials per point");

    for (i, size) in [VideoSize::Small, VideoSize::Medium, VideoSize::Large]
        .into_iter()
        .enumerate()
    {
        let (w, h, n) = size.params(full);
        let panel = format!(
            "Fig 3 ({}): {} input ({}x{}, {} frames) — speedup",
            ["a", "b", "c"][i],
            size.label(),
            w,
            h,
            n
        );
        let mut headers = vec!["threads".to_string()];
        headers.extend(ALL_MODES.iter().map(|m| m.label().to_string()));
        let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&panel, &href);

        // Baseline: single-threaded pthread.
        let mut base = 0.0;
        for _ in 0..n_trials {
            base += x265_trial(AlgoMode::Baseline, 1, size, full).0;
        }
        base /= n_trials as f64;

        for threads in thread_sweep() {
            let mut row = vec![threads.to_string()];
            for mode in ALL_MODES {
                let mut total = 0.0;
                for _ in 0..n_trials {
                    total += x265_trial(mode, threads, size, full).0;
                }
                let mean = total / n_trials as f64;
                row.push(fmt_x(base / mean));
            }
            table.row(row);
        }
        table.print();
    }
}
