//! The perf-trajectory subsystem behind `BENCH_<n>.json`.
//!
//! Each PR that claims a performance effect commits one machine-readable
//! trajectory file: per-figure/per-workload throughput, the per-cause abort
//! breakdown, the quiescence-latency histogram, and a `baseline` /
//! `optimized` pair for every optimization it lands. CI re-emits a quick
//! report and runs [`compare`] against the committed artifact, so a later
//! change that silently costs >10% throughput on any recorded run fails the
//! build (schema drift — a run disappearing — fails even harder).
//!
//! Everything here is dependency-free: the document is a [`Json`] tree with
//! a fixed key order, and [`stable_view`] strips every `"measured"` subtree
//! so two runs of the same emitter on the same machine produce identical
//! stable views (determinism modulo timing).

use crate::json::Json;
use crate::workloads::{
    lazy_subscription_trial, micro_trial_opts, pbzip_compress_trial, pbzip_decompress_trial,
    x265_trial, MicroOpts, Mix, TrialStats, VideoSize,
};
use std::sync::Arc;
use std::time::Duration;
use tle_base::stats::HIST_BUCKETS;
use tle_base::{AbortCause, OrecLayout};
use tle_core::{AlgoMode, TmSystem};
use tle_kv::{
    build_system, run_driver_on, run_session_driver_async_on, run_session_driver_threads_on,
    KvConfig, KvReport, SessionConfig,
};
use tle_pbz::{compress_parallel, gen_text, PipelineConfig};
use tle_stm::QuiescePolicy;

/// Document type tag.
pub const SCHEMA: &str = "tle-bench-trajectory";
/// Bumped on any incompatible schema change. Version 2 adds the `kv`
/// serving-workload runs, whose `measured` subtree carries `latency` and
/// `requests` objects on top of the version-1 fields. Version 3 adds the
/// `kv-sessions` figure: the async session-multiplexing curve, same
/// `measured` shape as the `kv` runs.
pub const SCHEMA_VERSION: u64 = 3;
/// Oldest schema version [`validate`] still accepts: version-1 artifacts
/// (`BENCH_6.json` and earlier) remain parseable and comparable.
pub const MIN_SCHEMA_VERSION: u64 = 1;
/// The PR that committed this artifact generation.
pub const PR: u64 = 9;
/// Throughput regressions beyond this fraction fail [`compare`].
pub const TOLERANCE: f64 = 0.10;
/// Executor workers for every `kv-sessions` async run (the acceptance bar
/// is "≥ 1000 sessions on ≤ 8 workers").
pub const SESSION_WORKERS: usize = 8;

/// Emission knobs. `quick` and `full` deliberately share `threads` so their
/// run keys match: CI's quick emit compares cleanly against a committed
/// full-size artifact (only `ops`/input sizes differ, and those are not
/// part of the match key).
#[derive(Debug, Clone, Copy)]
pub struct EmitConfig {
    /// Human tag recorded in the document (`quick`, `full`, ...).
    pub label: &'static str,
    /// Worker threads for every run.
    pub threads: usize,
    /// Measured ops per thread for the fig5 microbenchmarks.
    pub micro_ops: u64,
    /// PBZip2 input size in KiB.
    pub pbzip_kib: usize,
    /// Trials per configuration (best-of, to damp scheduler noise).
    pub trials: usize,
    /// Include the application figures (fig2 PBZip2, fig3 x265). The
    /// microbenchmarks and optimization A/Bs always run.
    pub apps: bool,
    /// Session counts for the `kv-sessions` curve. Part of each run's
    /// match key, so quick and full share the same curve (a quick CI emit
    /// must produce every run the committed artifact records).
    pub sessions_curve: &'static [usize],
    /// Requests each logical session issues (not part of the match key).
    pub session_requests: u64,
    /// Per-request think time. With a closed loop this bounds goodput at
    /// `sessions / (think + service)`, so quick and full keep it equal and
    /// their goodputs stay comparable.
    pub session_think_ns: u64,
}

impl EmitConfig {
    /// CI smoke sizing: seconds, not minutes.
    pub fn quick() -> Self {
        EmitConfig {
            label: "quick",
            threads: 4,
            micro_ops: 4_000,
            pbzip_kib: 64,
            trials: 2,
            apps: true,
            sessions_curve: &[64, 256, 1000],
            session_requests: 6,
            session_think_ns: 2_000_000,
        }
    }

    /// Artifact sizing for the committed `BENCH_<n>.json`.
    pub fn full() -> Self {
        EmitConfig {
            label: "full",
            threads: 4,
            micro_ops: 40_000,
            pbzip_kib: 256,
            trials: 3,
            apps: true,
            sessions_curve: &[64, 256, 1000],
            session_requests: 25,
            session_think_ns: 2_000_000,
        }
    }
}

/// Schema-key metadata for one run (everything except the measurements).
struct RunSpec {
    figure: &'static str,
    workload: String,
    mix: String,
    mode: String,
    policy: String,
    threads: usize,
    ops: u64,
    warmup: u64,
    unit: &'static str,
}

fn measured_json(secs: f64, tput: f64, stats: &TrialStats) -> Json {
    let commits = stats.stm.commits.saturating_add(stats.htm_commits);
    let aborts = stats.stm.aborts.saturating_add(stats.htm_aborts);
    let attempts = commits.saturating_add(aborts);
    let abort_rate = if attempts == 0 {
        0.0
    } else {
        aborts as f64 / attempts as f64
    };
    let by_cause = Json::Obj(
        AbortCause::ALL
            .iter()
            .map(|&c| (c.label().to_string(), Json::u64(stats.cause(c))))
            .collect(),
    );
    let hist = Json::Arr(
        stats
            .stm
            .quiesce_hist
            .buckets
            .iter()
            .map(|&b| Json::u64(b))
            .collect(),
    );
    Json::Obj(vec![
        ("secs".into(), Json::f64(secs)),
        ("ops_per_sec".into(), Json::f64(tput)),
        ("commits".into(), Json::u64(commits)),
        ("aborts".into(), Json::u64(aborts)),
        ("abort_rate".into(), Json::f64(abort_rate)),
        ("serial_fallbacks".into(), Json::u64(stats.serial_fallbacks)),
        ("by_cause".into(), by_cause),
        (
            "quiesce".into(),
            // The drain machinery lives in the STM domain only.
            Json::Obj(vec![
                ("drains".into(), Json::u64(stats.stm.quiesces)),
                ("skipped".into(), Json::u64(stats.stm.quiesce_skipped)),
                ("wait_ns".into(), Json::u64(stats.stm.quiesce_wait_ns)),
                ("hist".into(), hist),
            ]),
        ),
    ])
}

/// `measured` for a kv serving run: the version-1 fields (goodput stands in
/// for `ops_per_sec`, so [`compare`] guards it like any throughput), plus
/// the latency and request-outcome objects version 2 adds.
fn kv_measured_json(r: &KvReport, stats: &TrialStats) -> Json {
    let Json::Obj(mut fields) = measured_json(r.secs, r.goodput_per_sec, stats) else {
        unreachable!("measured_json returns an object")
    };
    fields.push((
        "latency".into(),
        Json::Obj(vec![
            ("p50_ns".into(), Json::u64(r.p50_ns)),
            ("p99_ns".into(), Json::u64(r.p99_ns)),
            ("p999_ns".into(), Json::u64(r.p999_ns)),
        ]),
    ));
    fields.push((
        "requests".into(),
        Json::Obj(vec![
            ("offered".into(), Json::u64(r.offered)),
            ("completed".into(), Json::u64(r.completed)),
            ("shed".into(), Json::u64(r.shed)),
            ("deadline_miss".into(), Json::u64(r.deadline_miss)),
            (
                "max_admission_step".into(),
                Json::u64(r.max_admission_step as u64),
            ),
        ]),
    ));
    Json::Obj(fields)
}

fn kv_run_json(mix: &str, policy: &str, kv: &KvConfig, r: &KvReport, stats: &TrialStats) -> Json {
    Json::Obj(vec![
        ("figure".into(), Json::str("kv")),
        ("workload".into(), Json::str("kv-zipf")),
        ("mix".into(), Json::str(mix)),
        ("mode".into(), Json::str(kv.mode.label())),
        ("policy".into(), Json::str(policy)),
        ("threads".into(), Json::u64(kv.threads as u64)),
        ("ops".into(), Json::u64(r.offered)),
        ("warmup".into(), Json::u64(0)),
        ("unit".into(), Json::str("reqs/sec")),
        ("measured".into(), kv_measured_json(r, stats)),
    ])
}

/// One `kv-sessions` curve point. `policy` names the execution model
/// (`async-w8` / `threads`); `threads` records the OS threads actually
/// running sessions — the executor worker count for the async driver, one
/// per session for the baseline.
fn session_run_json(
    scfg: &SessionConfig,
    policy: &str,
    threads: usize,
    r: &KvReport,
    stats: &TrialStats,
) -> Json {
    Json::Obj(vec![
        ("figure".into(), Json::str("kv-sessions")),
        ("workload".into(), Json::str("kv-sessions")),
        ("mix".into(), Json::str(format!("s{}", scfg.sessions))),
        ("mode".into(), Json::str(scfg.base.mode.label())),
        ("policy".into(), Json::str(policy)),
        ("threads".into(), Json::u64(threads as u64)),
        ("ops".into(), Json::u64(r.offered)),
        ("warmup".into(), Json::u64(0)),
        ("unit".into(), Json::str("reqs/sec")),
        ("measured".into(), kv_measured_json(r, stats)),
    ])
}

fn run_json(spec: &RunSpec, secs: f64, tput: f64, stats: &TrialStats) -> Json {
    Json::Obj(vec![
        ("figure".into(), Json::str(spec.figure)),
        ("workload".into(), Json::str(&*spec.workload)),
        ("mix".into(), Json::str(&*spec.mix)),
        ("mode".into(), Json::str(&*spec.mode)),
        ("policy".into(), Json::str(&*spec.policy)),
        ("threads".into(), Json::u64(spec.threads as u64)),
        ("ops".into(), Json::u64(spec.ops)),
        ("warmup".into(), Json::u64(spec.warmup)),
        ("unit".into(), Json::str(spec.unit)),
        ("measured".into(), measured_json(secs, tput, stats)),
    ])
}

/// Best-of-`trials` micro run (max throughput, with that run's stats).
fn best_micro(
    trials: usize,
    kind: &str,
    policy: QuiescePolicy,
    threads: usize,
    mix: Mix,
    ops: u64,
    opts: MicroOpts,
) -> (f64, TrialStats) {
    let mut best: Option<(f64, TrialStats)> = None;
    for _ in 0..trials.max(1) {
        let (t, s) = micro_trial_opts(kind, policy, threads, mix, ops, opts);
        if best.as_ref().is_none_or(|(bt, _)| t > *bt) {
            best = Some((t, s));
        }
    }
    best.expect("at least one trial")
}

fn ab_side(config: &str, tput: f64, extra: Vec<(String, Json)>) -> Json {
    let mut measured = vec![("ops_per_sec".to_string(), Json::f64(tput))];
    measured.extend(extra);
    Json::Obj(vec![
        ("config".into(), Json::str(config)),
        ("measured".into(), Json::Obj(measured)),
    ])
}

/// Identity of one optimization A/B (everything but the two sides).
struct AbSpec {
    name: &'static str,
    figure: &'static str,
    workload: &'static str,
    mix: &'static str,
    policy: &'static str,
    threads: usize,
}

fn ab_entry(spec: &AbSpec, baseline: Json, optimized: Json, speedup: f64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(spec.name)),
        ("figure".into(), Json::str(spec.figure)),
        ("workload".into(), Json::str(spec.workload)),
        ("mix".into(), Json::str(spec.mix)),
        ("policy".into(), Json::str(spec.policy)),
        ("threads".into(), Json::u64(spec.threads as u64)),
        ("baseline".into(), baseline),
        ("optimized".into(), optimized),
        (
            "measured".into(),
            Json::Obj(vec![("speedup".into(), Json::f64(speedup))]),
        ),
    ])
}

/// Run the trajectory suite and build the document.
pub fn emit_report(cfg: &EmitConfig) -> Json {
    let mut runs = Vec::new();
    let warm = cfg.micro_ops / 10;

    if cfg.apps {
        // fig2: PBZip2 pipeline, bytes/sec.
        let block = 16 * 1024;
        let input = gen_text(42, cfg.pbzip_kib * 1024);
        for mode in [
            AlgoMode::StmCondvar,
            AlgoMode::HtmCondvar,
            AlgoMode::AdaptiveHtm,
            AlgoMode::AdaptiveHtmLazy,
        ] {
            let (secs, stats) = pbzip_compress_trial(mode, cfg.threads, block, &input);
            runs.push(run_json(
                &RunSpec {
                    figure: "fig2",
                    workload: "pbzip-compress".into(),
                    mix: "-".into(),
                    mode: mode.label().into(),
                    policy: "-".into(),
                    threads: cfg.threads,
                    ops: input.len() as u64,
                    warmup: input.len().min(block) as u64,
                    unit: "bytes/sec",
                },
                secs,
                input.len() as f64 / secs,
                &stats,
            ));
        }
        let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
        let ccfg = PipelineConfig {
            workers: cfg.threads,
            block_size: block,
            fifo_cap: 2 * cfg.threads.max(2),
        };
        let compressed = compress_parallel(&sys, &input, &ccfg);
        let (secs, stats) =
            pbzip_decompress_trial(AlgoMode::HtmCondvar, cfg.threads, block, &compressed);
        runs.push(run_json(
            &RunSpec {
                figure: "fig2",
                workload: "pbzip-decompress".into(),
                mix: "-".into(),
                mode: AlgoMode::HtmCondvar.label().into(),
                policy: "-".into(),
                threads: cfg.threads,
                ops: compressed.len() as u64,
                warmup: 4096,
                unit: "bytes/sec",
            },
            secs,
            compressed.len() as f64 / secs,
            &stats,
        ));

        // fig3: x265 encoder, frames/sec — including the adaptive eager and
        // safe-lazy modes so the lazy path stays measured on a real
        // multi-lock application, not just the capacity-edge A/B.
        let frames = VideoSize::Small.params(false).2 as u64;
        for mode in [
            AlgoMode::HtmCondvar,
            AlgoMode::AdaptiveHtm,
            AlgoMode::AdaptiveHtmLazy,
        ] {
            let (secs, stats) = x265_trial(mode, cfg.threads, VideoSize::Small, false);
            runs.push(run_json(
                &RunSpec {
                    figure: "fig3",
                    workload: "x265-small".into(),
                    mix: "-".into(),
                    mode: mode.label().into(),
                    policy: "-".into(),
                    threads: cfg.threads,
                    ops: frames,
                    warmup: 2,
                    unit: "frames/sec",
                },
                secs,
                frames as f64 / secs,
                &stats,
            ));
        }
    }

    // fig5: set microbenchmarks, ops/sec.
    let micro_cases: [(&str, QuiescePolicy, Mix); 5] = [
        ("hash", QuiescePolicy::Selective, Mix::HalfLookup),
        ("tree", QuiescePolicy::Selective, Mix::HalfLookup),
        ("list", QuiescePolicy::Selective, Mix::HalfLookup),
        ("hash", QuiescePolicy::Selective, Mix::ReadMostly),
        ("hash", QuiescePolicy::Always, Mix::UpdateOnly),
    ];
    for (kind, policy, mix) in micro_cases {
        let (tput, stats) = best_micro(
            cfg.trials,
            kind,
            policy,
            cfg.threads,
            mix,
            cfg.micro_ops,
            MicroOpts::warmed(cfg.micro_ops),
        );
        let total = cfg.threads as u64 * cfg.micro_ops;
        runs.push(run_json(
            &RunSpec {
                figure: "fig5",
                workload: kind.into(),
                mix: mix.label().into(),
                mode: AlgoMode::StmCondvar.label().into(),
                policy: policy.label().into(),
                threads: cfg.threads,
                ops: total,
                warmup: cfg.threads as u64 * warm,
                unit: "ops/sec",
            },
            total as f64 / tput,
            tput,
            &stats,
        ));
    }

    // kv: the sharded serving workload — the deadline/admission plane A/B.
    // Three runs: the quiet baseline, the hot-key storm with the plane
    // containing it, and the same storm with the plane off so the damage
    // the plane prevents stays on record.
    // Not scaled by `micro_ops`: the driver is rate-driven (~40ms/run) and
    // the storm window must outlast the admission ladder's dwell floors
    // (min_dwell_steps × controller period per step) or the plane never
    // engages and the A/B measures nothing.
    let kv_base = KvConfig {
        threads: cfg.threads,
        requests: 10_000,
        ..KvConfig::quick()
    };
    let kv_cases: [(&str, &str, KvConfig); 3] = [
        ("no-storm", "plane-off", kv_base),
        (
            "storm",
            "plane-on",
            kv_base.with_storm().with_plane(Duration::from_millis(1)),
        ),
        ("storm", "plane-off", kv_base.with_storm()),
    ];
    for (mix, policy, kv) in kv_cases {
        let sys = build_system(&kv);
        let report = run_driver_on(&sys, &kv);
        let stats = TrialStats::capture(&sys);
        runs.push(kv_run_json(mix, policy, &kv, &report, &stats));
    }

    // kv-sessions: the async multiplexing curve. Each point pairs N paced
    // logical sessions on SESSION_WORKERS executor threads (sessions as
    // tasks, waits suspend via wakers) against the thread-per-session
    // baseline (one OS thread each, handles checked out of a pool). The
    // closed loop's think time bounds per-session rate, so goodput should
    // scale with the session count in both columns — the async column just
    // gets there on 8 OS threads.
    for &sessions in cfg.sessions_curve {
        let scfg = SessionConfig {
            base: KvConfig::quick(),
            sessions,
            workers: SESSION_WORKERS,
            requests_per_session: cfg.session_requests,
            think_ns: cfg.session_think_ns,
        };
        let async_policy = format!("async-w{SESSION_WORKERS}");
        let sys = build_system(&scfg.base);
        let report = run_session_driver_async_on(&sys, &scfg);
        let stats = TrialStats::capture(&sys);
        runs.push(session_run_json(
            &scfg,
            &async_policy,
            SESSION_WORKERS,
            &report,
            &stats,
        ));

        let sys = build_system(&scfg.base);
        let report = run_session_driver_threads_on(&sys, &scfg);
        let stats = TrialStats::capture(&sys);
        runs.push(session_run_json(
            &scfg, "threads", sessions, &report, &stats,
        ));
    }

    // Optimization A/Bs: one knob flipped per entry, both sides measured in
    // this same process so the numbers are an honest pair.
    let mut optimizations = Vec::new();
    let warmed = MicroOpts::warmed(cfg.micro_ops);

    // Orec-table padding vs the compact (false-sharing) layout.
    let (compact_t, _) = best_micro(
        cfg.trials,
        "hash",
        QuiescePolicy::Selective,
        cfg.threads,
        Mix::ReadMostly,
        cfg.micro_ops,
        MicroOpts {
            orec_layout: OrecLayout::Compact,
            ..warmed
        },
    );
    let (padded_t, _) = best_micro(
        cfg.trials,
        "hash",
        QuiescePolicy::Selective,
        cfg.threads,
        Mix::ReadMostly,
        cfg.micro_ops,
        warmed,
    );
    optimizations.push(ab_entry(
        &AbSpec {
            name: "orec-padding",
            figure: "fig5",
            workload: "hash",
            mix: Mix::ReadMostly.label(),
            policy: QuiescePolicy::Selective.label(),
            threads: cfg.threads,
        },
        ab_side("orec-layout=compact", compact_t, vec![]),
        ab_side("orec-layout=padded", padded_t, vec![]),
        padded_t / compact_t,
    ));

    // Read-only commit fast path, measured where it bites: read-mostly mix
    // under the drain-everything (`Always`) policy.
    let (slow_t, _) = best_micro(
        cfg.trials,
        "hash",
        QuiescePolicy::Always,
        cfg.threads,
        Mix::ReadMostly,
        cfg.micro_ops,
        MicroOpts {
            ro_fast_path: false,
            ..warmed
        },
    );
    let (fast_t, _) = best_micro(
        cfg.trials,
        "hash",
        QuiescePolicy::Always,
        cfg.threads,
        Mix::ReadMostly,
        cfg.micro_ops,
        warmed,
    );
    optimizations.push(ab_entry(
        &AbSpec {
            name: "ro-fast-path",
            figure: "fig5",
            workload: "hash",
            mix: Mix::ReadMostly.label(),
            policy: QuiescePolicy::Always.label(),
            threads: cfg.threads,
        },
        ab_side("ro-fast-path=off", slow_t, vec![]),
        ab_side("ro-fast-path=on", fast_t, vec![]),
        fast_t / slow_t,
    ));

    // Transaction-buffer reuse across retries: throughput plus the
    // allocation counters that prove the churn is gone.
    let alloc_fields = |s: tle_stm::BufAllocStats| {
        vec![
            ("fresh_allocs".to_string(), Json::u64(s.fresh_allocs)),
            ("reuse_hits".to_string(), Json::u64(s.reused)),
            ("spills".to_string(), Json::u64(s.spills)),
        ]
    };
    tle_stm::reset_buf_alloc_stats();
    let (churn_t, _) = best_micro(
        cfg.trials,
        "hash",
        QuiescePolicy::Selective,
        cfg.threads,
        Mix::HalfLookup,
        cfg.micro_ops,
        MicroOpts {
            buf_reuse: false,
            ..warmed
        },
    );
    let churn_alloc = tle_stm::buf_alloc_stats();
    tle_stm::reset_buf_alloc_stats();
    let (reuse_t, _) = best_micro(
        cfg.trials,
        "hash",
        QuiescePolicy::Selective,
        cfg.threads,
        Mix::HalfLookup,
        cfg.micro_ops,
        warmed,
    );
    let reuse_alloc = tle_stm::buf_alloc_stats();
    optimizations.push(ab_entry(
        &AbSpec {
            name: "txbuf-reuse",
            figure: "fig5",
            workload: "hash",
            mix: Mix::HalfLookup.label(),
            policy: QuiescePolicy::Selective.label(),
            threads: cfg.threads,
        },
        ab_side("buf-reuse=off", churn_t, alloc_fields(churn_alloc)),
        ab_side("buf-reuse=on", reuse_t, alloc_fields(reuse_alloc)),
        reuse_t / churn_t,
    ));

    // Lazy lock-word subscription (PR 9): the capacity-edge scan, where the
    // eager mode's subscription read is the straw that overflows the read
    // cap. Both sides record the abort-by-cause split so the artifact
    // captures *why* lazy wins here: the eager column's conflict aborts are
    // the acquire-time dooms its own fallback cascade causes.
    let cause_fields = |s: &TrialStats| {
        vec![
            (
                "conflict_aborts".to_string(),
                Json::u64(s.cause(AbortCause::Conflict)),
            ),
            (
                "capacity_aborts".to_string(),
                Json::u64(s.cause(AbortCause::Capacity)),
            ),
            (
                "serial_fallbacks".to_string(),
                Json::u64(s.serial_fallbacks),
            ),
            ("htm_commits".to_string(), Json::u64(s.htm_commits)),
        ]
    };
    let lazy_lines = 8;
    let lazy_ops = (cfg.micro_ops / 4).max(1_000);
    let (eager_t, eager_s) =
        lazy_subscription_trial(AlgoMode::AdaptiveHtm, cfg.threads, lazy_lines, lazy_ops);
    let (lazy_t, lazy_s) =
        lazy_subscription_trial(AlgoMode::AdaptiveHtmLazy, cfg.threads, lazy_lines, lazy_ops);
    optimizations.push(ab_entry(
        &AbSpec {
            name: "lazy-subscription",
            figure: "fig2",
            workload: "capacity-edge-scan",
            mix: "-",
            policy: "-",
            threads: cfg.threads,
        },
        ab_side("mode=adaptive-htm", eager_t, cause_fields(&eager_s)),
        ab_side("mode=adaptive-htm-lazy", lazy_t, cause_fields(&lazy_s)),
        lazy_t / eager_t,
    ));

    Json::Obj(vec![
        ("schema".into(), Json::str(SCHEMA)),
        ("schema_version".into(), Json::u64(SCHEMA_VERSION)),
        ("pr".into(), Json::u64(PR)),
        (
            "config".into(),
            Json::Obj(vec![
                ("label".into(), Json::str(cfg.label)),
                ("threads".into(), Json::u64(cfg.threads as u64)),
                ("micro_ops".into(), Json::u64(cfg.micro_ops)),
                ("warmup_ops".into(), Json::u64(warm)),
                ("pbzip_kib".into(), Json::u64(cfg.pbzip_kib as u64)),
                ("trials".into(), Json::u64(cfg.trials as u64)),
                ("apps".into(), Json::Bool(cfg.apps)),
                (
                    "sessions_curve".into(),
                    Json::Arr(
                        cfg.sessions_curve
                            .iter()
                            .map(|&s| Json::u64(s as u64))
                            .collect(),
                    ),
                ),
                ("session_requests".into(), Json::u64(cfg.session_requests)),
                ("session_think_ns".into(), Json::u64(cfg.session_think_ns)),
            ]),
        ),
        ("runs".into(), Json::Arr(runs)),
        ("optimizations".into(), Json::Arr(optimizations)),
    ])
}

/// The document with every `"measured"` subtree removed: what must be
/// identical between two emits of the same configuration.
pub fn stable_view(doc: &Json) -> Json {
    match doc {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "measured")
                .map(|(k, v)| (k.clone(), stable_view(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(stable_view).collect()),
        other => other.clone(),
    }
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing key '{key}'"))
}

fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| format!("key '{key}' is not a string"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| format!("key '{key}' is not an unsigned integer"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| format!("key '{key}' is not a number"))
}

/// Check a document against the `tle-bench-trajectory` schema.
pub fn validate(doc: &Json) -> Result<(), String> {
    let schema = req_str(doc, "schema")?;
    if schema != SCHEMA {
        return Err(format!("schema is '{schema}', expected '{SCHEMA}'"));
    }
    let version = req_u64(doc, "schema_version")?;
    if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
        return Err(format!(
            "schema_version is {version}, expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}"
        ));
    }
    req_u64(doc, "pr")?;
    req(doc, "config")?
        .as_obj()
        .ok_or("'config' is not an object")?;
    let runs = req(doc, "runs")?.as_arr().ok_or("'runs' is not an array")?;
    if runs.is_empty() {
        return Err("'runs' is empty".into());
    }
    for (i, run) in runs.iter().enumerate() {
        validate_run(run).map_err(|e| format!("runs[{i}]: {e}"))?;
    }
    let opts = req(doc, "optimizations")?
        .as_arr()
        .ok_or("'optimizations' is not an array")?;
    for (i, o) in opts.iter().enumerate() {
        validate_opt(o).map_err(|e| format!("optimizations[{i}]: {e}"))?;
    }
    Ok(())
}

fn validate_measured(m: &Json) -> Result<(), String> {
    m.as_obj().ok_or("'measured' is not an object")?;
    req_f64(m, "secs")?;
    req_f64(m, "ops_per_sec")?;
    req_u64(m, "commits")?;
    req_u64(m, "aborts")?;
    req_f64(m, "abort_rate")?;
    req_u64(m, "serial_fallbacks")?;
    let by_cause = req(m, "by_cause")?;
    for cause in AbortCause::ALL {
        req_u64(by_cause, cause.label()).map_err(|e| format!("by_cause: {e}"))?;
    }
    let quiesce = req(m, "quiesce")?;
    req_u64(quiesce, "drains")?;
    req_u64(quiesce, "skipped")?;
    req_u64(quiesce, "wait_ns")?;
    let hist = req(quiesce, "hist")?
        .as_arr()
        .ok_or("'quiesce.hist' is not an array")?;
    if hist.len() != HIST_BUCKETS {
        return Err(format!(
            "quiesce.hist has {} buckets, expected {HIST_BUCKETS}",
            hist.len()
        ));
    }
    for b in hist {
        b.as_u64().ok_or("non-integer histogram bucket")?;
    }
    Ok(())
}

fn validate_run(run: &Json) -> Result<(), String> {
    for key in ["figure", "workload", "mix", "mode", "policy", "unit"] {
        req_str(run, key)?;
    }
    for key in ["threads", "ops", "warmup"] {
        req_u64(run, key)?;
    }
    let m = req(run, "measured")?;
    validate_measured(m)?;
    if matches!(req_str(run, "figure")?, "kv" | "kv-sessions") {
        validate_kv_measured(m)?;
    }
    Ok(())
}

/// The version-2 serving-run extensions: every `figure == "kv"` (and,
/// from version 3, `"kv-sessions"`) run must carry the latency quantiles
/// and the request-outcome ledger.
fn validate_kv_measured(m: &Json) -> Result<(), String> {
    let lat = req(m, "latency")?;
    for key in ["p50_ns", "p99_ns", "p999_ns"] {
        req_u64(lat, key).map_err(|e| format!("latency: {e}"))?;
    }
    let reqs = req(m, "requests")?;
    for key in [
        "offered",
        "completed",
        "shed",
        "deadline_miss",
        "max_admission_step",
    ] {
        req_u64(reqs, key).map_err(|e| format!("requests: {e}"))?;
    }
    Ok(())
}

fn validate_opt(o: &Json) -> Result<(), String> {
    req_str(o, "name")?;
    req_str(o, "workload")?;
    req_u64(o, "threads")?;
    for side in ["baseline", "optimized"] {
        let s = req(o, side)?;
        req_str(s, "config").map_err(|e| format!("{side}: {e}"))?;
        let m = req(s, "measured").map_err(|e| format!("{side}: {e}"))?;
        req_f64(m, "ops_per_sec").map_err(|e| format!("{side}: {e}"))?;
    }
    req_f64(req(o, "measured")?, "speedup").map_err(|e| format!("measured: {e}"))?;
    Ok(())
}

/// The identity of one run: everything that must match for an old/new
/// throughput comparison to be meaningful.
fn run_key(run: &Json) -> Result<String, String> {
    Ok(format!(
        "{}/{} mix={} mode={} policy={} threads={}",
        req_str(run, "figure")?,
        req_str(run, "workload")?,
        req_str(run, "mix")?,
        req_str(run, "mode")?,
        req_str(run, "policy")?,
        req_u64(run, "threads")?,
    ))
}

/// Outcome of [`compare`]. `regressions` non-empty means the new report
/// lost more than [`TOLERANCE`] throughput on at least one recorded run.
#[derive(Debug, Default)]
pub struct CompareOutcome {
    /// Runs matched and compared.
    pub compared: usize,
    /// Human-readable lines, one per regressed run.
    pub regressions: Vec<String>,
    /// Runs that got more than [`TOLERANCE`] faster (informational).
    pub improvements: Vec<String>,
}

/// Compare two trajectory documents. Every run recorded in `old` must
/// still exist in `new` (a vanished run is schema drift and a hard error,
/// regardless of any warn flag at the CLI layer); new runs may appear
/// freely. Returns the per-run throughput verdicts.
pub fn compare(old: &Json, new: &Json) -> Result<CompareOutcome, String> {
    validate(old).map_err(|e| format!("old report: {e}"))?;
    validate(new).map_err(|e| format!("new report: {e}"))?;
    let old_runs = old.get("runs").and_then(Json::as_arr).expect("validated");
    let new_runs = new.get("runs").and_then(Json::as_arr).expect("validated");
    let mut out = CompareOutcome::default();
    for run in old_runs {
        let key = run_key(run)?;
        let Some(newer) = new_runs.iter().find(|r| run_key(r).as_ref() == Ok(&key)) else {
            return Err(format!("run '{key}' is missing from the new report"));
        };
        let old_t = req_f64(req(run, "measured")?, "ops_per_sec")?;
        let new_t = req_f64(req(newer, "measured")?, "ops_per_sec")?;
        out.compared += 1;
        if old_t <= 0.0 {
            continue;
        }
        let delta = new_t / old_t - 1.0;
        let line = format!(
            "{key}: {old_t:.0} -> {new_t:.0} ops/sec ({:+.1}%)",
            delta * 100.0
        );
        if new_t < old_t * (1.0 - TOLERANCE) {
            out.regressions.push(line);
        } else if new_t > old_t * (1.0 + TOLERANCE) {
            out.improvements.push(line);
        }
    }
    Ok(out)
}

/// A minimal schema-valid document with the given `(workload, ops_per_sec)`
/// fig5 runs — for comparator tests, which must not depend on timing.
#[doc(hidden)]
pub fn synthetic_report(workloads: &[(&str, f64)]) -> Json {
    let runs = workloads
        .iter()
        .map(|&(w, tput)| {
            run_json(
                &RunSpec {
                    figure: "fig5",
                    workload: w.into(),
                    mix: Mix::HalfLookup.label().into(),
                    mode: AlgoMode::StmCondvar.label().into(),
                    policy: QuiescePolicy::Selective.label().into(),
                    threads: 2,
                    ops: 1_000,
                    warmup: 100,
                    unit: "ops/sec",
                },
                1.0,
                tput,
                &TrialStats::default(),
            )
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str(SCHEMA)),
        ("schema_version".into(), Json::u64(SCHEMA_VERSION)),
        ("pr".into(), Json::u64(PR)),
        (
            "config".into(),
            Json::Obj(vec![("label".into(), Json::str("synthetic"))]),
        ),
        ("runs".into(), Json::Arr(runs)),
        ("optimizations".into(), Json::Arr(Vec::new())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_report_passes_validation() {
        let doc = synthetic_report(&[("hash", 1000.0), ("tree", 500.0)]);
        validate(&doc).unwrap();
        // And survives a byte-identical round trip through the parser.
        let rendered = doc.render();
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn accepts_version_1_documents() {
        // BENCH_6.json and earlier carry schema_version 1 with no kv runs;
        // they must keep validating (and comparing) under the v2 code.
        let mut doc = synthetic_report(&[("hash", 1000.0)]);
        if let Json::Obj(fields) = &mut doc {
            assert_eq!(fields[1].0, "schema_version");
            fields[1].1 = Json::u64(MIN_SCHEMA_VERSION);
        }
        validate(&doc).unwrap();
        let old_v1 = doc;
        let new_v2 = synthetic_report(&[("hash", 1000.0)]);
        compare(&old_v1, &new_v2).unwrap();
    }

    #[test]
    fn kv_runs_require_latency_and_requests() {
        let report = KvReport {
            offered: 100,
            completed: 90,
            shed: 6,
            deadline_miss: 4,
            secs: 1.0,
            goodput_per_sec: 90.0,
            p50_ns: 10,
            p99_ns: 20,
            p999_ns: 30,
            hist: tle_base::stats::LatencyHist::new().snapshot(),
            max_admission_step: 2,
        };
        let kv = KvConfig::quick();
        let run = kv_run_json("storm", "plane-on", &kv, &report, &TrialStats::default());
        validate_run(&run).unwrap();

        // A kv run without the quantiles is rejected...
        let mut broken = run.clone();
        replace_key(&mut broken, "latency", &Json::u64(0));
        let err = validate_run(&broken).unwrap_err();
        assert!(err.contains("latency"), "unexpected error: {err}");
        // ...but the same gap on a non-kv figure is fine (v1 shape).
        let mut non_kv = broken;
        replace_key(&mut non_kv, "figure", &Json::str("fig5"));
        validate_run(&non_kv).unwrap();

        let mut broken = run;
        replace_key(&mut broken, "requests", &Json::u64(0));
        let err = validate_run(&broken).unwrap_err();
        assert!(err.contains("requests"), "unexpected error: {err}");
    }

    #[test]
    fn validate_rejects_schema_drift() {
        let doc = synthetic_report(&[("hash", 1000.0)]);
        let mutate = |f: &dyn Fn(&mut Vec<(String, Json)>)| {
            let mut d = doc.clone();
            if let Json::Obj(fields) = &mut d {
                f(fields);
            }
            d
        };
        let bad_schema = mutate(&|f| f[0].1 = Json::str("something-else"));
        assert!(validate(&bad_schema).unwrap_err().contains("schema"));
        let bad_version = mutate(&|f| f[1].1 = Json::u64(99));
        assert!(validate(&bad_version)
            .unwrap_err()
            .contains("schema_version"));
        let no_runs = mutate(&|f| f.retain(|(k, _)| k != "runs"));
        assert!(validate(&no_runs).unwrap_err().contains("runs"));
        let empty_runs = mutate(&|f| {
            if let Some((_, v)) = f.iter_mut().find(|(k, _)| k == "runs") {
                *v = Json::Arr(Vec::new());
            }
        });
        assert!(validate(&empty_runs).unwrap_err().contains("empty"));
    }

    /// Replace the value at key `target` anywhere in the tree.
    fn replace_key(v: &mut Json, target: &str, with: &Json) {
        match v {
            Json::Obj(fields) => {
                for (k, val) in fields.iter_mut() {
                    if k == target {
                        *val = with.clone();
                    } else {
                        replace_key(val, target, with);
                    }
                }
            }
            Json::Arr(items) => {
                for item in items.iter_mut() {
                    replace_key(item, target, with);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn validate_checks_histogram_width_and_causes() {
        let mut doc = synthetic_report(&[("hash", 1000.0)]);
        replace_key(&mut doc, "hist", &Json::Arr(vec![Json::u64(0); 4]));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("hist"), "unexpected error: {err}");

        let mut doc = synthetic_report(&[("hash", 1000.0)]);
        replace_key(&mut doc, "by_cause", &Json::Obj(Vec::new()));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("by_cause"), "unexpected error: {err}");
    }

    #[test]
    fn compare_flags_regression_beyond_tolerance() {
        let old = synthetic_report(&[("hash", 1000.0), ("tree", 500.0)]);
        let new = synthetic_report(&[("hash", 850.0), ("tree", 495.0)]);
        let out = compare(&old, &new).unwrap();
        assert_eq!(out.compared, 2);
        assert_eq!(out.regressions.len(), 1, "{:?}", out.regressions);
        assert!(out.regressions[0].contains("hash"));
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let old = synthetic_report(&[("hash", 1000.0)]);
        let new = synthetic_report(&[("hash", 905.0)]);
        let out = compare(&old, &new).unwrap();
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        assert!(out.improvements.is_empty());
    }

    #[test]
    fn compare_reports_improvements() {
        let old = synthetic_report(&[("hash", 1000.0)]);
        let new = synthetic_report(&[("hash", 1500.0)]);
        let out = compare(&old, &new).unwrap();
        assert_eq!(out.improvements.len(), 1);
        assert!(out.regressions.is_empty());
    }

    #[test]
    fn compare_hard_fails_on_missing_run() {
        let old = synthetic_report(&[("hash", 1000.0), ("tree", 500.0)]);
        let new = synthetic_report(&[("hash", 1000.0)]);
        let err = compare(&old, &new).unwrap_err();
        assert!(err.contains("missing"), "unexpected error: {err}");
        // New runs appearing is NOT an error (additions are fine).
        compare(&new, &old).unwrap();
    }

    #[test]
    fn stable_view_strips_every_measured_subtree() {
        let a = synthetic_report(&[("hash", 1000.0)]);
        let b = synthetic_report(&[("hash", 123.0)]);
        assert_ne!(a, b);
        assert_eq!(stable_view(&a), stable_view(&b));
        fn has_measured(v: &Json) -> bool {
            match v {
                Json::Obj(f) => f.iter().any(|(k, v)| k == "measured" || has_measured(v)),
                Json::Arr(items) => items.iter().any(has_measured),
                _ => false,
            }
        }
        assert!(has_measured(&a));
        assert!(!has_measured(&stable_view(&a)));
    }
}
