//! rcutorture-style torture harness: run the real workloads under a seeded
//! fault schedule and check invariant oracles.
//!
//! The harness exists to answer one question continuously: *after the fault
//! oracle has forced aborts, stalled lock holders, delayed signals and
//! stormed the serial gate, is the runtime still correct?* Correctness is
//! judged by oracles, never by timing:
//!
//! - **txset**: single-worker runs mirror every operation against a
//!   `BTreeSet` (exact sequential oracle); multi-worker runs check that the
//!   per-thread net insert/remove deltas match final membership.
//! - **pbzip pipeline**: `decompress(compress(x)) == x`.
//! - **x265 pipeline**: the encode completes and emits every frame.
//!
//! Reproducibility contract: with `workers == 1` and pipelines off, the
//! whole run is deterministic — same seed ⇒ same fault schedule ⇒ identical
//! per-cause abort counts and fault tallies ([`TortureReport::repro_key`]).
//! Multi-worker runs keep the *armed* tallies deterministic (pure tick
//! arithmetic) and use the oracles alone as pass/fail.

use crate::workloads::{make_set, prefill, TrialStats};
use std::collections::BTreeSet;
use std::sync::Arc;
use tle_base::fault::{self, FaultPlan, FaultRule, FaultSnapshot, Hazard};
use tle_base::rng::XorShift64;
use tle_base::AbortCause;
use tle_core::{AlgoMode, TmSystem};
use tle_pbz::{compress_parallel, decompress_parallel, gen_text, PipelineConfig};
use tle_wfe::{encode_video, EncoderConfig, VideoSource};

/// One torture run's shape.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Seeds the fault schedule *and* the workload's operation stream.
    pub seed: u64,
    /// Algorithm under torture.
    pub mode: AlgoMode,
    /// txset worker threads (1 ⇒ exact sequential oracle + full
    /// reproducibility).
    pub workers: usize,
    /// Set operations per worker.
    pub ops_per_worker: u64,
    /// Which set structure carries the txset phase.
    pub structure: String,
    /// Also run the pbzip and x265 pipeline phases (oracle-checked but not
    /// bit-reproducible: pipeline threads take auto-assigned fault lanes).
    pub pipelines: bool,
    /// Also run the per-lock mode-flip phase: a counter workload while a
    /// seed-derived schedule of `set_lock_mode` flips retargets the lock
    /// through every (non-NoQuiesce) mode. The oracle is the exact counter
    /// value plus the flip sequence matching the schedule.
    pub adaptive: bool,
    /// Also run the deadline-hazard phase: a counter workload where a
    /// seed-derived subset of requests carries a zero retry-time budget.
    /// A zero budget is already spent at the dispatch gate, so those
    /// requests are *guaranteed* to be refused with `DeadlineExceeded` —
    /// the expiry tally is a pure function of the seed even with racing
    /// workers, and is folded into [`TortureReport::repro_key`].
    pub deadline: bool,
    /// Also run the async-executor phase: the same fault schedule driven
    /// through the waker path (`run_async` attempts, suspended condvar
    /// waits, executor-yield backoff). Disjoint write sets and commutative
    /// increments make the final state a pure function of the
    /// configuration, so the phase's checksum joins
    /// [`TortureReport::repro_key`]; with `workers == 1` the single
    /// executor worker serializes every attempt and the whole phase
    /// replays exactly.
    pub async_exec: bool,
}

impl TortureConfig {
    /// The CI smoke shape: short, multi-worker, all phases.
    pub fn quick(seed: u64, mode: AlgoMode) -> Self {
        TortureConfig {
            seed,
            mode,
            workers: 3,
            ops_per_worker: 1_500,
            structure: "hash".into(),
            pipelines: true,
            adaptive: false,
            deadline: false,
            async_exec: false,
        }
    }

    /// The deterministic shape backing `--repro` and the determinism tests.
    pub fn repro(seed: u64, mode: AlgoMode) -> Self {
        TortureConfig {
            seed,
            mode,
            workers: 1,
            ops_per_worker: 2_000,
            structure: "tree".into(),
            pipelines: false,
            adaptive: false,
            deadline: false,
            async_exec: false,
        }
    }
}

/// The standard torture schedule: every hazard class armed, with coprime
/// periods so the fault mix keeps shifting phase against the workload.
pub fn torture_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule(FaultRule::new(Hazard::HtmEvent, 5))
        .rule(FaultRule::new(Hazard::HtmCapacity, 9).at_access(1))
        .rule(FaultRule::new(Hazard::HtmConflict, 7))
        .rule(FaultRule::new(Hazard::OrecStall, 11).stall(2_000))
        .rule(FaultRule::new(Hazard::ValidationDelay, 13).stall(1_000))
        .rule(FaultRule::new(Hazard::QuiesceDelay, 17).stall(1_500))
        .rule(FaultRule::new(Hazard::SignalDelay, 19).stall(1_000))
        .rule(FaultRule::new(Hazard::SpuriousWake, 6))
        .rule(FaultRule::new(Hazard::SerialStorm, 23))
}

/// Everything a torture run produced.
#[derive(Debug, Clone)]
pub struct TortureReport {
    /// The run's configuration echo.
    pub seed: u64,
    pub mode: AlgoMode,
    pub workers: usize,
    /// Wall-clock seconds for the whole run.
    pub secs: f64,
    /// Oracle violations (empty ⇒ pass).
    pub violations: Vec<String>,
    /// Fault-oracle tallies at the end of the run.
    pub fault: FaultSnapshot,
    /// Per-domain commit/abort counters.
    pub stats: TrialStats,
    /// Starvation-ladder escalations granted.
    pub escalations: u64,
    /// Quiescence-watchdog trips observed.
    pub watchdog_trips: u64,
    /// The mode-flip sequence applied during the adaptive phase (empty
    /// unless [`TortureConfig::adaptive`] was set). Same seed ⇒ identical
    /// sequence, by construction.
    pub switches: Vec<String>,
    /// Requests refused by the deadline dispatch gate during the deadline
    /// phase (0 unless [`TortureConfig::deadline`] was set). Same seed ⇒
    /// identical count, by construction.
    pub deadline_expiries: u64,
    /// Checksum over the async phase's final counters and ping-pong rounds
    /// (0 unless [`TortureConfig::async_exec`] was set). A pure function of
    /// the configuration when the oracles hold, so it folds into
    /// [`repro_key`](Self::repro_key).
    pub async_checksum: u64,
}

impl TortureReport {
    /// Did every oracle hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The reproducibility token: per-cause abort counts (both TM domains)
    /// plus both fault tallies. Two `--repro` runs with the same seed must
    /// produce byte-identical keys.
    pub fn repro_key(&self) -> String {
        let mut key = String::new();
        for c in AbortCause::ALL {
            key.push_str(&format!(
                "{}:{}/{};",
                c.label(),
                self.stats.stm.cause(c),
                self.stats.htm.cause(c)
            ));
        }
        key.push_str(&format!(
            "fired:{:?};armed:{:?}",
            self.fault.fired, self.fault.armed
        ));
        if !self.switches.is_empty() {
            key.push_str(&format!(";switches:{}", self.switches.join(",")));
        }
        if self.deadline_expiries > 0 {
            key.push_str(&format!(";deadline:{}", self.deadline_expiries));
        }
        if self.async_checksum != 0 {
            key.push_str(&format!(";async:{:#x}", self.async_checksum));
        }
        key
    }

    /// Human-readable summary (the binary prints this).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "torture [{}] seed={:#x} workers={} {:.2}s: {}",
            self.mode.label(),
            self.seed,
            self.workers,
            self.secs,
            if self.ok() {
                "PASS".to_string()
            } else {
                format!("FAIL ({} violations)", self.violations.len())
            }
        );
        for v in &self.violations {
            let _ = writeln!(out, "  VIOLATION: {v}");
        }
        let _ = writeln!(
            out,
            "  commits stm={} htm={} serial={} | aborts: {}",
            self.stats.stm.commits,
            self.stats.htm_commits,
            self.stats.serial_fallbacks,
            self.stats.abort_breakdown()
        );
        let _ = writeln!(
            out,
            "  escalations={} watchdog_trips={} deadline_expiries={}",
            self.escalations, self.watchdog_trips, self.deadline_expiries
        );
        if self.async_checksum != 0 {
            let _ = writeln!(out, "  async phase checksum {:#x}", self.async_checksum);
        }
        if !self.switches.is_empty() {
            let _ = writeln!(
                out,
                "  mode flips ({}): {}",
                self.switches.len(),
                self.switches.join(" ")
            );
        }
        let _ = write!(out, "  faults fired:");
        for h in Hazard::ALL {
            let n = self.fault.fired(h);
            if n > 0 {
                let _ = write!(out, " {}={}", h.label(), n);
            }
        }
        let _ = writeln!(out, " (digest {:#x})", self.fault.digest());
        out
    }
}

/// Run one torture configuration end to end. Installs the fault plan,
/// drives the phases, clears the plan, and returns the report — panics in
/// worker threads are converted into violations so a wedged oracle still
/// produces a report.
pub fn run_torture(cfg: &TortureConfig) -> TortureReport {
    let sys = Arc::new(
        TmSystem::builder()
            .mode(cfg.mode)
            .adaptive(cfg.adaptive)
            .build(),
    );
    let mut violations = Vec::new();
    // Single-worker (repro) phases run transactions on *this* thread; a
    // buffer block parked by a previous run would shift this run's heap
    // layout and break the same-seed trace contract.
    tle_stm::drain_buf_pool();
    fault::install(torture_plan(cfg.seed));
    let t0 = std::time::Instant::now();

    if cfg.workers <= 1 {
        torture_set_sequential(&sys, cfg, &mut violations);
    } else {
        torture_set_concurrent(&sys, cfg, &mut violations);
    }
    if cfg.pipelines {
        torture_pbzip(&sys, cfg, &mut violations);
        torture_x265(&sys, cfg, &mut violations);
    }
    let switches = if cfg.adaptive {
        torture_flips(&sys, cfg, &mut violations)
    } else {
        Vec::new()
    };
    let deadline_expiries = if cfg.deadline {
        torture_deadline(&sys, cfg, &mut violations)
    } else {
        0
    };
    let async_checksum = if cfg.async_exec {
        torture_async(&sys, cfg, &mut violations)
    } else {
        0
    };

    let secs = t0.elapsed().as_secs_f64();
    let fault_snap = fault::snapshot();
    fault::clear();
    TortureReport {
        seed: cfg.seed,
        mode: cfg.mode,
        workers: cfg.workers,
        secs,
        violations,
        fault: fault_snap,
        stats: TrialStats::capture(&sys),
        escalations: sys.stats.snapshot().escalations,
        watchdog_trips: sys.stm.stats.snapshot().watchdog_trips,
        switches,
        deadline_expiries,
        async_checksum,
    }
}

/// Async-executor torture: the seeded fault schedule driven through the
/// waker path. Six tasks multiplex onto the executor, each incrementing its
/// own counter cell under one shared elidable lock (disjoint write sets,
/// commutative ops — the final state is a pure function of the
/// configuration), while a waiter/signaller pair ping-pongs through a
/// transactional condvar so signal-delay and spurious-wake faults land on
/// suspended-task wakeups instead of parked threads.
///
/// Oracles: every counter exact, every ping-pong round completed. The
/// returned checksum folds the final cells and round count with the seed;
/// with `workers == 1` the single executor worker serializes every attempt
/// (backoff and slot waits only yield — no timers), so same seed ⇒ same
/// fault ticks ⇒ same checksum *and* same per-cause abort counts.
fn torture_async(sys: &Arc<TmSystem>, cfg: &TortureConfig, violations: &mut Vec<String>) -> u64 {
    use tle_base::exec::Exec;
    use tle_base::TCell;
    use tle_core::{ElidableMutex, TxCondvar};

    const TASKS: usize = 6;
    const ROUNDS: u64 = 40;
    let ops = (cfg.ops_per_worker / 4).max(1);

    let exec = Exec::new(cfg.workers.max(1));
    let lock = ElidableMutex::new("torture-async");
    let th = Arc::new(sys.register());
    let cells: Arc<Vec<TCell<u64>>> = Arc::new((0..TASKS).map(|_| TCell::new(0)).collect());

    let mut joins = Vec::new();
    for t in 0..TASKS {
        let th = Arc::clone(&th);
        let lock = lock.clone();
        let cells = Arc::clone(&cells);
        joins.push(exec.spawn(async move {
            for _ in 0..ops {
                th.tx(&lock)
                    .run_async(|ctx| {
                        let v = ctx.read(&cells[t])?;
                        ctx.write(&cells[t], v + 1)?;
                        Ok(())
                    })
                    .await;
            }
        }));
    }

    // The ping-pong pair: `turn` alternates 0/1 through the condvar, each
    // side flipping it ROUNDS times.
    let cv = Arc::new(TxCondvar::new());
    let turn = Arc::new(TCell::new(0u64));
    let rounds = Arc::new(TCell::new(0u64));
    for role in 0..2u64 {
        let th = Arc::clone(&th);
        let lock = lock.clone();
        let cv = Arc::clone(&cv);
        let turn = Arc::clone(&turn);
        let rounds = Arc::clone(&rounds);
        joins.push(exec.spawn(async move {
            for _ in 0..ROUNDS {
                th.tx(&lock)
                    .run_async(|ctx| {
                        if ctx.read(&*turn)? != role {
                            return ctx.wait(&cv, None);
                        }
                        ctx.write(&*turn, 1 - role)?;
                        let r = ctx.read(&*rounds)?;
                        ctx.write(&*rounds, r + 1)?;
                        ctx.broadcast(&cv)?;
                        Ok(())
                    })
                    .await;
            }
        }));
    }

    exec.block_on(async move {
        for j in joins {
            j.await;
        }
    });

    let mut checksum = cfg.seed ^ 0xA57C;
    for (t, cell) in cells.iter().enumerate() {
        let v = cell.load_direct();
        if v != ops {
            violations.push(format!(
                "async: task {t} counter {v} != {ops} — an async attempt lost an update"
            ));
        }
        checksum = checksum.rotate_left(7) ^ v;
    }
    let r = rounds.load_direct();
    if r != 2 * ROUNDS {
        violations.push(format!(
            "async: ping-pong completed {r} of {} rounds",
            2 * ROUNDS
        ));
    }
    checksum.rotate_left(7) ^ r
}

/// Deadline torture: increment a counter under a lock while a seed-derived
/// subset of the requests carries a zero retry-time budget. The runner's
/// dispatch gate checks the budget *before* any speculation, and a zero
/// budget is already expired when the gate first looks at it, so every
/// budgeted request must come back `Err(DeadlineExceeded)` — anything else
/// (a commit, a different error) is an oracle violation. Because refusal
/// happens before the transaction touches shared state, the expiry tally is
/// a pure function of the seed even with racing workers, which is what lets
/// `repro_key` fold it in.
///
/// Oracles: the counter equals total ops minus expiries (refused requests
/// must have no effect), and the system-wide `deadline_exceeded` stat equals
/// the tally (every refusal is counted exactly once).
fn torture_deadline(sys: &Arc<TmSystem>, cfg: &TortureConfig, violations: &mut Vec<String>) -> u64 {
    use std::time::Duration;
    use tle_base::TCell;
    use tle_core::{ElidableMutex, TxError, TxHints};

    fn worker(
        sys: &Arc<TmSystem>,
        lock: &ElidableMutex,
        cell: &TCell<u64>,
        seed: u64,
        w: usize,
        ops: u64,
    ) -> (u64, Vec<String>) {
        fault::set_lane(w as u64);
        let th = sys.register();
        let mut rng = XorShift64::new(seed ^ 0xDEAD ^ ((w as u64) << 17));
        let mut expired = 0u64;
        let mut vs = Vec::new();
        for i in 0..ops {
            if rng.below(4) == 0 {
                let hints = TxHints::new().with_deadline(Duration::ZERO);
                match th.tx(lock).hints(hints).try_run(|ctx| {
                    let v = ctx.read(cell)?;
                    ctx.write(cell, v + 1)?;
                    Ok(())
                }) {
                    Err(TxError::DeadlineExceeded) => expired += 1,
                    Ok(()) => vs.push(format!(
                        "deadline: worker {w} op {i}: zero budget committed anyway"
                    )),
                    Err(e) => vs.push(format!(
                        "deadline: worker {w} op {i}: expected DeadlineExceeded, got {e:?}"
                    )),
                }
            } else {
                th.tx(lock).run(|ctx| {
                    let v = ctx.read(cell)?;
                    ctx.write(cell, v + 1)?;
                    Ok(())
                });
            }
        }
        (expired, vs)
    }

    let lock = ElidableMutex::new("torture-deadline");
    let cell = Arc::new(TCell::new(0u64));
    let workers = cfg.workers.max(1);
    let ops = cfg.ops_per_worker;
    let before = sys.stats.snapshot().deadline_exceeded;

    let mut expired_total = 0u64;
    if workers == 1 {
        let (expired, vs) = worker(sys, &lock, &cell, cfg.seed, 0, ops);
        expired_total += expired;
        violations.extend(vs);
    } else {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let sys = Arc::clone(sys);
                let lock = lock.clone();
                let cell = Arc::clone(&cell);
                let seed = cfg.seed;
                std::thread::spawn(move || worker(&sys, &lock, &cell, seed, w, ops))
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok((expired, vs)) => {
                    expired_total += expired;
                    violations.extend(vs);
                }
                Err(_) => violations.push("deadline: a torture worker panicked".into()),
            }
        }
    }

    let expect = workers as u64 * ops - expired_total;
    let got = cell.load_direct();
    if got != expect {
        violations.push(format!(
            "deadline: counter {got} != {expect} — a refused request had effects"
        ));
    }
    let counted = sys.stats.snapshot().deadline_exceeded - before;
    if counted != expired_total {
        violations.push(format!(
            "deadline: stats counted {counted} expiries but workers observed {expired_total}"
        ));
    }
    expired_total
}

/// Mode-flip torture: increment a counter under a lock while a seed-derived
/// schedule of per-lock mode flips drags that lock through every
/// non-NoQuiesce mode. Exactness of the final count is the oracle for the
/// flip protocol's total-exclusion guarantee (a section completing under a
/// stale mode would race a section under the new one and lose an update).
///
/// Determinism: the flip *sequence* is a pure function of the seed and the
/// base mode (consecutive repeats are excluded, so every scheduled flip
/// changes the resolved mode and records exactly one event). Single-worker
/// runs interleave flips at fixed operation boundaries on the worker thread
/// itself, keeping the whole phase — fault ticks included — reproducible;
/// multi-worker runs race a dedicated flipper thread against the workers,
/// which always completes the full schedule.
fn torture_flips(
    sys: &Arc<TmSystem>,
    cfg: &TortureConfig,
    violations: &mut Vec<String>,
) -> Vec<String> {
    use tle_base::TCell;
    use tle_core::ElidableMutex;

    const FLIPS: usize = 12;
    /// Flip targets: every mode except `StmCondvarNoQuiesce`, which the
    /// controller and the torture schedule alike must never select (the
    /// no-quiesce contract is a per-lock application opt-in only).
    const TARGETS: [AlgoMode; 5] = [
        AlgoMode::Baseline,
        AlgoMode::StmSpin,
        AlgoMode::StmCondvar,
        AlgoMode::HtmCondvar,
        AlgoMode::AdaptiveHtm,
    ];

    let lock = ElidableMutex::new("torture-flips");
    sys.adopt_lock(&lock);
    let mut rng = XorShift64::new(cfg.seed ^ 0xF11F);
    let mut schedule = Vec::with_capacity(FLIPS);
    let mut prev = cfg.mode;
    for _ in 0..FLIPS {
        let next = loop {
            let cand = TARGETS[rng.below(TARGETS.len() as u64) as usize];
            if cand != prev {
                break cand;
            }
        };
        schedule.push(next);
        prev = next;
    }

    let cell = Arc::new(TCell::new(0u64));
    let workers = cfg.workers.max(1);
    let ops = cfg.ops_per_worker;
    if workers == 1 {
        // Deterministic shape: flips fire at fixed op boundaries from the
        // one worker thread.
        fault::set_lane(0);
        let th = sys.register();
        let interval = (ops / FLIPS as u64).max(1);
        let mut flipped = 0usize;
        for i in 0..ops {
            if i % interval == 0 && flipped < FLIPS {
                sys.set_lock_mode(&lock, schedule[flipped]);
                flipped += 1;
            }
            th.tx(&lock).run(|ctx| {
                let v = ctx.read(&*cell)?;
                ctx.write(&*cell, v + 1)?;
                Ok(())
            });
        }
        for &m in &schedule[flipped..] {
            sys.set_lock_mode(&lock, m);
        }
    } else {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let sys = Arc::clone(sys);
                let lock = lock.clone();
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    fault::set_lane(w as u64);
                    let th = sys.register();
                    for _ in 0..ops {
                        th.tx(&lock).run(|ctx| {
                            let v = ctx.read(&*cell)?;
                            ctx.write(&*cell, v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        let flipper = {
            let sys = Arc::clone(sys);
            let lock = lock.clone();
            let schedule = schedule.clone();
            std::thread::spawn(move || {
                for m in schedule {
                    sys.set_lock_mode(&lock, m);
                    std::thread::sleep(std::time::Duration::from_micros(300));
                }
            })
        };
        let mut panicked = false;
        for h in handles {
            panicked |= h.join().is_err();
        }
        flipper.join().expect("flipper thread panicked");
        if panicked {
            violations.push("flips: a counter worker panicked".into());
        }
    }

    let expect = workers as u64 * ops;
    let got = cell.load_direct();
    if got != expect {
        violations.push(format!(
            "flips: counter {got} != {expect} — a section completed under a stale mode"
        ));
    }
    if lock.is_no_quiesce() {
        violations.push("flips: lock entered NoQuiesce without an opt-in".into());
    }
    let events = sys.mode_switches();
    let seq: Vec<String> = events
        .iter()
        .filter(|e| e.lock == lock.name())
        .map(|e| format!("{}>{}", e.from.label(), e.to.label()))
        .collect();
    let expected_seq: Vec<String> = schedule
        .iter()
        .scan(cfg.mode, |from, &to| {
            let s = format!("{}>{}", from.label(), to.label());
            *from = to;
            Some(s)
        })
        .collect();
    if seq != expected_seq {
        violations.push(format!(
            "flips: recorded switch sequence {seq:?} != schedule {expected_seq:?}"
        ));
    }
    seq
}

/// Single-worker txset phase: every operation checked against a `BTreeSet`.
fn torture_set_sequential(sys: &Arc<TmSystem>, cfg: &TortureConfig, violations: &mut Vec<String>) {
    fault::set_lane(0);
    let set = make_set(&cfg.structure);
    let th = sys.register();
    prefill(&*set, &th);
    let mut oracle: BTreeSet<u64> = (0..set.key_space()).step_by(2).collect();
    let mut rng = XorShift64::new(cfg.seed | 1);
    let space = set.key_space();
    for i in 0..cfg.ops_per_worker {
        let key = rng.below(space);
        let (got, want, op) = match rng.below(3) {
            0 => (set.insert(&th, key), oracle.insert(key), "insert"),
            1 => (set.remove(&th, key), oracle.remove(&key), "remove"),
            _ => (set.contains(&th, key), oracle.contains(&key), "contains"),
        };
        if got != want {
            violations.push(format!(
                "{}: op {i} {op}({key}) returned {got}, oracle says {want}",
                set.name()
            ));
            return; // the set and oracle have diverged; later ops are noise
        }
    }
    if set.len_direct() != oracle.len() {
        violations.push(format!(
            "{}: final size {} != oracle {}",
            set.name(),
            set.len_direct(),
            oracle.len()
        ));
    }
}

/// Multi-worker txset phase: per-thread net insert/remove deltas must match
/// final membership exactly.
fn torture_set_concurrent(sys: &Arc<TmSystem>, cfg: &TortureConfig, violations: &mut Vec<String>) {
    let set = make_set(&cfg.structure);
    let space = set.key_space();
    {
        // Seed the even keys before any worker runs; the membership check
        // below accounts for them as each key's initial state.
        let th = sys.register();
        prefill(&*set, &th);
    }
    let handles: Vec<_> = (0..cfg.workers)
        .map(|w| {
            let sys = Arc::clone(sys);
            let set = Arc::clone(&set);
            let ops = cfg.ops_per_worker;
            let seed = cfg.seed;
            std::thread::spawn(move || {
                fault::set_lane(w as u64);
                let th = sys.register();
                let mut rng = XorShift64::new(seed ^ (0x5EED << 8) ^ w as u64);
                let mut net = vec![0i64; space as usize];
                for _ in 0..ops {
                    let key = rng.below(space);
                    match rng.below(3) {
                        0 => {
                            if set.insert(&th, key) {
                                net[key as usize] += 1;
                            }
                        }
                        1 => {
                            if set.remove(&th, key) {
                                net[key as usize] -= 1;
                            }
                        }
                        _ => {
                            let _ = set.contains(&th, key);
                        }
                    }
                }
                net
            })
        })
        .collect();
    let mut net = vec![0i64; space as usize];
    for h in handles {
        match h.join() {
            Ok(worker_net) => {
                for (k, d) in worker_net.into_iter().enumerate() {
                    net[k] += d;
                }
            }
            Err(_) => {
                violations.push(format!("{}: a torture worker panicked", set.name()));
                return;
            }
        }
    }
    let th = sys.register();
    let mut live = 0usize;
    for key in 0..space {
        let member = set.contains(&th, key);
        // Prefill seeded the even keys before any worker ran.
        let expect = net[key as usize] + i64::from(key % 2 == 0) > 0;
        if member != expect {
            violations.push(format!(
                "{}: key {key} membership {member} but net deltas say {expect}",
                set.name()
            ));
        }
        live += member as usize;
    }
    if set.len_direct() != live {
        violations.push(format!(
            "{}: len_direct {} != counted membership {live}",
            set.name(),
            set.len_direct()
        ));
    }
}

/// pbzip phase: a compress/decompress round trip must be lossless under
/// injection (the pipeline's CRC checks run inside `decompress_parallel`).
fn torture_pbzip(sys: &Arc<TmSystem>, cfg: &TortureConfig, violations: &mut Vec<String>) {
    let input = gen_text(cfg.seed ^ 0xB21F, 48 * 1024);
    let pcfg = PipelineConfig {
        workers: cfg.workers.max(2),
        block_size: 8 * 1024,
        fifo_cap: 2 * cfg.workers.max(2),
    };
    let compressed = compress_parallel(sys, &input, &pcfg);
    match decompress_parallel(sys, &compressed, &pcfg) {
        Ok(rt) => {
            if rt != input {
                violations.push(format!(
                    "pbzip: round trip mismatch ({} in, {} out)",
                    input.len(),
                    rt.len()
                ));
            }
        }
        Err(e) => violations.push(format!("pbzip: decompress failed: {e:?}")),
    }
}

/// x265 phase: the wavefront encode must complete and emit every frame.
fn torture_x265(sys: &Arc<TmSystem>, cfg: &TortureConfig, violations: &mut Vec<String>) {
    const FRAMES: usize = 4;
    let source = VideoSource::new(64, 48, FRAMES, cfg.seed ^ 0x265);
    let ecfg = EncoderConfig {
        workers: cfg.workers.max(2),
        qp: 12,
        keyframe_interval: 4,
        lookahead_depth: 2,
        target_bits_per_frame: None,
        frame_threads: 2,
        slices: 1,
    };
    let v = encode_video(sys, &source, &ecfg);
    if v.frames.len() != FRAMES {
        violations.push(format!(
            "x265: encoded {} of {FRAMES} frames",
            v.frames.len()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torture_plan_arms_every_hazard() {
        let plan = torture_plan(1);
        let armed: std::collections::HashSet<_> =
            plan.rules.iter().map(|r| r.hazard.index()).collect();
        assert_eq!(armed.len(), Hazard::COUNT, "every hazard class is armed");
    }

    #[test]
    fn report_repro_key_reflects_causes() {
        let report = TortureReport {
            seed: 1,
            mode: AlgoMode::StmCondvar,
            workers: 1,
            secs: 0.0,
            violations: Vec::new(),
            fault: FaultSnapshot::default(),
            stats: TrialStats::default(),
            escalations: 0,
            watchdog_trips: 0,
            switches: Vec::new(),
            deadline_expiries: 0,
            async_checksum: 0,
        };
        let key = report.repro_key();
        for c in AbortCause::ALL {
            assert!(key.contains(c.label()));
        }
        assert!(report.ok());
        assert!(report.render().contains("PASS"));
    }
}
