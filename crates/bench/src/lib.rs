//! # tle-bench — the paper's evaluation harness
//!
//! One bench target per table/figure (see DESIGN.md §4):
//!
//! | target              | reproduces            |
//! |---------------------|-----------------------|
//! | `fig2_pbzip`        | Figure 2 (a-f)        |
//! | `table_pbzip_stats` | §VII-A in-text stats  |
//! | `fig3_x265`         | Figure 3 (a-c)        |
//! | `fig4_aborts`       | Figure 4              |
//! | `fig5_micro`        | Figure 5 (a-f)        |
//! | `ablate_htm_retry`  | §VII-A retry tuning   |
//! | `ablate_quiesce`    | §IV drain scaling     |
//! | `ablate_ready_flag` | §V Listing 3 vs 4     |
//! | `crit_primitives`   | primitive-op latency  |
//!
//! Benches run **reduced sweeps by default** so `cargo bench` finishes in
//! minutes; set `TLE_BENCH_FULL=1` for the paper-scale sweep and
//! `TLE_BENCH_TRIALS=n` to override the trial count (paper: 5 for the
//! applications, 3 for the microbenchmarks).

use std::sync::Arc;
use std::time::Instant;
use tle_core::{AlgoMode, TmSystem};

// The JSON tree moved to `tle-base` (the lint crate's SARIF emitter builds
// on it too); the `tle_bench::json` path keeps working via this re-export.
pub use tle_base::json;

pub mod perf;
pub mod torture;
pub mod trajectory;
pub mod workloads;

/// Whether the full paper-scale sweep was requested.
pub fn full_sweep() -> bool {
    std::env::var("TLE_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Trials per configuration.
pub fn trials(default: usize) -> usize {
    std::env::var("TLE_BENCH_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Worker-thread sweep (paper: 1..=8).
pub fn thread_sweep() -> Vec<usize> {
    if full_sweep() {
        (1..=8).collect()
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Time a closure.
pub fn time_secs(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Mean over `n` timed trials.
pub fn mean_secs(n: usize, mut f: impl FnMut()) -> f64 {
    let mut total = 0.0;
    for _ in 0..n {
        total += time_secs(&mut f);
    }
    total / n as f64
}

/// Build a fresh system for one trial of `mode`.
pub fn fresh_system(mode: AlgoMode) -> Arc<TmSystem> {
    Arc::new(TmSystem::new(mode))
}

/// Fixed-width table printer for the bench outputs.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format seconds with 3 decimals.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Format a ratio as a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

/// Format a speedup factor.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_is_well_formed() {
        let mut t = Table::new("test", &["a", "bb", "ccc"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.print(); // must not panic
    }

    #[test]
    #[should_panic]
    fn table_rejects_arity_mismatch() {
        let mut t = Table::new("test", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn thread_sweep_reduced_by_default() {
        if !full_sweep() {
            assert_eq!(thread_sweep(), vec![1, 2, 4, 8]);
        }
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(1.23456), "1.235");
        assert_eq!(fmt_pct(0.085), "8.5%");
        assert_eq!(fmt_x(1.095), "1.09x");
    }
}
