//! `tle-bench trajectory` — the cross-PR throughput history.
//!
//! Every PR that touches performance commits a `BENCH_<n>.json` artifact
//! (emitted by `tle-bench emit`). Each file answers "how fast is PR n";
//! this module answers the question the sequence exists for: *how has
//! each figure's throughput moved across PRs?* It parses every committed
//! artifact — all schema versions (v1 PR 6, v2 PR 7, v3 PR 8+) share the
//! run-identity and `measured.ops_per_sec` fields this table needs — and
//! prints one table per figure with a column per PR, `-` where a workload
//! didn't exist yet.

use crate::json::Json;
use std::path::{Path, PathBuf};

/// Schema versions this reader understands. New versions must extend the
/// run objects, not rename the identity fields, or this range (and the
/// table) is the test that notices.
pub const KNOWN_SCHEMA_VERSIONS: std::ops::RangeInclusive<u64> = 1..=3;

/// Identity of one benchmark point, stable across PRs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey {
    pub figure: String,
    pub workload: String,
    pub mix: String,
    pub mode: String,
    pub policy: String,
}

/// One row of the trajectory: a run key plus its throughput per PR
/// (`None` where the PR's artifact has no such run).
#[derive(Debug)]
pub struct Row {
    pub key: RunKey,
    pub unit: String,
    pub ops_per_sec: Vec<Option<f64>>,
}

/// The assembled history.
#[derive(Debug)]
pub struct Trajectory {
    /// PR numbers, ascending; column order of every row.
    pub prs: Vec<u64>,
    /// Rows sorted by key (figure first, so rendering can group).
    pub rows: Vec<Row>,
}

/// One run as parsed from an artifact: identity, unit, throughput.
type ParsedRun = (RunKey, String, f64);

/// Parse one artifact into `(pr, runs)`.
fn parse_artifact(label: &str, doc: &Json) -> Result<(u64, Vec<ParsedRun>), String> {
    if doc.get("schema").and_then(Json::as_str) != Some("tle-bench-trajectory") {
        return Err(format!("{label}: not a tle-bench-trajectory document"));
    }
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{label}: missing schema_version"))?;
    if !KNOWN_SCHEMA_VERSIONS.contains(&version) {
        return Err(format!(
            "{label}: schema_version {version} is outside the understood range \
             {}..={}",
            KNOWN_SCHEMA_VERSIONS.start(),
            KNOWN_SCHEMA_VERSIONS.end()
        ));
    }
    let pr = doc
        .get("pr")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{label}: missing pr number"))?;
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{label}: missing runs array"))?;
    let mut out = Vec::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        let field = |name: &str| {
            run.get(name)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{label}: run {i} missing `{name}`"))
        };
        let key = RunKey {
            figure: field("figure")?,
            workload: field("workload")?,
            mix: field("mix")?,
            mode: field("mode")?,
            policy: field("policy")?,
        };
        let unit = field("unit")?;
        let ops = run
            .get("measured")
            .and_then(|m| m.get("ops_per_sec"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{label}: run {i} missing measured.ops_per_sec"))?;
        out.push((key, unit, ops));
    }
    Ok((pr, out))
}

/// Assemble the trajectory from parsed artifacts (label is used in error
/// messages — typically the file name).
pub fn assemble(docs: &[(String, Json)]) -> Result<Trajectory, String> {
    let mut parsed = Vec::with_capacity(docs.len());
    for (label, doc) in docs {
        parsed.push(parse_artifact(label, doc)?);
    }
    parsed.sort_by_key(|(pr, _)| *pr);
    let prs: Vec<u64> = parsed.iter().map(|(pr, _)| *pr).collect();
    {
        let mut dedup = prs.clone();
        dedup.dedup();
        if dedup.len() != prs.len() {
            return Err("two artifacts claim the same pr number".into());
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    for (col, (_, runs)) in parsed.iter().enumerate() {
        for (key, unit, ops) in runs {
            let row = match rows.iter_mut().find(|r| &r.key == key) {
                Some(r) => r,
                None => {
                    rows.push(Row {
                        key: key.clone(),
                        unit: unit.clone(),
                        ops_per_sec: vec![None; prs.len()],
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.ops_per_sec[col] = Some(*ops);
        }
    }
    rows.sort_by(|a, b| a.key.cmp(&b.key));
    Ok(Trajectory { prs, rows })
}

/// Find the committed `BENCH_<n>.json` artifacts under `dir`, ordered by
/// `n`.
pub fn discover(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            found.push((n, path));
        }
    }
    found.sort();
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

/// Load and assemble the artifacts at `paths`.
pub fn load(paths: &[PathBuf]) -> Result<Trajectory, String> {
    let mut docs = Vec::with_capacity(paths.len());
    for path in paths {
        let label = path.display().to_string();
        let src = std::fs::read_to_string(path).map_err(|e| format!("{label}: {e}"))?;
        let doc = Json::parse(&src).map_err(|e| format!("{label}: {e}"))?;
        docs.push((label, doc));
    }
    assemble(&docs)
}

/// `4282699.675 -> "4.28M"` — compact cells so 4+ PR columns fit a
/// terminal.
fn fmt_ops(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Render the per-figure tables.
pub fn render(t: &Trajectory) -> String {
    let mut out = String::new();
    let mut figure: Option<&str> = None;
    for row in &t.rows {
        if figure != Some(row.key.figure.as_str()) {
            figure = Some(&row.key.figure);
            out.push_str(&format!(
                "\n== {} (ops/sec by PR; `-` = not benchmarked in that PR) ==\n",
                row.key.figure
            ));
            let mut header = format!(
                "{:<18} {:<8} {:<14} {:<10}",
                "workload", "mix", "mode", "policy"
            );
            for pr in &t.prs {
                header.push_str(&format!(" {:>9}", format!("PR {pr}")));
            }
            out.push_str(&header);
            out.push('\n');
            out.push_str(&"-".repeat(header.len()));
            out.push('\n');
        }
        let mut line = format!(
            "{:<18} {:<8} {:<14} {:<10}",
            row.key.workload, row.key.mix, row.key.mode, row.key.policy
        );
        for cell in &row.ops_per_sec {
            line.push_str(&format!(
                " {:>9}",
                cell.map_or_else(|| "-".to_owned(), fmt_ops)
            ));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(pr: u64, version: u64, runs: &[(&str, &str, f64)]) -> (String, Json) {
        let runs = runs
            .iter()
            .map(|(figure, mode, ops)| {
                Json::Obj(vec![
                    ("figure".into(), Json::str(*figure)),
                    ("workload".into(), Json::str("w")),
                    ("mix".into(), Json::str("-")),
                    ("mode".into(), Json::str(*mode)),
                    ("policy".into(), Json::str("-")),
                    ("unit".into(), Json::str("ops/sec")),
                    (
                        "measured".into(),
                        Json::Obj(vec![("ops_per_sec".into(), Json::f64(*ops))]),
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("tle-bench-trajectory")),
            ("schema_version".into(), Json::u64(version)),
            ("pr".into(), Json::u64(pr)),
            ("runs".into(), Json::Arr(runs)),
        ]);
        (format!("BENCH_{pr}.json"), doc)
    }

    #[test]
    fn rows_align_across_prs_with_gaps() {
        let t = assemble(&[
            artifact(7, 2, &[("fig2", "STM", 100.0)]),
            artifact(6, 1, &[("fig2", "STM", 90.0), ("fig3", "HTM", 50.0)]),
        ])
        .unwrap();
        assert_eq!(t.prs, vec![6, 7]);
        let fig2 = t.rows.iter().find(|r| r.key.figure == "fig2").unwrap();
        assert_eq!(fig2.ops_per_sec, vec![Some(90.0), Some(100.0)]);
        let fig3 = t.rows.iter().find(|r| r.key.figure == "fig3").unwrap();
        assert_eq!(fig3.ops_per_sec, vec![Some(50.0), None]);
    }

    #[test]
    fn unknown_versions_and_duplicate_prs_are_errors() {
        let err = assemble(&[artifact(6, 9, &[])]).unwrap_err();
        assert!(err.contains("schema_version 9"), "{err}");
        let err = assemble(&[artifact(6, 1, &[]), artifact(6, 1, &[])]).unwrap_err();
        assert!(err.contains("same pr"), "{err}");
    }

    #[test]
    fn render_groups_by_figure_and_marks_gaps() {
        let t = assemble(&[
            artifact(6, 1, &[("fig2", "STM", 4_282_699.0)]),
            artifact(8, 3, &[("fig2", "STM", 5_000_000.0), ("kv", "STM", 800.0)]),
        ])
        .unwrap();
        let text = render(&t);
        assert!(text.contains("== fig2"), "{text}");
        assert!(text.contains("== kv"), "{text}");
        assert!(text.contains("4.28M"), "{text}");
        assert!(text.contains("5.00M"), "{text}");
        // kv did not exist in PR 6.
        let kv_line = text
            .lines()
            .find(|l| l.starts_with('w') && text[..text.find(l).unwrap()].contains("== kv"))
            .unwrap();
        assert!(kv_line.contains('-'), "{kv_line}");
    }

    #[test]
    fn fmt_ops_is_compact() {
        assert_eq!(fmt_ops(12.34), "12.3");
        assert_eq!(fmt_ops(4_300.0), "4.3k");
        assert_eq!(fmt_ops(4_282_699.675), "4.28M");
        assert_eq!(fmt_ops(2.5e9), "2.50G");
    }
}
