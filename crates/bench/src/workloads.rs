//! Shared workload runners used by the figure benches.

use std::sync::Arc;
use tle_base::stats::TxStatsSnapshot;
use tle_base::{AbortCause, OrecLayout, Padded, TCell};
use tle_core::{AlgoMode, ElidableMutex, ThreadHandle, TmSystem};
use tle_pbz::{compress_parallel, decompress_parallel, PipelineConfig};
use tle_stm::QuiescePolicy;
use tle_txset::{TxHashSet, TxListSet, TxSet, TxTreeSet};
use tle_wfe::{encode_video, EncoderConfig, VideoSource};

/// Statistics harvested after a trial.
#[derive(Debug, Clone, Default)]
pub struct TrialStats {
    pub stm: TxStatsSnapshot,
    /// Full HTM snapshot, including the per-cause abort counters the
    /// diagnostics layer maintains (`by_cause`).
    pub htm: TxStatsSnapshot,
    pub htm_commits: u64,
    pub htm_aborts: u64,
    pub htm_conflicts: u64,
    pub htm_capacity: u64,
    pub htm_events: u64,
    pub serial_fallbacks: u64,
}

impl TrialStats {
    /// Capture from a system.
    pub fn capture(sys: &TmSystem) -> Self {
        TrialStats {
            stm: sys.stm.stats.snapshot(),
            htm: sys.htm.stats.tx.snapshot(),
            htm_commits: sys.htm.stats.tx.commits.get(),
            htm_aborts: sys.htm.stats.tx.aborts.get(),
            htm_conflicts: sys.htm.stats.conflict_aborts.get(),
            htm_capacity: sys.htm.stats.capacity_aborts.get(),
            htm_events: sys.htm.stats.event_aborts.get(),
            serial_fallbacks: sys.stats.serial_fallbacks.get(),
        }
    }

    /// Aborts attributed to `cause`, summed over both TM domains.
    pub fn cause(&self, cause: AbortCause) -> u64 {
        self.stm.cause(cause) + self.htm.cause(cause)
    }

    /// Render the non-zero per-cause abort counts as a compact one-liner,
    /// e.g. `conflict=41 capacity=3 event=7`. Returns `"-"` when the trial
    /// recorded no aborts at all.
    pub fn abort_breakdown(&self) -> String {
        let mut out = String::new();
        for cause in AbortCause::ALL {
            let n = self.cause(cause);
            if n > 0 {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&format!("{}={}", cause.label(), n));
            }
        }
        if out.is_empty() {
            out.push('-');
        }
        out
    }

    /// HTM abort rate over attempts.
    pub fn htm_abort_rate(&self) -> f64 {
        let attempts = self.htm_commits + self.htm_aborts;
        if attempts == 0 {
            0.0
        } else {
            self.htm_aborts as f64 / attempts as f64
        }
    }

    /// Serial-fallback rate over completed critical sections.
    pub fn fallback_rate(&self) -> f64 {
        let total = self.htm_commits + self.stm.commits + self.serial_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.serial_fallbacks as f64 / total as f64
        }
    }
}

/// One PBZip2 trial: compress (and optionally verify-decompress) `input`.
///
/// Like every trial runner, this warms the system first (one pipeline pass
/// over a small prefix, so thread handles, FIFO slots, and transaction
/// buffers are all allocated) and then measures a steady-state window with
/// freshly reset stats.
pub fn pbzip_compress_trial(
    mode: AlgoMode,
    workers: usize,
    block_size: usize,
    input: &[u8],
) -> (f64, TrialStats) {
    let sys = Arc::new(TmSystem::new(mode));
    let cfg = PipelineConfig {
        workers,
        block_size,
        fifo_cap: 2 * workers.max(2),
    };
    let warm = &input[..input.len().min(block_size)];
    std::hint::black_box(compress_parallel(&sys, warm, &cfg));
    sys.reset_stats();
    let t0 = std::time::Instant::now();
    let out = compress_parallel(&sys, input, &cfg);
    let secs = t0.elapsed().as_secs_f64();
    assert!(!out.is_empty() || input.is_empty());
    (secs, TrialStats::capture(&sys))
}

/// One PBZip2 decompression trial (warmed up on a small synthetic blob,
/// then measured steady-state).
pub fn pbzip_decompress_trial(
    mode: AlgoMode,
    workers: usize,
    block_size: usize,
    compressed: &[u8],
) -> (f64, TrialStats) {
    let sys = Arc::new(TmSystem::new(mode));
    let cfg = PipelineConfig {
        workers,
        block_size,
        fifo_cap: 2 * workers.max(2),
    };
    let warm = compress_parallel(&sys, &tle_pbz::gen_text(7, 4096), &cfg);
    std::hint::black_box(decompress_parallel(&sys, &warm, &cfg).expect("warmup decompress"));
    sys.reset_stats();
    let t0 = std::time::Instant::now();
    let out = decompress_parallel(&sys, compressed, &cfg).expect("decompress failed");
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    (secs, TrialStats::capture(&sys))
}

/// Video sizes mirroring the paper's small/medium/large inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoSize {
    Small,
    Medium,
    Large,
}

impl VideoSize {
    /// (width, height, frames), scaled down per DESIGN.md §3.5.
    pub fn params(self, full: bool) -> (usize, usize, usize) {
        match (self, full) {
            (VideoSize::Small, false) => (96, 64, 8),
            (VideoSize::Medium, false) => (160, 96, 10),
            (VideoSize::Large, false) => (240, 144, 12),
            (VideoSize::Small, true) => (160, 96, 24),
            (VideoSize::Medium, true) => (320, 192, 32),
            (VideoSize::Large, true) => (480, 288, 48),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            VideoSize::Small => "small",
            VideoSize::Medium => "medium",
            VideoSize::Large => "large",
        }
    }
}

/// One x265 trial: encode the synthetic sequence.
pub fn x265_trial(
    mode: AlgoMode,
    workers: usize,
    size: VideoSize,
    full: bool,
) -> (f64, TrialStats) {
    x265_trial_cfg(mode, workers, size, full, tle_htm::HtmConfig::default())
}

/// [`x265_trial`] with an explicit HTM configuration (used by Figure 4's
/// elevated-event-pressure table).
pub fn x265_trial_cfg(
    mode: AlgoMode,
    workers: usize,
    size: VideoSize,
    full: bool,
    htm_cfg: tle_htm::HtmConfig,
) -> (f64, TrialStats) {
    let (w, h, n) = size.params(full);
    let source = VideoSource::new(w, h, n, 0xFEED);
    let sys = Arc::new(TmSystem::builder().mode(mode).htm_config(htm_cfg).build());
    let cfg = EncoderConfig {
        workers,
        qp: 12,
        keyframe_interval: 8,
        lookahead_depth: 4,
        target_bits_per_frame: None,
        frame_threads: 3,
        slices: 1,
    };
    // Warmup: a two-frame encode spins up the worker pool and touches the
    // hot allocation paths; the measured window then starts from reset
    // stats (steady state).
    let warm_src = VideoSource::new(w, h, 2, 0xFEED);
    std::hint::black_box(encode_video(&sys, &warm_src, &cfg));
    sys.reset_stats();
    let t0 = std::time::Instant::now();
    let v = encode_video(&sys, &source, &cfg);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(v.frames.len(), n);
    (secs, TrialStats::capture(&sys))
}

/// The lazy-subscription A/B workload: every transaction scans a row of
/// padded cells sized *exactly* at the simulated HTM's read capacity
/// (`lines` distinct cache lines: `lines - 1` shared read-only cells plus
/// one private read-modify-write cell per thread). Eager subscription
/// spends one extra read-set line on the lock word, pushing every attempt
/// over the cap: capacity aborts exhaust the retry budget, the serial
/// fallbacks acquire the lock, and each acquisition dooms every concurrent
/// elision — the lock-word conflict-abort cascade the lazy modes exist to
/// avoid. Lazy subscription never reads the lock word, so the identical
/// workload fits the cap and elides cleanly.
pub fn lazy_subscription_trial(
    mode: AlgoMode,
    threads: usize,
    lines: usize,
    ops_per_thread: u64,
) -> (f64, TrialStats) {
    assert!(
        lines >= 2,
        "need at least one shared line plus the private one"
    );
    let htm_cfg = tle_htm::HtmConfig {
        read_cap_lines: lines,
        event_prob: 0.0, // deterministic: capacity and conflict aborts only
        ..tle_htm::HtmConfig::default()
    };
    let sys = Arc::new(TmSystem::builder().mode(mode).htm_config(htm_cfg).build());
    let lock = Arc::new(ElidableMutex::new("lazy-ab"));
    let shared: Arc<Vec<Padded<TCell<u64>>>> =
        Arc::new((0..lines - 1).map(|_| Padded(TCell::new(1u64))).collect());
    let privs: Arc<Vec<Padded<TCell<u64>>>> =
        Arc::new((0..threads).map(|_| Padded(TCell::new(0u64))).collect());
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let warmup_ops = ops_per_thread / 10;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            let privs = Arc::clone(&privs);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let th = sys.register();
                let one_op = |th: &ThreadHandle| {
                    th.tx(&lock).run(|ctx| {
                        let mut acc = 0u64;
                        for c in shared.iter() {
                            acc = acc.wrapping_add(ctx.read(&**c)?);
                        }
                        let old = ctx.read(&*privs[t])?;
                        ctx.write(&*privs[t], old.wrapping_add(acc))?;
                        Ok(())
                    });
                };
                barrier.wait(); // sync0: everyone registered
                for _ in 0..warmup_ops {
                    one_op(&th);
                }
                barrier.wait(); // sync1: warmup drained everywhere
                barrier.wait(); // sync2: measured window opens
                for _ in 0..ops_per_thread {
                    one_op(&th);
                }
            })
        })
        .collect();
    barrier.wait(); // sync0
    barrier.wait(); // sync1
    sys.reset_stats();
    let t0 = std::time::Instant::now();
    barrier.wait(); // sync2
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = TrialStats::capture(&sys);
    for p in privs.iter() {
        assert!(p.load_direct() > 0, "a worker's ops were lost");
    }
    let total_ops = threads as f64 * ops_per_thread as f64;
    (total_ops / secs, stats)
}

/// The Figure 5 operation mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 50% insert / 50% remove (left column of Figure 5).
    UpdateOnly,
    /// 50% lookup, 25% insert, 25% remove (right column).
    HalfLookup,
    /// 90% lookup, 5% insert, 5% remove — the read-mostly mix the
    /// read-only commit fast path targets (`BENCH_<n>.json` A/B runs).
    ReadMostly,
}

impl Mix {
    pub fn label(self) -> &'static str {
        match self {
            Mix::UpdateOnly => "50i/50r",
            Mix::HalfLookup => "50l/25i/25r",
            Mix::ReadMostly => "90l/5i/5r",
        }
    }
}

/// One operation of `mix` against `set` — the shared inner loop of the
/// warmup and measured windows of [`micro_trial_opts`].
#[inline]
fn mix_op(
    set: &dyn TxSet,
    th: &ThreadHandle,
    mix: Mix,
    rng: &mut tle_base::rng::XorShift64,
    space: u64,
) {
    let key = rng.below(space);
    let dice = rng.below(100);
    match mix {
        Mix::UpdateOnly => {
            if dice < 50 {
                set.insert(th, key);
            } else {
                set.remove(th, key);
            }
        }
        Mix::HalfLookup => {
            if dice < 50 {
                set.contains(th, key);
            } else if dice < 75 {
                set.insert(th, key);
            } else {
                set.remove(th, key);
            }
        }
        Mix::ReadMostly => {
            if dice < 90 {
                set.contains(th, key);
            } else if dice < 95 {
                set.insert(th, key);
            } else {
                set.remove(th, key);
            }
        }
    }
}

/// Build one of the three set structures by name.
pub fn make_set(kind: &str) -> Arc<dyn TxSet> {
    match kind {
        "list" => Arc::new(TxListSet::new()),
        "hash" => Arc::new(TxHashSet::new()),
        "tree" => Arc::new(TxTreeSet::new()),
        other => panic!("unknown set kind {other}"),
    }
}

/// Pre-fill a set to 50% occupancy (the paper's initial condition).
pub fn prefill(set: &dyn TxSet, th: &ThreadHandle) {
    let space = set.key_space();
    for k in (0..space).step_by(2) {
        set.insert(th, k);
    }
}

/// One Figure 5 trial: `threads` workers each run `ops_per_thread`
/// operations of `mix` against `set` under `policy`. Returns throughput in
/// operations per second plus stats.
pub fn micro_trial(
    kind: &str,
    policy: QuiescePolicy,
    threads: usize,
    mix: Mix,
    ops_per_thread: u64,
) -> (f64, TrialStats) {
    micro_trial_algo(
        kind,
        policy,
        tle_stm::StmAlgo::MlWt,
        threads,
        mix,
        ops_per_thread,
    )
}

/// [`micro_trial`] with an explicit STM algorithm (the `ablate_stm_algo`
/// bench).
pub fn micro_trial_algo(
    kind: &str,
    policy: QuiescePolicy,
    algo: tle_stm::StmAlgo,
    threads: usize,
    mix: Mix,
    ops_per_thread: u64,
) -> (f64, TrialStats) {
    micro_trial_opts(
        kind,
        policy,
        threads,
        mix,
        ops_per_thread,
        MicroOpts {
            algo,
            ..MicroOpts::warmed(ops_per_thread)
        },
    )
}

/// Runtime knobs for [`micro_trial_opts`] beyond the classic figure
/// parameters. Every `BENCH_<n>.json` optimization A/B run is expressed as
/// a pair of these with exactly one field flipped.
#[derive(Debug, Clone, Copy)]
pub struct MicroOpts {
    /// STM algorithm (paper default: `ml_wt`).
    pub algo: tle_stm::StmAlgo,
    /// Orec-table layout (padded vs compact, for the false-sharing A/B).
    pub orec_layout: OrecLayout,
    /// Read-only commit fast path on/off.
    pub ro_fast_path: bool,
    /// Transaction-buffer reuse across retries on/off.
    pub buf_reuse: bool,
    /// Per-thread warmup operations executed before the measured window;
    /// stats reset at the steady-state boundary.
    pub warmup_ops: u64,
}

impl Default for MicroOpts {
    fn default() -> Self {
        MicroOpts {
            algo: tle_stm::StmAlgo::MlWt,
            orec_layout: OrecLayout::default(),
            ro_fast_path: true,
            buf_reuse: true,
            warmup_ops: 0,
        }
    }
}

impl MicroOpts {
    /// Defaults plus the standard warmup: 10% of the measured per-thread
    /// op count.
    pub fn warmed(ops_per_thread: u64) -> Self {
        MicroOpts {
            warmup_ops: ops_per_thread / 10,
            ..Self::default()
        }
    }
}

/// [`micro_trial`] with the full knob set. The trial runs in three barrier
/// phases: *sync0* (all workers registered) → warmup ops on a dedicated
/// rng stream → *sync1* (stats reset, clock armed) → *sync2* (measured
/// window opens). The measured window replays the same operation sequence
/// regardless of how much warmup preceded it.
pub fn micro_trial_opts(
    kind: &str,
    policy: QuiescePolicy,
    threads: usize,
    mix: Mix,
    ops_per_thread: u64,
    opts: MicroOpts,
) -> (f64, TrialStats) {
    // Microbenchmarks always run the STM (the paper's Figure 5 machine has
    // no HTM); the policy is the independent variable.
    let sys = Arc::new(
        TmSystem::builder()
            .mode(AlgoMode::StmCondvar)
            .orec_layout(opts.orec_layout)
            .ro_commit_fast_path(opts.ro_fast_path)
            .build(),
    );
    sys.stm.set_policy(policy);
    sys.set_stm_algo(opts.algo);
    let reuse_before = tle_stm::buf_reuse_enabled();
    tle_stm::set_buf_reuse(opts.buf_reuse);
    let set = make_set(kind);
    {
        let th = sys.register();
        prefill(&*set, &th);
    }
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let warmup_ops = opts.warmup_ops;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let sys = Arc::clone(&sys);
            let set = Arc::clone(&set);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let th = sys.register();
                let space = set.key_space();
                let mut wrng = tle_base::rng::XorShift64::new(0xAB ^ t as u64);
                barrier.wait(); // sync0: everyone registered
                for _ in 0..warmup_ops {
                    mix_op(&*set, &th, mix, &mut wrng, space);
                }
                barrier.wait(); // sync1: warmup drained everywhere
                let mut rng = tle_base::rng::XorShift64::new(0xF1F5 ^ t as u64);
                barrier.wait(); // sync2: measured window opens
                for _ in 0..ops_per_thread {
                    mix_op(&*set, &th, mix, &mut rng, space);
                }
            })
        })
        .collect();
    barrier.wait(); // sync0
    barrier.wait(); // sync1
    sys.reset_stats();
    let t0 = std::time::Instant::now();
    barrier.wait(); // sync2
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = TrialStats::capture(&sys);
    tle_stm::set_buf_reuse(reuse_before);
    let total_ops = threads as f64 * ops_per_thread as f64;
    (total_ops / secs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbzip_trial_smoke() {
        let input = tle_pbz::gen_text(1, 64 * 1024);
        let (secs, stats) = pbzip_compress_trial(AlgoMode::StmCondvar, 2, 16 * 1024, &input);
        assert!(secs > 0.0);
        assert!(stats.stm.commits > 0, "no STM commits recorded");
    }

    #[test]
    fn x265_trial_smoke() {
        let (secs, stats) = x265_trial(AlgoMode::HtmCondvar, 2, VideoSize::Small, false);
        assert!(secs > 0.0);
        assert!(stats.htm_commits > 0, "no HTM commits recorded");
    }

    #[test]
    fn micro_trial_smoke_all_policies() {
        for policy in [
            QuiescePolicy::Always,
            QuiescePolicy::Never,
            QuiescePolicy::Selective,
        ] {
            let (tput, stats) = micro_trial("hash", policy, 2, Mix::HalfLookup, 2_000);
            assert!(tput > 0.0);
            assert!(stats.stm.commits > 0);
            if policy == QuiescePolicy::Selective {
                assert!(
                    stats.stm.quiesce_skipped > 0,
                    "SelectNoQ should skip some drains"
                );
            }
        }
    }

    /// Acceptance test for the diagnostics layer: every [`AbortCause`] in
    /// the taxonomy is reachable through the real runtime paths, and each
    /// occurrence lands in the matching `by_cause` counter. The STM causes
    /// are driven surgically through the raw `ml_wt` API (two transactions
    /// interleaved on one thread); the HTM causes go through the full
    /// runner with hardware knobs tuned to force each one.
    #[test]
    fn every_abort_cause_is_reachable_and_counted() {
        use tle_base::{Padded, TCell};
        use tle_core::ElidableMutex;
        use tle_htm::HtmConfig;

        // --- STM: ReadConflict, WriteConflict, ValidationFailed,
        //     CommitValidation, Explicit ---
        // `Never`: a committing writer must not drain quiescence here — the
        // interleaved transaction on this same thread still has its epoch
        // published, so an `Always` drain would wait on it forever.
        let g = tle_stm::StmGlobal::new(QuiescePolicy::Never);
        let sa = g.slots.register_raw().unwrap();
        let sb = g.slots.register_raw().unwrap();
        // Distinct cache lines so the two cells cannot share an orec.
        let x = Padded(TCell::new(0u64));
        let y = Padded(TCell::new(0u64));
        assert_ne!(
            g.orecs.index_of(x.addr()),
            g.orecs.index_of(y.addr()),
            "test cells alias one orec; pick different addresses"
        );

        // B locks X's orec; A's read and write spin out against it.
        {
            let mut b = g.begin(sb);
            b.write(&*x, 1u64).unwrap();
            let mut a = g.begin(sa);
            let e = a.read(&*x).unwrap_err();
            assert_eq!(e, AbortCause::ReadConflict);
            a.abort(e);
            let mut a = g.begin(sa);
            let e = a.write(&*x, 2u64).unwrap_err();
            assert_eq!(e, AbortCause::WriteConflict);
            a.abort(e);
            b.abort(AbortCause::Explicit);
        }
        // A's timestamp extension finds X changed since A read it.
        {
            let mut a = g.begin(sa);
            a.read(&*x).unwrap();
            let mut b = g.begin(sb);
            b.write(&*x, 3u64).unwrap();
            b.commit().unwrap();
            let e = a.read(&*x).unwrap_err();
            assert_eq!(e, AbortCause::ValidationFailed);
            a.abort(e);
        }
        // A is a writer with a read set gone stale: the commit-time
        // validation fails (distinct from the extension failure above).
        {
            let mut a = g.begin(sa);
            a.read(&*x).unwrap();
            a.write(&*y, 9u64).unwrap();
            let mut b = g.begin(sb);
            b.write(&*x, 4u64).unwrap();
            b.commit().unwrap();
            let e = a.commit().unwrap_err();
            assert_eq!(e, AbortCause::CommitValidation);
        }
        let stm = g.stats.snapshot();
        for cause in [
            AbortCause::ReadConflict,
            AbortCause::WriteConflict,
            AbortCause::ValidationFailed,
            AbortCause::CommitValidation,
            AbortCause::Explicit,
        ] {
            assert!(
                stm.cause(cause) >= 1,
                "STM {cause} reached but not counted: {:?}",
                stm.by_cause
            );
        }
        g.slots.unregister_raw(sa);
        g.slots.unregister_raw(sb);

        // --- HTM Conflict: requester-wins dooming, driven directly ---
        let hg = tle_htm::HtmGlobal::new(HtmConfig {
            event_prob: 0.0,
            ..HtmConfig::default()
        });
        let h1 = hg.slots.register_raw().unwrap();
        let h2 = hg.slots.register_raw().unwrap();
        let c = TCell::new(0u64);
        let mut t1 = hg.begin(h1);
        t1.write(&c, 1u64).unwrap();
        let mut t2 = hg.begin(h2);
        t2.write(&c, 2u64).unwrap(); // dooms t1 (requester wins)
        let e = t1.commit().unwrap_err();
        assert_eq!(e, AbortCause::Conflict);
        t2.commit().unwrap();
        assert!(hg.stats.tx.snapshot().cause(AbortCause::Conflict) >= 1);
        hg.slots.unregister_raw(h1);
        hg.slots.unregister_raw(h2);

        // --- HTM Capacity / Event / Unsafe through the full runner:
        //     each forces the serial fallback, which must still succeed ---
        let runner_cases: [(&str, HtmConfig, AbortCause); 3] = [
            (
                "capacity",
                HtmConfig {
                    write_cap_lines: 1,
                    event_prob: 0.0,
                    ..HtmConfig::default()
                },
                AbortCause::Capacity,
            ),
            (
                "event",
                HtmConfig {
                    event_prob: 1.0,
                    ..HtmConfig::default()
                },
                AbortCause::Event,
            ),
            (
                "unsafe",
                HtmConfig {
                    event_prob: 0.0,
                    ..HtmConfig::default()
                },
                AbortCause::Unsafe,
            ),
        ];
        for (label, cfg, want) in runner_cases {
            let sys = Arc::new(
                TmSystem::builder()
                    .mode(AlgoMode::HtmCondvar)
                    .htm_config(cfg)
                    .build(),
            );
            let lock = ElidableMutex::new("causes");
            let c1 = Padded(TCell::new(0u64));
            let c2 = Padded(TCell::new(0u64));
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                if want == AbortCause::Unsafe {
                    ctx.unsafe_op()?;
                }
                // Two distinct cache lines: overflows write_cap_lines=1.
                ctx.write(&*c1, 1u64)?;
                ctx.write(&*c2, 2u64)?;
                Ok(())
            });
            assert_eq!(c1.load_direct(), 1, "{label}: serial fallback lost a write");
            assert_eq!(c2.load_direct(), 2, "{label}: serial fallback lost a write");
            let stats = TrialStats::capture(&sys);
            assert!(
                stats.cause(want) >= 1,
                "{label}: cause {want} not counted; breakdown: {}",
                stats.abort_breakdown()
            );
            assert!(stats.serial_fallbacks >= 1, "{label}: no serial fallback");
        }

        // --- Fault plane: the robustness trace kinds stay pinned, and each
        //     injected abort class surfaces as exactly its mapped cause ---
        use tle_base::fault::{self, FaultPlan, FaultRule, Hazard};
        use tle_base::trace::TraceKind;
        assert_eq!(TraceKind::FaultInject as u8, 12);
        assert_eq!(TraceKind::Escalate as u8, 13);
        assert_eq!(TraceKind::QuiesceStall as u8, 14);
        assert_eq!(TraceKind::FaultInject.label(), "fault-inject");
        assert_eq!(TraceKind::Escalate.label(), "escalate");
        assert_eq!(TraceKind::QuiesceStall.label(), "quiesce-stall");
        for h in Hazard::ALL {
            if let Some(c) = h.cause() {
                assert!(
                    matches!(
                        c,
                        AbortCause::Event | AbortCause::Capacity | AbortCause::Conflict
                    ),
                    "injected {h:?} must map into the existing taxonomy"
                );
            }
        }
        // One delivery of each abort-class hazard, then the oracle goes
        // quiet (limit 1) so concurrently running tests see a clean plane.
        fault::install(
            FaultPlan::new(0xFA17)
                .rule(FaultRule::new(Hazard::HtmEvent, 1).limit(1))
                .rule(FaultRule::new(Hazard::HtmCapacity, 1).limit(1))
                .rule(FaultRule::new(Hazard::HtmConflict, 1).limit(1)),
        );
        fault::set_lane(0);
        let sys = Arc::new(
            TmSystem::builder()
                .mode(AlgoMode::HtmCondvar)
                .htm_config(HtmConfig {
                    event_prob: 0.0, // injected Events only — keeps counts exact
                    ..HtmConfig::default()
                })
                .build(),
        );
        let lock = ElidableMutex::new("fault-pins");
        let cell = Padded(TCell::new(0u64));
        let th = sys.register();
        for _ in 0..4 {
            th.tx(&lock).run(|ctx| {
                let v = ctx.read(&*cell)?;
                ctx.write(&*cell, v + 1)?;
                Ok(())
            });
        }
        let snap = fault::snapshot();
        fault::clear();
        assert_eq!(cell.load_direct(), 4, "faulted sections must all commit");
        let stats = TrialStats::capture(&sys);
        for (hazard, cause) in [
            (Hazard::HtmEvent, AbortCause::Event),
            (Hazard::HtmCapacity, AbortCause::Capacity),
            (Hazard::HtmConflict, AbortCause::Conflict),
        ] {
            assert_eq!(snap.fired(hazard), 1, "{hazard:?} should fire exactly once");
            assert!(
                stats.cause(cause) >= 1,
                "injected {hazard:?} not counted as {cause}; breakdown: {}",
                stats.abort_breakdown()
            );
        }
    }

    /// Satellite (a): the steady-state window excludes warmup work. Every
    /// set op is exactly one committed transaction, so measured commits
    /// must equal `threads * ops_per_thread` — warmup transactions (10%
    /// more) must have been wiped by the reset at the sync1 boundary.
    #[test]
    fn warmup_ops_are_excluded_from_the_measured_window() {
        let threads = 2;
        let ops = 2_000u64;
        let opts = MicroOpts::warmed(ops);
        assert_eq!(opts.warmup_ops, ops / 10);
        let (tput, stats) = micro_trial_opts(
            "hash",
            QuiescePolicy::Selective,
            threads,
            Mix::HalfLookup,
            ops,
            opts,
        );
        assert!(tput > 0.0);
        let total = threads as u64 * ops;
        // A contended section may complete as a serial fallback instead of
        // an STM commit, so bound from both sides rather than demanding
        // exact equality.
        assert!(
            stats.stm.commits <= total,
            "warmup leaked into the window: {} commits > {} measured ops",
            stats.stm.commits,
            total
        );
        assert!(
            stats.stm.commits + stats.serial_fallbacks >= total,
            "measured ops unaccounted for: {} commits + {} fallbacks < {}",
            stats.stm.commits,
            stats.serial_fallbacks,
            total
        );
    }

    /// The read-mostly mix drives the read-only commit fast path: under the
    /// `Always` drain policy, skipped drains can only come from the fast
    /// path, and disabling it for an A/B run restores drain-everything.
    #[test]
    fn read_mostly_mix_exercises_the_ro_fast_path() {
        assert_eq!(Mix::ReadMostly.label(), "90l/5i/5r");
        let (_, on) = micro_trial_opts(
            "hash",
            QuiescePolicy::Always,
            2,
            Mix::ReadMostly,
            2_000,
            MicroOpts::warmed(2_000),
        );
        assert!(on.stm.quiesce_skipped > 0, "fast path never taken");
        let (_, off) = micro_trial_opts(
            "hash",
            QuiescePolicy::Always,
            2,
            Mix::ReadMostly,
            2_000,
            MicroOpts {
                ro_fast_path: false,
                ..MicroOpts::warmed(2_000)
            },
        );
        assert_eq!(
            off.stm.quiesce_skipped, 0,
            "disabled fast path still skipped"
        );
    }

    /// Both orec layouts produce working trials (the A/B pair behind the
    /// `orec-padding` optimization entry).
    #[test]
    fn micro_trial_runs_under_both_orec_layouts() {
        for layout in [OrecLayout::Padded, OrecLayout::Compact] {
            let (tput, stats) = micro_trial_opts(
                "tree",
                QuiescePolicy::Selective,
                2,
                Mix::UpdateOnly,
                1_000,
                MicroOpts {
                    orec_layout: layout,
                    ..MicroOpts::warmed(1_000)
                },
            );
            assert!(tput > 0.0, "{}: no throughput", layout.label());
            assert!(stats.stm.commits > 0, "{}: no commits", layout.label());
        }
    }

    #[test]
    fn abort_breakdown_formats_nonzero_causes() {
        let mut stats = TrialStats::default();
        assert_eq!(stats.abort_breakdown(), "-");
        stats.stm.by_cause[AbortCause::ReadConflict.index()] = 2;
        stats.htm.by_cause[AbortCause::Capacity.index()] = 1;
        stats.htm.by_cause[AbortCause::ReadConflict.index()] = 1;
        assert_eq!(stats.abort_breakdown(), "read-conflict=3 capacity=1");
        assert_eq!(stats.cause(AbortCause::ReadConflict), 3);
    }

    /// The lazy-subscription A/B is non-vacuous in both directions: the
    /// eager side's lock-word subscription overflows the read cap (capacity
    /// aborts, serial fallbacks, and the acquire-time conflict dooms they
    /// cause), and the lazy side elides the very same workload with a
    /// fraction of the lock-word conflict aborts.
    #[test]
    fn lazy_subscription_trial_shows_the_capacity_cascade() {
        let (eager_t, eager) = lazy_subscription_trial(AlgoMode::AdaptiveHtm, 3, 6, 2_000);
        let (lazy_t, lazy) = lazy_subscription_trial(AlgoMode::AdaptiveHtmLazy, 3, 6, 2_000);
        assert!(eager_t > 0.0 && lazy_t > 0.0);
        assert!(
            eager.cause(AbortCause::Capacity) > 0,
            "eager subscription should overflow the read cap"
        );
        assert!(eager.serial_fallbacks > 0, "no fallback cascade to measure");
        assert!(
            lazy.cause(AbortCause::Capacity) == 0,
            "lazy must fit the cap exactly: {}",
            lazy.abort_breakdown()
        );
        assert!(
            lazy.cause(AbortCause::Conflict) < eager.cause(AbortCause::Conflict).max(1),
            "lazy should see fewer lock-word conflict aborts: lazy {} vs eager {}",
            lazy.abort_breakdown(),
            eager.abort_breakdown()
        );
        assert!(lazy.htm_commits > 0, "lazy side never elided");
    }

    #[test]
    fn prefill_reaches_half_occupancy() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let set = make_set("list");
        prefill(&*set, &th);
        assert_eq!(set.len_direct(), set.key_space() as usize / 2);
    }
}
