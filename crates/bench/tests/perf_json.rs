//! Satellite tests for the perf-trajectory subsystem: the comparator's
//! regression verdicts, byte-identical round-trips, and determinism of the
//! report's stable view across repeated emits.

use tle_bench::json::Json;
use tle_bench::perf::{
    compare, emit_report, stable_view, synthetic_report, validate, EmitConfig, TOLERANCE,
};

/// Emits toggle process-global knobs (buffer reuse, its alloc counters)
/// for the A/B entries, so tests that emit must not overlap.
static EMIT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn emit_serialized(cfg: &EmitConfig) -> Json {
    let _guard = EMIT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    emit_report(cfg)
}

/// A tiny real-emit configuration: microbenchmarks only, small op counts,
/// so the full pipeline (workload -> stats -> JSON) runs in test time.
fn tiny() -> EmitConfig {
    EmitConfig {
        label: "test",
        threads: 2,
        micro_ops: 400,
        pbzip_kib: 8,
        trials: 1,
        apps: false,
        sessions_curve: &[16, 48],
        session_requests: 4,
        session_think_ns: 50_000,
    }
}

#[test]
fn injected_regression_is_flagged_and_tolerance_respected() {
    let old = synthetic_report(&[("hash", 1000.0), ("tree", 2000.0)]);

    // Just inside the tolerance band: not a regression.
    let edge = synthetic_report(&[("hash", 1000.0 * (1.0 - TOLERANCE) + 1.0), ("tree", 2000.0)]);
    let out = compare(&old, &edge).unwrap();
    assert!(out.regressions.is_empty(), "{:?}", out.regressions);

    let beyond = synthetic_report(&[("hash", 880.0), ("tree", 2000.0)]);
    let out = compare(&old, &beyond).unwrap();
    assert_eq!(out.regressions.len(), 1);
    assert!(out.regressions[0].contains("hash"), "{:?}", out.regressions);
    assert!(
        out.regressions[0].contains("-12.0%"),
        "{:?}",
        out.regressions
    );
}

#[test]
fn real_emit_validates_and_round_trips_byte_identically() {
    let report = emit_serialized(&tiny());
    validate(&report).expect("real emit must satisfy its own schema");
    let rendered = report.render();
    let reparsed = Json::parse(&rendered).expect("emitted JSON must parse");
    assert_eq!(
        reparsed.render(),
        rendered,
        "emit -> parse -> emit must be byte-identical"
    );
}

#[test]
fn repeated_emits_are_deterministic_modulo_timing() {
    let a = emit_serialized(&tiny());
    let b = emit_serialized(&tiny());
    assert_eq!(
        stable_view(&a).render(),
        stable_view(&b).render(),
        "two emits of the same config must differ only in measured subtrees"
    );
    // And a report always compares clean against itself.
    let self_cmp = compare(&a, &a).unwrap();
    assert!(self_cmp.regressions.is_empty());
    assert!(self_cmp.improvements.is_empty());
    assert!(self_cmp.compared >= 5, "expected all fig5 runs compared");
}

#[test]
fn emitted_session_curve_pairs_async_against_threads() {
    let report = emit_serialized(&tiny());
    let runs = report.get("runs").and_then(Json::as_arr).unwrap();
    let session_runs: Vec<&Json> = runs
        .iter()
        .filter(|r| r.get("figure").and_then(Json::as_str) == Some("kv-sessions"))
        .collect();
    // One async + one thread-per-session run per curve point.
    assert_eq!(session_runs.len(), 2 * tiny().sessions_curve.len());
    for (i, &sessions) in tiny().sessions_curve.iter().enumerate() {
        let pair = &session_runs[2 * i..2 * i + 2];
        let mix = format!("s{sessions}");
        let offered = sessions as u64 * tiny().session_requests;
        for (run, policy) in pair.iter().zip(["async-w8", "threads"]) {
            assert_eq!(run.get("mix").and_then(Json::as_str), Some(mix.as_str()));
            assert_eq!(run.get("policy").and_then(Json::as_str), Some(policy));
            let reqs = run.get("measured").and_then(|m| m.get("requests")).unwrap();
            assert_eq!(reqs.get("offered").and_then(Json::as_u64), Some(offered));
            assert_eq!(reqs.get("completed").and_then(Json::as_u64), Some(offered));
        }
    }
}

#[test]
fn emitted_optimization_entries_carry_before_and_after_numbers() {
    let report = emit_serialized(&tiny());
    let opts = report.get("optimizations").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = opts
        .iter()
        .map(|o| o.get("name").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        names,
        [
            "orec-padding",
            "ro-fast-path",
            "txbuf-reuse",
            "lazy-subscription"
        ]
    );
    for o in opts {
        for side in ["baseline", "optimized"] {
            let t = o
                .get(side)
                .and_then(|s| s.get("measured"))
                .and_then(|m| m.get("ops_per_sec"))
                .and_then(Json::as_f64)
                .unwrap();
            assert!(t > 0.0, "{side} throughput must be measured");
        }
        assert!(
            o.get("measured")
                .and_then(|m| m.get("speedup"))
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
    }
    // txbuf-reuse must prove the allocation churn went away: with reuse
    // off every transaction leases a fresh block, with reuse on the pool
    // hits dominate.
    let reuse = &opts[2];
    let alloc = |side: &str, key: &str| {
        reuse
            .get(side)
            .and_then(|s| s.get("measured"))
            .and_then(|m| m.get(key))
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert!(
        alloc("baseline", "fresh_allocs") > alloc("optimized", "fresh_allocs"),
        "buf reuse must cut fresh allocations ({} -> {})",
        alloc("baseline", "fresh_allocs"),
        alloc("optimized", "fresh_allocs"),
    );
    assert!(
        alloc("optimized", "reuse_hits") > 0,
        "buf reuse must record pool hits"
    );
}
