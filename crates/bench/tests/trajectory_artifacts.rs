//! The committed `BENCH_<n>.json` artifacts must stay readable by the
//! trajectory assembler — all schema versions at once. This is the test
//! that fails when a future schema bump forgets the reader.

use std::path::Path;
use tle_bench::trajectory::{discover, load, render};

fn repo_root() -> &'static Path {
    // crates/bench -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn committed_artifacts_assemble_into_one_history() {
    let paths = discover(repo_root()).expect("scan workspace root");
    assert!(
        paths.len() >= 4,
        "expected the PR 6..9 artifacts, found {paths:?}"
    );
    let t = load(&paths).expect("all committed artifacts parse");
    assert!(
        t.prs.windows(2).all(|w| w[0] < w[1]),
        "PR columns must ascend: {:?}",
        t.prs
    );
    for pr in [6, 7, 8, 9] {
        assert!(t.prs.contains(&pr), "missing PR {pr} in {:?}", t.prs);
    }

    // The fig2 pbzip STM+CondVar point exists in every artifact: it is the
    // paper's headline figure and the first thing the suite ever measured.
    let col = |pr: u64| t.prs.iter().position(|&p| p == pr).unwrap();
    let fig2 = t
        .rows
        .iter()
        .find(|r| {
            r.key.figure == "fig2"
                && r.key.workload == "pbzip-compress"
                && r.key.mode == "STM+CondVar"
        })
        .expect("fig2 pbzip STM+CondVar row");
    for pr in [6, 7, 8, 9] {
        let ops = fig2.ops_per_sec[col(pr)];
        assert!(
            ops.is_some_and(|v| v > 0.0),
            "fig2 STM+CondVar missing or non-positive in PR {pr}: {ops:?}"
        );
    }

    // kv-sessions landed with schema v3 (PR 8): present there, absent in
    // the v1/v2 artifacts — the gap is data, not an error.
    let sessions = t
        .rows
        .iter()
        .find(|r| r.key.figure == "kv-sessions")
        .expect("kv-sessions row");
    assert!(sessions.ops_per_sec[col(6)].is_none());
    assert!(sessions.ops_per_sec[col(7)].is_none());
    assert!(sessions.ops_per_sec[col(8)].is_some());
    assert!(sessions.ops_per_sec[col(9)].is_some());
}

#[test]
fn rendered_history_has_one_table_per_figure() {
    let paths = discover(repo_root()).unwrap();
    let t = load(&paths).unwrap();
    let text = render(&t);
    for figure in ["fig2", "fig3", "fig5", "kv", "kv-sessions"] {
        assert!(
            text.contains(&format!("== {figure}")),
            "no table for {figure}"
        );
    }
    assert!(text.contains("PR 6") && text.contains("PR 9"), "{text}");
}
