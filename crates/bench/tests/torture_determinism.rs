//! Fault-schedule determinism: the same torture seed must reproduce the
//! run byte-for-byte — identical per-cause abort counts, identical fault
//! tallies, and (when the `trace` feature is on) an identical event-ring
//! summary. CI runs this file under both feature states.
//!
//! One `#[test]` only: the fault oracle and the trace ring are
//! process-global, and a sibling test running concurrently would pollute
//! both.

use tle_base::trace::{self, TraceSummary};
use tle_bench::torture::{run_torture, TortureConfig};
use tle_core::AlgoMode;

// Determinism does not need the full torture length to be meaningful, and
// debug kernels are slow; CI's release run keeps the full weight.
const OPS_PER_WORKER: u64 = if cfg!(debug_assertions) { 500 } else { 2_000 };

#[test]
fn same_seed_reproduces_counts_and_traces() {
    let run = |seed: u64, mode: AlgoMode| -> (String, TraceSummary) {
        trace::clear();
        let report = run_torture(&TortureConfig {
            ops_per_worker: OPS_PER_WORKER,
            ..TortureConfig::repro(seed, mode)
        });
        assert!(
            report.ok(),
            "oracle violations under seed {seed:#x} {mode:?}: {:?}",
            report.violations
        );
        let summary = TraceSummary::of(&trace::snapshot());
        (report.repro_key(), summary)
    };
    for mode in [AlgoMode::HtmCondvar, AlgoMode::StmCondvar] {
        let (key1, sum1) = run(0x7047, mode);
        let (key2, sum2) = run(0x7047, mode);
        assert_eq!(key1, key2, "[{mode:?}] per-cause abort counts must match");
        assert_eq!(sum1, sum2, "[{mode:?}] trace-ring summaries must match");
        // A different seed shifts the schedule (the armed tallies at
        // minimum), proving the key is sensitive to what it encodes.
        let (key3, _) = run(0xBEEF, mode);
        assert_ne!(key1, key3, "[{mode:?}] different seed, different run");
    }

    // Adaptive hazard: the seeded controller flips per-lock modes during
    // the run, and the switch sequence is part of the repro key — so the
    // same seed must replay the same mode-flip trajectory too.
    let run_adaptive = |seed: u64| -> String {
        trace::clear();
        let cfg = TortureConfig {
            adaptive: true,
            ops_per_worker: OPS_PER_WORKER,
            ..TortureConfig::repro(seed, AlgoMode::HtmCondvar)
        };
        let report = run_torture(&cfg);
        assert!(
            report.ok(),
            "oracle violations under adaptive seed {seed:#x}: {:?}",
            report.violations
        );
        assert!(
            !report.switches.is_empty(),
            "the adaptive hazard should flip at least one lock"
        );
        report.repro_key()
    };
    let ak1 = run_adaptive(0x7047);
    let ak2 = run_adaptive(0x7047);
    assert_eq!(ak1, ak2, "adaptive switch sequence must replay exactly");

    // Deadline hazard: a seeded subset of requests carries a zero budget
    // and is refused at the dispatch gate before any speculation, so the
    // expiry tally — folded into the repro key — is a pure function of
    // the seed. Two same-seed runs must agree byte-for-byte, and the key
    // must actually carry the tally.
    let run_deadline = |seed: u64| -> String {
        trace::clear();
        let cfg = TortureConfig {
            deadline: true,
            ops_per_worker: OPS_PER_WORKER,
            ..TortureConfig::repro(seed, AlgoMode::StmCondvar)
        };
        let report = run_torture(&cfg);
        assert!(
            report.ok(),
            "oracle violations under deadline seed {seed:#x}: {:?}",
            report.violations
        );
        assert!(
            report.deadline_expiries > 0,
            "the deadline hazard should refuse at least one request"
        );
        report.repro_key()
    };
    let dk1 = run_deadline(0x7047);
    let dk2 = run_deadline(0x7047);
    assert_eq!(dk1, dk2, "deadline expiry tally must replay exactly");
    assert!(
        dk1.contains(";deadline:"),
        "repro key must fold the expiry tally in: {dk1}"
    );

    // Async hazard: the same fault schedule driven through the waker path
    // (run_async attempts, suspended condvar waits, yield-based backoff).
    // With one executor worker every attempt serializes and the phase is
    // timer-free, so the whole run — per-cause aborts under HTM fault
    // injection included — must replay byte-for-byte, and the key must
    // carry the phase checksum.
    let run_async_phase = |seed: u64, mode: AlgoMode| -> String {
        trace::clear();
        let cfg = TortureConfig {
            async_exec: true,
            ops_per_worker: OPS_PER_WORKER,
            ..TortureConfig::repro(seed, mode)
        };
        let report = run_torture(&cfg);
        assert!(
            report.ok(),
            "oracle violations under async seed {seed:#x} {mode:?}: {:?}",
            report.violations
        );
        assert_ne!(
            report.async_checksum, 0,
            "async phase must record a checksum"
        );
        report.repro_key()
    };
    for mode in [AlgoMode::HtmCondvar, AlgoMode::StmCondvar] {
        let yk1 = run_async_phase(0x7047, mode);
        let yk2 = run_async_phase(0x7047, mode);
        assert_eq!(yk1, yk2, "[{mode:?}] async phase must replay exactly");
        assert!(
            yk1.contains(";async:"),
            "repro key must fold the async checksum in: {yk1}"
        );
    }
}
