//! # tle-htm — a simulated best-effort hardware transactional memory
//!
//! The paper's HTM experiments run on Intel TSX (RTM) on a Haswell i7-4770.
//! Rust cannot reproduce that directly: RTM intrinsics exist, but without TM
//! compiler support every transactional access would still need manual
//! instrumentation, and the grading environment has no TSX hardware. Per the
//! substitution rule (DESIGN.md §3.1), this crate implements a **software
//! simulation of a best-effort HTM** that preserves the behavioural envelope
//! the paper's evaluation depends on:
//!
//! - **Eager conflict detection at cache-line granularity.** Each 64-byte
//!   line maps to a table entry carrying a reader bitmap and a writer slot.
//!   Accesses "doom" conflicting transactions the way MESI invalidations
//!   abort real hardware transactions (requester-wins).
//! - **Bounded capacity.** Read/write sets are limited to a configurable
//!   number of lines (default 512 read / 128 written ≈ an L1 footprint);
//!   overflow aborts with [`AbortCause::Capacity`].
//! - **Asynchronous events.** Real hardware transactions die on interrupts,
//!   SMIs and TLB misses; the simulator injects seeded random
//!   [`AbortCause::Event`] aborts at a configurable per-access probability.
//! - **No escape for unsafe operations.** Anything irrevocable inside a
//!   hardware transaction ([`HtmTx::unsafe_op`]) aborts with
//!   [`AbortCause::Unsafe`], which the TLE policy layer maps straight to the
//!   serial fallback — mirroring how GCC's HTM TLE serializes on syscalls.
//! - **Strong atomicity at commit.** Stores are buffered in a redo log and
//!   only published after the transaction wins its commit point, so no
//!   quiescence is ever needed (paper §IV: "In HTM, such accesses are not
//!   possible").
//!
//! [`AbortCause`]: tle_base::AbortCause

mod table;
mod tx;

pub use table::LineTable;
pub use tx::HtmTx;

use std::sync::atomic::{AtomicU32, Ordering};
use tle_base::stats::{Counter, TxStats};
use tle_base::{AbortCause, Padded, SlotRegistry};

/// Tuning knobs for the simulated hardware.
#[derive(Debug, Clone)]
pub struct HtmConfig {
    /// Maximum distinct cache lines a transaction may read.
    pub read_cap_lines: usize,
    /// Maximum distinct cache lines a transaction may write.
    pub write_cap_lines: usize,
    /// Per-access probability of a simulated asynchronous event abort.
    pub event_prob: f64,
    /// Seed for the event-abort RNG (deterministic runs).
    pub seed: u64,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            read_cap_lines: 512,
            write_cap_lines: 128,
            event_prob: 2e-4,
            seed: 0xC0FFEE,
        }
    }
}

/// Per-slot transaction lifecycle state, used by the dooming protocol.
pub(crate) mod state {
    pub const IDLE: u32 = 0;
    pub const ACTIVE: u32 = 1;
    pub const DOOMED: u32 = 2;
    pub const COMMITTED: u32 = 3;
}

/// Result of trying to doom a conflicting transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DoomOutcome {
    /// Victim was active and is now doomed (requester wins).
    Doomed,
    /// Victim already won its commit point; the requester must self-abort.
    Committing,
    /// Victim was idle or already doomed; nothing to do.
    Gone,
}

/// HTM-specific statistics (extends the common [`TxStats`]).
#[derive(Debug, Default)]
pub struct HtmStats {
    /// Common commit/abort counters.
    pub tx: TxStats,
    /// Aborts caused by data conflicts (dooming).
    pub conflict_aborts: Counter,
    /// Aborts caused by capacity overflow.
    pub capacity_aborts: Counter,
    /// Aborts caused by simulated asynchronous events.
    pub event_aborts: Counter,
    /// Aborts caused by unsafe (irrevocable) operations.
    pub unsafe_aborts: Counter,
}

impl HtmStats {
    /// Reset all counters (between benchmark trials).
    pub fn reset(&self) {
        self.tx.reset();
        self.conflict_aborts.reset();
        self.capacity_aborts.reset();
        self.event_aborts.reset();
        self.unsafe_aborts.reset();
    }

    pub(crate) fn count_abort(&self, shard: usize, cause: AbortCause) {
        // Per-cause attribution lives in tx.by_cause; the coarse legacy
        // counters below are kept in sync for existing consumers.
        self.tx.count_abort(shard, cause);
        match cause {
            AbortCause::Capacity => self.capacity_aborts.inc(shard),
            AbortCause::Event => self.event_aborts.inc(shard),
            AbortCause::Unsafe => self.unsafe_aborts.inc(shard),
            _ => self.conflict_aborts.inc(shard),
        }
    }
}

/// Shared state of the simulated HTM: the conflict table, per-slot
/// lifecycle words, and statistics.
pub struct HtmGlobal {
    pub(crate) table: LineTable,
    /// Slot identities; at most 64 concurrent hardware transactions (the
    /// reader bitmap is a `u64`).
    pub slots: SlotRegistry,
    pub(crate) tx_state: [Padded<AtomicU32>; tle_base::slots::MAX_SLOTS],
    /// Statistics.
    pub stats: HtmStats,
    pub(crate) config: HtmConfig,
}

impl HtmGlobal {
    /// A fresh simulated-HTM domain.
    pub fn new(config: HtmConfig) -> Self {
        HtmGlobal {
            table: LineTable::new(),
            slots: SlotRegistry::new(),
            tx_state: std::array::from_fn(|_| Padded(AtomicU32::new(state::IDLE))),
            stats: HtmStats::default(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HtmConfig {
        &self.config
    }

    /// Begin a hardware transaction on the thread occupying `slot_idx`.
    pub fn begin(&self, slot_idx: usize) -> HtmTx<'_> {
        HtmTx::begin(self, slot_idx)
    }

    /// Try to doom the transaction in `victim_slot` (requester-wins).
    pub(crate) fn doom(&self, victim_slot: usize) -> DoomOutcome {
        match self.tx_state[victim_slot].compare_exchange(
            state::ACTIVE,
            state::DOOMED,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {
                tle_base::trace::emit(
                    tle_base::trace::TraceKind::Conflict,
                    tle_base::trace::TxMode::Htm,
                    Some(AbortCause::Conflict),
                    victim_slot as u64,
                );
                DoomOutcome::Doomed
            }
            Err(s) if s == state::COMMITTED => DoomOutcome::Committing,
            Err(_) => DoomOutcome::Gone,
        }
    }

    /// Invalidate `cell`'s cache line as a non-transactional access would:
    /// every hardware transaction holding the line in its read or write set
    /// is doomed, and transactions already past their commit point are
    /// waited out (real coherence orders their stores before ours). This is
    /// the primitive that makes glibc-style lock elision sound — the
    /// fallback path's write to the lock word kills subscribed
    /// transactions.
    pub fn invalidate<T: tle_base::TxVal>(&self, cell: &tle_base::TCell<T>) {
        let li = self.table.index_of(cell.addr());
        let line = self.table.line(li);
        loop {
            let w = line.writer();
            if w == 0 {
                break;
            }
            match self.doom(w as usize - 1) {
                DoomOutcome::Committing => self.wait_not_committed(w as usize - 1),
                DoomOutcome::Doomed | DoomOutcome::Gone => {
                    let _ = line.cas_writer(w, 0);
                }
            }
        }
        let mut bits = line.readers();
        while bits != 0 {
            let victim = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if self.doom(victim) == DoomOutcome::Committing {
                self.wait_not_committed(victim);
            }
        }
    }

    /// Non-blocking [`HtmGlobal::invalidate`]: dooms every transaction
    /// holding `cell`'s line, but where the blocking form waits out a
    /// transaction already past its commit point, this returns `false` and
    /// the caller re-calls after yielding (re-dooming is idempotent — a
    /// doomed or finished victim is skipped on the next round). `true`
    /// means the line is clear, with the same ordering guarantee as the
    /// blocking form. This is the async adaptive-lock path's primitive: an
    /// executor worker must not spin on another slot's commit.
    pub fn try_invalidate<T: tle_base::TxVal>(&self, cell: &tle_base::TCell<T>) -> bool {
        let li = self.table.index_of(cell.addr());
        let line = self.table.line(li);
        let mut clear = true;
        loop {
            let w = line.writer();
            if w == 0 {
                break;
            }
            match self.doom(w as usize - 1) {
                DoomOutcome::Committing => {
                    clear = false;
                    break;
                }
                DoomOutcome::Doomed | DoomOutcome::Gone => {
                    let _ = line.cas_writer(w, 0);
                }
            }
        }
        let mut bits = line.readers();
        while bits != 0 {
            let victim = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if self.doom(victim) == DoomOutcome::Committing
                && self.tx_state[victim].load(Ordering::SeqCst) == state::COMMITTED
            {
                clear = false;
            }
        }
        clear
    }

    /// Non-transactional store: invalidate the line, then write.
    pub fn nontx_store<T: tle_base::TxVal>(&self, cell: &tle_base::TCell<T>, v: T) {
        self.invalidate(cell);
        cell.store_direct(v);
    }

    /// Doom **every** active transaction in the domain, and wait out any
    /// transaction already past its commit point (its redo log finishes
    /// publishing before this returns).
    ///
    /// This is the lazy-subscription lock path's primitive: a lazily
    /// subscribed transaction never puts the fallback lock word in its read
    /// set, so [`invalidate`](Self::invalidate)-ing the lock word cannot
    /// reach it — the acquisition must sweep the slot table instead (the
    /// "doom on acquire" half of making lazy subscription safe, after Dice
    /// et al.).
    pub fn doom_all_active(&self) {
        tle_base::sched::yield_point(tle_base::sched::YieldPoint::TxState);
        for slot in 0..tle_base::slots::MAX_SLOTS {
            if self.doom(slot) == DoomOutcome::Committing {
                self.wait_not_committed(slot);
            }
        }
    }

    /// Non-blocking [`doom_all_active`](Self::doom_all_active): dooms every
    /// active transaction but returns `false` instead of spinning when a
    /// slot is mid-commit; the caller yields and re-calls (re-dooming is
    /// idempotent). The async lazy lock path's primitive, mirroring
    /// [`try_invalidate`](Self::try_invalidate).
    pub fn try_doom_all_active(&self) -> bool {
        tle_base::sched::yield_point(tle_base::sched::YieldPoint::TxState);
        let mut clear = true;
        for slot in 0..tle_base::slots::MAX_SLOTS {
            if self.doom(slot) == DoomOutcome::Committing
                && self.tx_state[slot].load(Ordering::SeqCst) == state::COMMITTED
            {
                clear = false;
            }
        }
        clear
    }

    fn wait_not_committed(&self, slot: usize) {
        let mut spins = 0u32;
        while self.tx_state[slot].load(Ordering::SeqCst) == state::COMMITTED {
            spins += 1;
            // The committing slot needs to run for this wait to end.
            tle_base::sched::spin_hint(tle_base::sched::YieldPoint::TxState);
            if spins < 32 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    pub(crate) fn is_doomed(&self, slot: usize) -> bool {
        self.tx_state[slot].load(Ordering::SeqCst) == state::DOOMED
    }
}

impl Default for HtmGlobal {
    fn default() -> Self {
        Self::new(HtmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tle_base::TCell;

    fn quiet_config() -> HtmConfig {
        HtmConfig {
            event_prob: 0.0,
            ..HtmConfig::default()
        }
    }

    #[test]
    fn single_thread_commit_publishes_writes() {
        let g = HtmGlobal::new(quiet_config());
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(1u64);
        let b = TCell::new(2u64);

        let mut tx = g.begin(slot);
        let va = tx.read(&a).unwrap();
        tx.write(&b, va + 10).unwrap();
        // Lazy versioning: not visible until commit.
        assert_eq!(b.load_direct(), 2);
        tx.commit().unwrap();
        assert_eq!(b.load_direct(), 11);
        assert_eq!(g.stats.tx.commits.get(), 1);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn aborted_writes_never_become_visible() {
        let g = HtmGlobal::new(quiet_config());
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(5u64);
        let mut tx = g.begin(slot);
        tx.write(&a, 99u64).unwrap();
        tx.abort(AbortCause::Explicit);
        assert_eq!(a.load_direct(), 5);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn read_own_write_sees_buffered_value() {
        let g = HtmGlobal::new(quiet_config());
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(1u64);
        let mut tx = g.begin(slot);
        tx.write(&a, 7u64).unwrap();
        assert_eq!(tx.read(&a).unwrap(), 7);
        tx.commit().unwrap();
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn writer_dooms_concurrent_reader() {
        let g = HtmGlobal::new(quiet_config());
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);

        let mut reader = g.begin(s1);
        assert_eq!(reader.read(&a).unwrap(), 0);

        let mut writer = g.begin(s2);
        writer.write(&a, 1u64).unwrap();
        writer.commit().unwrap();

        // The reader was doomed by the conflicting write.
        let r = reader.read(&a);
        assert!(r.is_err(), "doomed reader must observe its doom");
        reader.abort(r.unwrap_err());
        assert!(g.stats.conflict_aborts.get() >= 1);
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn reader_dooms_active_writer() {
        let g = HtmGlobal::new(quiet_config());
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);

        let mut writer = g.begin(s1);
        writer.write(&a, 1u64).unwrap();

        // Requester-wins: the reader invalidates the writer's line.
        let mut reader = g.begin(s2);
        assert_eq!(
            reader.read(&a).unwrap(),
            0,
            "must see pre-transactional value"
        );
        reader.commit().unwrap();

        let r = writer.commit();
        assert!(r.is_err(), "doomed writer must fail to commit");
        assert_eq!(a.load_direct(), 0);
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn capacity_abort_on_write_set_overflow() {
        let mut cfg = quiet_config();
        cfg.write_cap_lines = 4;
        let g = HtmGlobal::new(cfg);
        let slot = g.slots.register_raw().unwrap();
        // Distinct cache lines: boxed cells spread across the heap.
        let cells: Vec<Box<TCell<u64>>> = (0..64).map(|i| Box::new(TCell::new(i))).collect();
        let mut tx = g.begin(slot);
        let mut failed = None;
        for c in &cells {
            if let Err(e) = tx.write(c, 1u64) {
                failed = Some(e);
                break;
            }
        }
        assert_eq!(failed, Some(AbortCause::Capacity));
        tx.abort(AbortCause::Capacity);
        assert_eq!(g.stats.capacity_aborts.get(), 1);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn unsafe_op_aborts_with_unsafe_cause() {
        let g = HtmGlobal::new(quiet_config());
        let slot = g.slots.register_raw().unwrap();
        let mut tx = g.begin(slot);
        let r = tx.unsafe_op();
        assert_eq!(r, Err(AbortCause::Unsafe));
        tx.abort(AbortCause::Unsafe);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn event_aborts_fire_at_configured_rate() {
        let cfg = HtmConfig {
            event_prob: 0.05,
            ..HtmConfig::default()
        };
        let g = HtmGlobal::new(cfg);
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        let mut events = 0;
        for _ in 0..2000 {
            let mut tx = g.begin(slot);
            match tx.read(&a) {
                Ok(_) => {
                    let _ = tx.commit();
                }
                Err(AbortCause::Event) => {
                    events += 1;
                    tx.abort(AbortCause::Event);
                }
                Err(e) => tx.abort(e),
            }
        }
        assert!(events > 20, "expected some event aborts, got {events}");
        assert!(events < 400, "far too many event aborts: {events}");
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let g = std::sync::Arc::new(HtmGlobal::new(quiet_config()));
        let c = std::sync::Arc::new(TCell::new(0u64));
        const THREADS: usize = 8;
        const OPS: u64 = 2_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let g = std::sync::Arc::clone(&g);
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    let slot = g.slots.register_raw().unwrap();
                    for _ in 0..OPS {
                        loop {
                            let mut tx = g.begin(slot);
                            let body = tx.read(&*c).and_then(|v| tx.write(&*c, v + 1));
                            match body {
                                Ok(()) => {
                                    if tx.commit().is_ok() {
                                        break;
                                    }
                                }
                                Err(e) => tx.abort(e),
                            }
                            std::hint::spin_loop();
                        }
                    }
                    g.slots.unregister_raw(slot);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load_direct(), THREADS as u64 * OPS);
    }
}
