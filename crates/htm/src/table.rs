//! The cache-line conflict table.
//!
//! The simulator models the L1-based conflict detection of real HTM: every
//! 64-byte cache line hashes to a [`Line`] entry holding
//!
//! - `readers`: a bitmap of transaction slots with the line in their read
//!   set (hardware analogue: the line is in those cores' caches in shared
//!   state with the transactional-read bit set), and
//! - `writer`: `slot + 1` of the single transaction with the line in its
//!   write set (analogue: modified/exclusive with the transactional-write
//!   bit), `0` if none.
//!
//! Aliasing (two distinct lines hashing to one entry) produces spurious
//! conflicts, exactly as a limited-associativity cache would.

use std::sync::atomic::{AtomicU64, Ordering};
use tle_base::line_of;
use tle_base::sched::{self, YieldPoint};
use tle_base::trace::{self, TraceKind, TxMode};
use tle_base::AbortCause;

/// One conflict-table entry.
#[derive(Debug, Default)]
pub struct Line {
    readers: AtomicU64,
    writer: AtomicU64,
}

impl Line {
    /// Current reader bitmap.
    #[inline]
    pub fn readers(&self) -> u64 {
        self.readers.load(Ordering::SeqCst)
    }

    /// Current writer word (`slot + 1`, `0` = none).
    #[inline]
    pub fn writer(&self) -> u64 {
        self.writer.load(Ordering::SeqCst)
    }

    /// Add `slot` to the reader bitmap.
    #[inline]
    pub fn add_reader(&self, slot: usize) {
        sched::yield_point(YieldPoint::LineMark);
        self.readers.fetch_or(1u64 << slot, Ordering::SeqCst);
    }

    /// Remove `slot` from the reader bitmap.
    #[inline]
    pub fn remove_reader(&self, slot: usize) {
        self.readers.fetch_and(!(1u64 << slot), Ordering::SeqCst);
    }

    /// CAS the writer word.
    #[inline]
    pub fn cas_writer(&self, cur: u64, new: u64) -> bool {
        // Claiming the writer word is the HTM's conflict-visibility edge;
        // clearing it (new == 0) happens on cleanup paths that are already
        // bracketed by state-word hooks.
        if new != 0 {
            sched::yield_point(YieldPoint::LineMark);
        }
        self.writer
            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Whether a transaction other than `self_slot` currently holds this
    /// line (as reader or writer) — i.e. the access about to be marked will
    /// contend. Emits a [`TraceKind::Conflict`] event tagged with the table
    /// index when it does, so traces show conflicts at the line where the
    /// coherence protocol detected them, before the doom protocol picks a
    /// victim.
    pub fn trace_contention(&self, idx: usize, self_slot: usize) -> bool {
        let w = self.writer();
        let other_readers = self.readers() & !(1u64 << self_slot);
        let contended = (w != 0 && w as usize != self_slot + 1) || other_readers != 0;
        if contended {
            trace::emit(
                TraceKind::Conflict,
                TxMode::Htm,
                Some(AbortCause::Conflict),
                idx as u64,
            );
        }
        contended
    }
}

/// The striped table of per-cache-line `Line` entries.
pub struct LineTable {
    lines: Box<[Line]>,
    mask: usize,
}

impl LineTable {
    /// Default size: 2^14 entries.
    pub const DEFAULT_LOG2: usize = 14;

    /// Create a table with `1 << log2` entries.
    pub fn with_log2(log2: usize) -> Self {
        let n = 1usize << log2;
        LineTable {
            lines: (0..n).map(|_| Line::default()).collect(),
            mask: n - 1,
        }
    }

    /// A table of the default size.
    pub fn new() -> Self {
        Self::with_log2(Self::DEFAULT_LOG2)
    }

    /// Map a byte address to its table index.
    #[inline]
    pub fn index_of(&self, addr: usize) -> usize {
        let l = line_of(addr) as u64;
        let h = l.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 40) as usize & self.mask
    }

    /// Access the entry at `idx`.
    #[inline]
    pub fn line(&self, idx: usize) -> &Line {
        &self.lines[idx]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the table is empty (never in practice).
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

impl Default for LineTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cache_line_maps_to_same_entry() {
        let t = LineTable::new();
        let base = 0x10000usize;
        assert_eq!(t.index_of(base), t.index_of(base + 63));
        // Different lines usually map elsewhere.
        let mut distinct = 0;
        for k in 1..100 {
            if t.index_of(base + 64 * k) != t.index_of(base) {
                distinct += 1;
            }
        }
        assert!(distinct > 95);
    }

    #[test]
    fn reader_bitmap_add_remove() {
        let l = Line::default();
        l.add_reader(3);
        l.add_reader(7);
        assert_eq!(l.readers(), (1 << 3) | (1 << 7));
        l.remove_reader(3);
        assert_eq!(l.readers(), 1 << 7);
        l.remove_reader(7);
        assert_eq!(l.readers(), 0);
    }

    #[test]
    fn writer_cas_protocol() {
        let l = Line::default();
        assert!(l.cas_writer(0, 5 + 1));
        assert_eq!(l.writer(), 6);
        assert!(
            !l.cas_writer(0, 3 + 1),
            "occupied writer must not be stolen blindly"
        );
        assert!(l.cas_writer(6, 0));
        assert_eq!(l.writer(), 0);
    }
}
