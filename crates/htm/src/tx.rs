//! The simulated hardware transaction: redo-log buffering, access-time
//! dooming, capacity accounting, and event-abort injection.

use crate::{state, DoomOutcome, HtmGlobal};
use std::sync::atomic::{AtomicU64, Ordering};
use tle_base::fault::{self, Hazard};
use tle_base::history;
use tle_base::mutant::{self, Mutant};
use tle_base::rng::XorShift64;
use tle_base::sched::{self, YieldPoint};
use tle_base::trace::{self, TraceKind, TxMode};
use tle_base::{AbortCause, TCell, TxVal};

/// A single hardware-transaction attempt.
///
/// Ends in exactly one of [`HtmTx::commit`] or [`HtmTx::abort`]; dropping a
/// live transaction aborts it (cleaning its footprint out of the conflict
/// table).
///
/// # Pointer validity
///
/// Like [`tle_stm::StmTx`](https://docs.rs/), the redo log stores raw
/// pointers to written cells; cells must outlive the transaction, which the
/// `tle-core` runner guarantees by construction.
pub struct HtmTx<'g> {
    g: &'g HtmGlobal,
    slot: usize,
    /// Buffered stores `(cell, address, value)`, applied in order at
    /// commit. Looked up by linear scan: hardware write sets are tiny, so
    /// this beats any hash table.
    redo: Vec<(*const AtomicU64, usize, u64)>,
    /// Distinct table entries read / written (for cleanup + capacity),
    /// also scanned linearly.
    read_lines: Vec<u32>,
    write_lines: Vec<u32>,
    rng: XorShift64,
    /// Per-attempt access index, the coordinate the fault oracle's
    /// `at_access` rules key on.
    accesses: u64,
    finished: bool,
}

impl<'g> HtmTx<'g> {
    pub(crate) fn begin(g: &'g HtmGlobal, slot: usize) -> Self {
        sched::yield_point(YieldPoint::TxState);
        g.tx_state[slot].store(state::ACTIVE, Ordering::SeqCst);
        // Seed differs per (slot, begin) so event aborts are not correlated
        // across retries, yet the whole run is deterministic.
        let salt = g.slots.value(slot).wrapping_add(1);
        let seed = g.config.seed ^ ((slot as u64) << 32) ^ salt;
        g.slots
            .publish_raw(slot, g.slots.value(slot).wrapping_add(1));
        trace::emit(TraceKind::Begin, TxMode::Htm, None, slot as u64);
        history::begin(TxMode::Htm);
        HtmTx {
            g,
            slot,
            redo: Vec::with_capacity(8),
            read_lines: Vec::with_capacity(16),
            write_lines: Vec::with_capacity(8),
            rng: XorShift64::new(seed),
            accesses: 0,
            finished: false,
        }
    }

    /// The slot (hardware context) running this transaction.
    #[inline]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Transactionally read a cell.
    pub fn read<T: TxVal>(&mut self, cell: &TCell<T>) -> Result<T, AbortCause> {
        // Seeded bug (`SkipDoomCheck`): pretend the read path forgot both of
        // its doom checks, so a transaction invalidated by a committing
        // writer keeps consuming values.
        let skip_doom = mutant::armed(Mutant::SkipDoomCheck);
        self.access_checks(skip_doom)?;
        let addr = cell.addr();
        let li = self.g.table.index_of(addr) as u32;
        if !self.write_lines.contains(&li) && !self.read_lines.contains(&li) {
            self.mark_read_line(li)?;
        }
        // Read-own-write: return the buffered value.
        if let Some(&(_, _, w)) = self.redo.iter().find(|&&(_, a, _)| a == addr) {
            history::read(addr, w);
            return Ok(T::from_word(w));
        }
        let word = cell.word().load(Ordering::SeqCst);
        // The load and the line marking are not one atomic step; a writer
        // that committed in between doomed us — re-check before returning.
        if !skip_doom && self.g.is_doomed(self.slot) {
            return Err(AbortCause::Conflict);
        }
        trace::emit(TraceKind::Read, TxMode::Htm, None, li as u64);
        history::read(addr, word);
        Ok(T::from_word(word))
    }

    /// Transactionally write a cell (buffered until commit).
    pub fn write<T: TxVal>(&mut self, cell: &TCell<T>, v: T) -> Result<(), AbortCause> {
        self.access_checks(false)?;
        let addr = cell.addr();
        let li = self.g.table.index_of(addr) as u32;
        if !self.write_lines.contains(&li) {
            self.mark_write_line(li)?;
        }
        let word = v.to_word();
        if let Some(entry) = self.redo.iter_mut().find(|&&mut (_, a, _)| a == addr) {
            entry.2 = word;
        } else {
            self.redo
                .push((cell.word() as *const AtomicU64, addr, word));
        }
        if self.g.is_doomed(self.slot) {
            return Err(AbortCause::Conflict);
        }
        trace::emit(TraceKind::Write, TxMode::Htm, None, li as u64);
        history::write(addr, word);
        Ok(())
    }

    /// Read-modify-write convenience.
    pub fn update<T: TxVal>(
        &mut self,
        cell: &TCell<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<T, AbortCause> {
        let old = self.read(cell)?;
        let new = f(old);
        self.write(cell, new)?;
        Ok(new)
    }

    /// An irrevocable operation was attempted inside a hardware transaction
    /// (I/O, syscall, condition-variable machinery the hardware cannot
    /// defer). Always aborts with [`AbortCause::Unsafe`]; the TLE layer then
    /// serializes.
    pub fn unsafe_op(&mut self) -> Result<(), AbortCause> {
        Err(AbortCause::Unsafe)
    }

    fn access_checks(&mut self, skip_doom: bool) -> Result<(), AbortCause> {
        if !skip_doom && self.g.is_doomed(self.slot) {
            return Err(AbortCause::Conflict);
        }
        let idx = self.accesses;
        self.accesses += 1;
        // Fault oracle: forced spurious/capacity/conflict aborts at chosen
        // access indices. One relaxed flag load when no plan is installed.
        if fault::enabled() {
            if let Some(cause) = Self::injected_abort(idx) {
                return Err(cause);
            }
        }
        let p = self.g.config.event_prob;
        if p > 0.0 && self.rng.chance(p) {
            trace::emit(
                TraceKind::Conflict,
                TxMode::Htm,
                Some(AbortCause::Event),
                self.slot as u64,
            );
            return Err(AbortCause::Event);
        }
        Ok(())
    }

    /// The slow half of the fault hook: ask the oracle about each HTM
    /// hazard class at this access index; the winner surfaces as the
    /// matching abort cause (exactly the causes the retry ladder already
    /// handles).
    #[cold]
    fn injected_abort(idx: u64) -> Option<AbortCause> {
        for hz in [Hazard::HtmEvent, Hazard::HtmCapacity, Hazard::HtmConflict] {
            if fault::fire_at(hz, idx) {
                let cause = hz.cause().expect("HTM hazards map to abort causes");
                trace::emit(
                    TraceKind::FaultInject,
                    TxMode::Htm,
                    Some(cause),
                    hz.index() as u64,
                );
                return Some(cause);
            }
        }
        None
    }

    /// Put this transaction in the line's reader set, dooming a conflicting
    /// writer (requester-wins) or self-aborting if the writer already won
    /// its commit point.
    fn mark_read_line(&mut self, li: u32) -> Result<(), AbortCause> {
        let line = self.g.table.line(li as usize);
        line.trace_contention(li as usize, self.slot);
        line.add_reader(self.slot);
        loop {
            let w = line.writer();
            if w == 0 || w as usize == self.slot + 1 {
                break;
            }
            match self.g.doom(w as usize - 1) {
                DoomOutcome::Committing => {
                    line.remove_reader(self.slot);
                    return Err(AbortCause::Conflict);
                }
                DoomOutcome::Doomed | DoomOutcome::Gone => {
                    // Evict the dead writer so later transactions do not
                    // keep dooming a stale slot; tolerate CAS failure (a
                    // new writer appeared — loop and contend with it).
                    let _ = line.cas_writer(w, 0);
                }
            }
        }
        self.read_lines.push(li);
        if self.read_lines.len() > self.g.config.read_cap_lines {
            trace::emit(
                TraceKind::Conflict,
                TxMode::Htm,
                Some(AbortCause::Capacity),
                li as u64,
            );
            return Err(AbortCause::Capacity);
        }
        Ok(())
    }

    /// Become the line's writer, dooming all other readers and any writer.
    fn mark_write_line(&mut self, li: u32) -> Result<(), AbortCause> {
        let line = self.g.table.line(li as usize);
        line.trace_contention(li as usize, self.slot);
        // Acquire the writer word.
        loop {
            let w = line.writer();
            if w as usize == self.slot + 1 {
                break;
            }
            if w == 0 {
                if line.cas_writer(0, self.slot as u64 + 1) {
                    break;
                }
                continue;
            }
            match self.g.doom(w as usize - 1) {
                DoomOutcome::Committing => return Err(AbortCause::Conflict),
                DoomOutcome::Doomed | DoomOutcome::Gone => {
                    let _ = line.cas_writer(w, 0);
                }
            }
        }
        // Doom every other reader (write invalidation).
        let readers = line.readers() & !(1u64 << self.slot);
        let mut bits = readers;
        while bits != 0 {
            let victim = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if self.g.doom(victim) == DoomOutcome::Committing {
                return Err(AbortCause::Conflict);
            }
        }
        self.write_lines.push(li);
        if self.write_lines.len() > self.g.config.write_cap_lines {
            trace::emit(
                TraceKind::Conflict,
                TxMode::Htm,
                Some(AbortCause::Capacity),
                li as u64,
            );
            return Err(AbortCause::Capacity);
        }
        Ok(())
    }

    /// Attempt to commit: win the commit point, publish the redo log,
    /// release the footprint.
    pub fn commit(mut self) -> Result<(), AbortCause> {
        debug_assert!(!self.finished);
        sched::yield_point(YieldPoint::TxState);
        if self.g.tx_state[self.slot]
            .compare_exchange(
                state::ACTIVE,
                state::COMMITTED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            // Doomed before the commit point.
            self.cleanup();
            self.finished = true;
            self.g.stats.count_abort(self.slot, AbortCause::Conflict);
            trace::emit(
                TraceKind::Abort,
                TxMode::Htm,
                Some(AbortCause::Conflict),
                self.slot as u64,
            );
            history::abort();
            return Err(AbortCause::Conflict);
        }
        // The CAS above is the linearization point: every line we touched is
        // still ours, so readers of our yet-unpublished values are doomed and
        // will abort before recording anything. Record the commit *here*,
        // before publishing, so log order matches visibility order.
        history::commit();
        for &(cell, _, val) in &self.redo {
            // SAFETY: cells outlive the transaction (documented invariant).
            unsafe { (*cell).store(val, Ordering::SeqCst) };
            // Half-published redo log: only doomed transactions can see it.
            sched::yield_point(YieldPoint::MemStore);
        }
        let published = self.redo.len() as u64;
        self.cleanup();
        self.finished = true;
        self.g.stats.tx.commits.inc(self.slot);
        trace::emit(TraceKind::Commit, TxMode::Htm, None, published);
        Ok(())
    }

    /// Abort this attempt, discarding buffered writes.
    pub fn abort(mut self, cause: AbortCause) {
        self.cleanup();
        self.finished = true;
        self.g.stats.count_abort(self.slot, cause);
        trace::emit(TraceKind::Abort, TxMode::Htm, Some(cause), self.slot as u64);
        history::abort();
    }

    fn cleanup(&mut self) {
        for &li in &self.read_lines {
            self.g.table.line(li as usize).remove_reader(self.slot);
        }
        for &li in &self.write_lines {
            let line = self.g.table.line(li as usize);
            let _ = line.cas_writer(self.slot as u64 + 1, 0);
        }
        self.g.tx_state[self.slot].store(state::IDLE, Ordering::SeqCst);
    }
}

impl Drop for HtmTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.cleanup();
            self.g.stats.count_abort(self.slot, AbortCause::Explicit);
            trace::emit(
                TraceKind::Abort,
                TxMode::Htm,
                Some(AbortCause::Explicit),
                self.slot as u64,
            );
            history::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HtmConfig;

    fn quiet() -> HtmGlobal {
        HtmGlobal::new(HtmConfig {
            event_prob: 0.0,
            ..HtmConfig::default()
        })
    }

    #[test]
    fn drop_cleans_footprint() {
        let g = quiet();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        let li = g.table.index_of(a.addr());
        {
            let mut tx = g.begin(slot);
            tx.read(&a).unwrap();
            tx.write(&a, 1u64).unwrap();
        } // dropped, no commit
        assert_eq!(g.table.line(li).readers(), 0);
        assert_eq!(g.table.line(li).writer(), 0);
        assert_eq!(a.load_direct(), 0);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn write_coalesces_in_redo_log() {
        let g = quiet();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        let mut tx = g.begin(slot);
        for v in 1..100u64 {
            tx.write(&a, v).unwrap();
        }
        assert_eq!(tx.read(&a).unwrap(), 99);
        tx.commit().unwrap();
        assert_eq!(a.load_direct(), 99);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn two_writers_to_same_line_cannot_both_commit() {
        let g = quiet();
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);

        let mut t1 = g.begin(s1);
        t1.write(&a, 1u64).unwrap();

        let mut t2 = g.begin(s2);
        // t2's write dooms t1 (requester-wins) or self-aborts.
        let w2 = t2.write(&a, 2u64);

        let c1 = t1.commit();
        let c2 = match w2 {
            Ok(()) => t2.commit(),
            Err(e) => {
                t2.abort(e);
                Err(e)
            }
        };
        assert!(
            c1.is_ok() != c2.is_ok() || (c1.is_err() && c2.is_err()),
            "both writers committed: lost update"
        );
        let v = a.load_direct();
        assert!(v == 0 || v == 1 || v == 2);
        if c1.is_ok() {
            assert_eq!(v, 1);
        }
        if c2.is_ok() {
            assert_eq!(v, 2);
        }
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn read_capacity_enforced() {
        let g = HtmGlobal::new(HtmConfig {
            event_prob: 0.0,
            read_cap_lines: 8,
            ..HtmConfig::default()
        });
        let slot = g.slots.register_raw().unwrap();
        let cells: Vec<Box<TCell<u64>>> = (0..64).map(|i| Box::new(TCell::new(i))).collect();
        let mut tx = g.begin(slot);
        let mut err = None;
        for c in &cells {
            if let Err(e) = tx.read(c) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(AbortCause::Capacity));
        tx.abort(AbortCause::Capacity);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn update_is_atomic_under_contention() {
        let g = std::sync::Arc::new(quiet());
        let cell = std::sync::Arc::new(TCell::new(0i64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let g = std::sync::Arc::clone(&g);
                let cell = std::sync::Arc::clone(&cell);
                std::thread::spawn(move || {
                    let slot = g.slots.register_raw().unwrap();
                    let delta: i64 = if t % 2 == 0 { 1 } else { -1 };
                    for _ in 0..3000 {
                        loop {
                            let mut tx = g.begin(slot);
                            match tx.update(&*cell, |v| v + delta) {
                                Ok(_) => {
                                    if tx.commit().is_ok() {
                                        break;
                                    }
                                }
                                Err(e) => tx.abort(e),
                            }
                        }
                    }
                    g.slots.unregister_raw(slot);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load_direct(), 0, "equal +1/-1 ops must cancel exactly");
    }
}
