//! The TLE execution engine: attempt → retry → backoff → serialize.
//!
//! One function per algorithm family:
//! - [`run_locked`]: baseline pthread semantics (no elision);
//! - [`run_stm`]: software lock elision with bounded retries, randomized
//!   exponential backoff and an abort-storm escape into serial mode;
//! - [`run_htm`]: simulated hardware lock elision — the paper's
//!   configuration retries twice, then takes the GCC-style global serial
//!   fallback;
//! - [`run_serial`]: the serial-irrevocable path shared by unsafe
//!   operations and both fallbacks.
//!
//! ## Per-lock modes and the epoch protocol
//!
//! Dispatch is on the lock's **resolved** mode (its per-lock override, else
//! the global mode), and the adaptive controller may flip that mode while
//! worker threads are anywhere in these loops. The flip itself runs under
//! total exclusion (serial gate + raw mutex + adaptive lock word — see
//! `TmSystem::flip_lock`), so correctness reduces to one invariant: *a
//! section must not complete under a stale mode after the flip finished*.
//! Each runner therefore captures the lock's flip **epoch** at dispatch and
//! re-checks it immediately after taking its exclusion foothold — the
//! concurrent gate token (STM/HTM), the raw mutex (baseline), the serial
//! token (fallback), or the lock-word subscription/acquisition (adaptive
//! elision). While the foothold is held a flip cannot complete, so a
//! matching epoch stays matched; a mismatch unwinds the foothold and
//! returns [`Outcome::Redispatch`], and the outer loop in [`run`]
//! re-resolves the mode.

use crate::condvar::{TxCondvar, Waiter};
use crate::ctx::{CtxKind, PendingWait, TxCtx, TxError};
use crate::domain::AdmissionStep;
use crate::elide::ElidableMutex;
use crate::system::{AlgoMode, ThreadHandle, TxHints};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use tle_base::fault::{self, Hazard};
use tle_base::history;
use tle_base::mutant::{self, Mutant};
use tle_base::rng::splitmix64;
use tle_base::sched::{self, YieldPoint};
use tle_base::trace::{self, TraceKind, TxMode};
use tle_base::AbortCause;

/// What a per-mode runner produced: a finished section, a request to
/// re-resolve the lock's mode because a flip landed mid-attempt, or an
/// abandoned section (deadline expiry / shed; fallible entry points only).
enum Outcome<R> {
    Done(R),
    Redispatch,
    Expired(TxError),
}

/// The section's time budget and whether the caller can observe errors.
///
/// `deadline` is the absolute expiry computed once at section entry from
/// [`TxHints::with_deadline`]. `fallible` is true under
/// [`try_run`]: expiry (and admission shedding) then surface as `Err`;
/// under the infallible [`run`] they instead force the serial path, which
/// bounds retry time without inventing an error the caller cannot see.
#[derive(Clone, Copy)]
pub(crate) struct Budget {
    pub(crate) deadline: Option<Instant>,
    pub(crate) fallible: bool,
}

impl Budget {
    #[inline]
    pub(crate) fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

pub(crate) fn run<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    hints: TxHints,
    mut f: F,
) -> R
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    match run_inner(th, lock, hints, &mut f, false) {
        Ok(r) => r,
        // Infallible entry: deadline expiry serializes instead of erroring
        // and shed degrades to serialize, so neither error escapes.
        Err(e) => unreachable!("infallible run produced {e:?}"),
    }
}

pub(crate) fn try_run<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    hints: TxHints,
    mut f: F,
) -> Result<R, TxError>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    run_inner(th, lock, hints, &mut f, true)
}

fn run_inner<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    hints: TxHints,
    f: &mut F,
    fallible: bool,
) -> Result<R, TxError>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let _nest = NestGuard::enter(lock);
    // One critical section = one logical operation on the fault oracle's
    // lane clock (no-op load when injection is off).
    fault::tick();
    // Panic safety: unwinding out of `f` already rolls back speculative
    // state (the context's transaction drops → undo log replayed, orecs
    // released; gate tokens drop → serial/concurrent permits returned).
    // What unwinding cannot restore is *application* invariants spanning
    // critical sections, so flag the lock for survivors to inspect.
    let _poison = PoisonOnPanic(lock);
    // The queue-depth gauge brackets the whole dispatch (shed decisions
    // included — a shed request spent time in the queue too).
    lock.domain().enter_queue();
    let _dequeue = QueueExitOnDrop(lock);
    let budget = Budget {
        deadline: hints.deadline.map(|d| Instant::now() + d),
        fallible,
    };
    loop {
        let epoch = lock.domain().epoch();
        let mode = lock.resolved_mode(th.sys.mode());
        // Admission ladder (only meaningful for transactional modes: the
        // lock-based modes already serialize through a real mutex, and the
        // serial path below would not exclude them). Serialize routes the
        // section straight to the serial gate — speculation is known-wasted
        // work; Shed refuses fallible sections outright and serializes
        // infallible ones (which cannot observe `Overloaded`).
        if mode.is_transactional() && !mode.is_glibc_family() && th.sys.admission_enabled() {
            let step = lock.domain().admission_step();
            if step != AdmissionStep::Elide {
                if fallible && step == AdmissionStep::Shed {
                    let depth = lock.domain().queue_depth();
                    th.sys.stats.sheds.inc(th.stm_slot);
                    trace::emit(TraceKind::Shed, TxMode::Serial, None, depth);
                    return Err(TxError::Overloaded);
                }
                trace::emit(TraceKind::Fallback, TxMode::Serial, None, 0);
                match run_serial(th, lock, epoch, budget.deadline, f) {
                    SerialOutcome::Done(r) => return Ok(r),
                    SerialOutcome::Retry | SerialOutcome::Redispatch => continue,
                }
            }
        }
        // Deadline gate at dispatch: a fallible section whose budget is
        // already spent fails fast before any speculation.
        if budget.fallible && budget.expired() {
            th.sys.stats.deadline_exceeded.inc(th.stm_slot);
            trace::emit(TraceKind::DeadlineExceeded, TxMode::Serial, None, 0);
            return Err(TxError::DeadlineExceeded);
        }
        let outcome = match mode {
            AlgoMode::Baseline => run_locked(th, lock, epoch, budget.deadline, f),
            AlgoMode::StmSpin => run_stm(th, lock, epoch, hints, budget, f, true),
            AlgoMode::StmCondvar | AlgoMode::StmCondvarNoQuiesce => {
                run_stm(th, lock, epoch, hints, budget, f, false)
            }
            AlgoMode::HtmCondvar => run_htm(th, lock, epoch, hints, budget, f),
            AlgoMode::AdaptiveHtm | AlgoMode::AdaptiveHtmLazy => {
                run_adaptive_htm(th, lock, epoch, hints, budget, f, mode)
            }
            #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
            AlgoMode::AdaptiveHtmLazyUnsafe => {
                run_adaptive_htm(th, lock, epoch, hints, budget, f, mode)
            }
        };
        match outcome {
            Outcome::Done(r) => return Ok(r),
            Outcome::Redispatch => continue,
            Outcome::Expired(e) => return Err(e),
        }
    }
}

/// Commit-time lazy subscription: the ordered window check run immediately
/// before the commit point (the doom-on-acquire sweep closes the race
/// between this check and the commit CAS). Returns the abort cause when the
/// speculation window overlapped a lock-path hold.
///
/// The naive (unsafe) variant does what the literature's strawman does: one
/// racy read of the lock word and nothing else — no whole-window proof, so
/// an acquire-and-release inside the window goes undetected.
pub(crate) fn lazy_precommit_gate(
    lock: &ElidableMutex,
    mode: AlgoMode,
    g0: u64,
    lazy: bool,
) -> Result<(), AbortCause> {
    if !lazy {
        return Ok(());
    }
    if mode.is_lazy_unsafe() {
        if lock.held_cell().load_direct() {
            return Err(AbortCause::Conflict);
        }
        return Ok(());
    }
    // Safe variant: an unchanged even seqlock proves the lock was free for
    // the whole window (begin refused odd captures; any acquire since then
    // bumped the counter).
    if lock.elision_seq() != g0 {
        return Err(AbortCause::Conflict);
    }
    Ok(())
}

/// glibc-style adaptive lock elision (extension; see
/// [`AlgoMode::AdaptiveHtm`]). Differences from the TMTS-style `run_htm`:
/// the transaction **subscribes to the lock word** as its first read, the
/// fallback is **the lock itself** (global concurrency is unaffected), and
/// repeated failures set a per-lock skip counter so hopeless locks stop
/// being elided for a while.
///
/// The lazy modes ([`AlgoMode::AdaptiveHtmLazy`],
/// [`AlgoMode::AdaptiveHtmLazyUnsafe`]) keep the lock word out of the read
/// set entirely: subscription moves to [`lazy_precommit`], begin captures
/// (and, in the safe variant, refuses an odd) acquisition seqlock, and the
/// lock path dooms all active transactions instead of invalidating one
/// line. See DESIGN.md §17 for the hazard catalog this ordering defeats.
fn run_adaptive_htm<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    hints: TxHints,
    budget: Budget,
    f: &mut F,
    mode: AlgoMode,
) -> Outcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    /// glibc's skip_lock_internal_abort analogue.
    const SKIP_AFTER_FAILURE: u32 = 3;
    let sys = &*th.sys;
    let htm_retries = hints
        .htm_retries
        .unwrap_or_else(|| lock.domain().htm_retries(sys.policy().htm_retries));
    let mut attempts: u32 = 0;
    loop {
        // This loop holds no exclusion between iterations, so a flip can
        // complete anywhere in it; cheap check before each attempt.
        if lock.domain().epoch() != epoch {
            return Outcome::Redispatch;
        }
        // Deadline gate before every retry tier: a spent budget either
        // surfaces (fallible) or stops speculating and takes the lock path
        // (glibc elision's analogue of the serial fallback).
        let deadline_up = budget.expired();
        if deadline_up && budget.fallible {
            sys.stats.deadline_exceeded.inc(th.stm_slot);
            trace::emit(
                TraceKind::DeadlineExceeded,
                TxMode::Htm,
                None,
                attempts as u64,
            );
            return Outcome::Expired(TxError::DeadlineExceeded);
        }
        if lock.consume_skip() || attempts >= htm_retries || deadline_up {
            if attempts >= htm_retries {
                lock.set_skip(SKIP_AFTER_FAILURE);
                sys.stats.serial_fallbacks.inc(th.stm_slot);
            }
            trace::emit(TraceKind::Fallback, TxMode::Locked, None, attempts as u64);
            match run_adaptive_lock_path(th, lock, epoch, budget.deadline, f, mode) {
                SerialOutcome::Done(r) => return Outcome::Done(r),
                SerialOutcome::Retry => {
                    attempts = 0;
                    continue;
                }
                SerialOutcome::Redispatch => return Outcome::Redispatch,
            }
        }
        let lazy = mode.is_lazy();
        if !lazy {
            // Don't even start while the lock is held (glibc spins outside
            // the transaction for the same reason: an immediate
            // subscription abort is wasted work). The lazy modes skip this
            // — not touching the lock word before commit is their point.
            let mut spins = 0u32;
            while lock.held_cell().load_direct() {
                spins += 1;
                sched::spin_hint(YieldPoint::LockWord);
                if spins < 32 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        // Seeded bug (reorder hazard): the lazy window capture is hoisted
        // above transaction begin, opening a gap where an acquisition's
        // doom sweep passes this still-idle slot.
        let hoisted_g0 = if lazy && mutant::armed(Mutant::LazySubscriptionReorder) {
            let g = lock.elision_seq();
            sched::yield_point(YieldPoint::LockWord);
            Some(g)
        } else {
            None
        };
        let mut tx = sys.htm.begin(th.htm_slot);
        // Lazy window capture: ordered after begin so the doom-on-acquire
        // sweep cannot miss this now-active slot (any acquire that bumped
        // the seqlock before this load either shows up odd here, or swept
        // and doomed us already).
        let g0 = if lazy {
            hoisted_g0.unwrap_or_else(|| lock.elision_seq())
        } else {
            0
        };
        if !lazy {
            // Subscribe: a real acquisition of the lock invalidates this
            // line and dooms us.
            match tx.read(lock.held_cell()) {
                Ok(false) => {}
                Ok(true) => {
                    tx.abort(AbortCause::Conflict);
                    attempts += 1;
                    lock.domain().window.record_abort(AbortCause::Conflict);
                    trace::emit(
                        TraceKind::Retry,
                        TxMode::Htm,
                        Some(AbortCause::Conflict),
                        attempts as u64,
                    );
                    continue;
                }
                Err(e) => {
                    tx.abort(e);
                    attempts += 1;
                    lock.domain().window.record_abort(e);
                    trace::emit(TraceKind::Retry, TxMode::Htm, Some(e), attempts as u64);
                    backoff(th.htm_slot, attempts, 0, sys.policy().backoff_ceiling);
                    continue;
                }
            }
        } else if !mode.is_lazy_unsafe()
            && g0 & 1 == 1
            && !mutant::armed(Mutant::LazyCommitWithLockHeld)
        {
            // Safe lazy begin-refusal: an odd seqlock means the lock is
            // held right now, and speculating would run as a zombie over
            // the holder's direct writes (the mutant deletes exactly this
            // guard). The naive variant has no such check — that is its
            // documented hazard.
            tx.abort(AbortCause::Conflict);
            attempts += 1;
            lock.domain().window.record_abort(AbortCause::Conflict);
            trace::emit(
                TraceKind::Retry,
                TxMode::Htm,
                Some(AbortCause::Conflict),
                attempts as u64,
            );
            backoff(th.htm_slot, attempts, 0, sys.policy().backoff_ceiling);
            continue;
        }
        // The exclusion foothold (eager: the lock-word subscription; lazy:
        // begin refusal + the acquire path's doom-all sweep): a flip
        // completed before it shows up as a bumped epoch (abort,
        // re-resolve); a flip starting after it must acquire the lock
        // word, which dooms this transaction — either way no commit under
        // a stale mode.
        if lock.domain().epoch() != epoch {
            tx.abort(AbortCause::Explicit);
            return Outcome::Redispatch;
        }
        let mut ctx = TxCtx::new(CtxKind::Htm { tx });
        ctx.deadline = budget.deadline;
        let res = f(&mut ctx);
        let TxCtx {
            kind,
            defers,
            pending_wait,
            deadline: _,
            async_waits: _,
        } = ctx;
        let tx = match kind {
            CtxKind::Htm { tx } => tx,
            _ => unreachable!("context kind changed mid-transaction"),
        };
        match res {
            Ok(r) => {
                debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
                // Lazy subscription happens here, ordered immediately
                // before the commit point; the acquire path's doom sweep
                // closes the window between check and CAS.
                let commit = match lazy_precommit_gate(lock, mode, g0, lazy) {
                    Ok(()) => tx.commit(),
                    Err(cause) => {
                        tx.abort(cause);
                        Err(cause)
                    }
                };
                match commit {
                    Ok(()) => {
                        lock.domain().window.record_commit(0);
                        for d in defers {
                            d();
                        }
                        return Outcome::Done(r);
                    }
                    Err(cause) => {
                        attempts += 1;
                        lock.domain().window.record_abort(cause);
                        trace::emit(TraceKind::Retry, TxMode::Htm, Some(cause), attempts as u64);
                        backoff(th.htm_slot, attempts, 0, sys.policy().backoff_ceiling);
                    }
                }
            }
            Err(TxError::Wait) => {
                let pw = pending_wait.expect("Wait reported without a wait request");
                let commit = match lazy_precommit_gate(lock, mode, g0, lazy) {
                    Ok(()) => tx.commit(),
                    Err(cause) => {
                        tx.abort(cause);
                        Err(cause)
                    }
                };
                match commit {
                    Ok(()) => {
                        lock.domain().window.record_commit(0);
                        for d in defers {
                            d();
                        }
                        attempts = 0;
                        block_on(th, lock, pw);
                    }
                    Err(cause) => {
                        reclaim_enqueue_ref(&pw);
                        attempts += 1;
                        lock.domain().window.record_abort(cause);
                        trace::emit(TraceKind::Retry, TxMode::Htm, Some(cause), attempts as u64);
                        backoff(th.htm_slot, attempts, 0, sys.policy().backoff_ceiling);
                    }
                }
            }
            Err(TxError::Abort(AbortCause::Unsafe)) => {
                // Irrevocable work runs under the real lock (glibc TLE has
                // no serial mode to fall back to).
                tx.abort(AbortCause::Unsafe);
                sys.stats.serial_fallbacks.inc(th.stm_slot);
                trace::emit(
                    TraceKind::Fallback,
                    TxMode::Locked,
                    Some(AbortCause::Unsafe),
                    attempts as u64,
                );
                match run_adaptive_lock_path(th, lock, epoch, budget.deadline, f, mode) {
                    SerialOutcome::Done(r) => return Outcome::Done(r),
                    SerialOutcome::Retry => attempts = 0,
                    SerialOutcome::Redispatch => return Outcome::Redispatch,
                }
            }
            Err(TxError::Abort(c)) => {
                tx.abort(c);
                if let Some(pw) = pending_wait {
                    reclaim_enqueue_ref(&pw);
                }
                attempts += 1;
                lock.domain().window.record_abort(c);
                trace::emit(TraceKind::Retry, TxMode::Htm, Some(c), attempts as u64);
                backoff(th.htm_slot, attempts, 0, sys.policy().backoff_ceiling);
            }
            Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
                // The closure manufactured a runner-level error; roll the
                // attempt back and propagate (fallible) or refuse (the
                // infallible API has no error channel).
                tx.abort(AbortCause::Explicit);
                if let Some(pw) = pending_wait {
                    reclaim_enqueue_ref(&pw);
                }
                return propagate_runner_error(budget, e);
            }
        }
    }
}

/// Propagate a closure-raised `DeadlineExceeded`/`Overloaded` out of a
/// concurrent attempt: fallible entries surface it, the infallible API has
/// no error channel and must refuse loudly.
fn propagate_runner_error<R>(budget: Budget, e: TxError) -> Outcome<R> {
    if budget.fallible {
        Outcome::Expired(e)
    } else {
        panic!(
            "{e:?} returned from a closure run via critical(); \
             use try_critical to observe deadline/shed errors"
        )
    }
}

/// Acquire the subscription word as a real lock (CAS + invalidate all
/// subscribed transactions), run the closure with direct access, release.
fn run_adaptive_lock_path<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    deadline: Option<Instant>,
    f: &mut F,
    mode: AlgoMode,
) -> SerialOutcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    adaptive_acquire(th, lock, mode);
    // Holding the lock word blocks a flip's word acquisition, so the epoch
    // is stable from here until release.
    if lock.domain().epoch() != epoch {
        adaptive_release(lock, mode);
        return SerialOutcome::Redispatch;
    }

    history::begin(TxMode::Locked);
    let mut ctx = TxCtx::new(CtxKind::Serial);
    ctx.deadline = deadline;
    let res = f(&mut ctx);
    let TxCtx {
        kind: _,
        defers,
        pending_wait,
        deadline: _,
        async_waits: _,
    } = ctx;
    // Commit event while the lock word is still held — the hold window is
    // the section's serialization interval (aborts panic below, unrecorded).
    if matches!(res, Ok(_) | Err(TxError::Wait)) {
        history::commit();
    }
    adaptive_release(lock, mode);
    match res {
        Ok(r) => {
            debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
            lock.domain().window.record_serial();
            for d in defers {
                d();
            }
            SerialOutcome::Done(r)
        }
        Err(TxError::Wait) => {
            lock.domain().window.record_serial();
            for d in defers {
                d();
            }
            let pw = pending_wait.expect("Wait reported without a wait request");
            block_on(th, lock, pw);
            SerialOutcome::Retry
        }
        Err(TxError::Abort(c)) => {
            panic!(
                "operation aborted ({c}) while holding the elided lock: effects cannot be undone"
            )
        }
        Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
            panic!("{e:?} raised while holding the elided lock: effects cannot be undone")
        }
    }
}

thread_local! {
    /// Whether a critical-section body is executing on this OS thread.
    /// Lives in a thread-local (not on [`ThreadHandle`], which is `Sync`
    /// and may be shared across executor workers) because the hazard it
    /// guards is *closure re-entry on one thread*.
    static IN_CRITICAL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Nested-section detection. Nested critical sections are the paper's §V
/// problem in miniature: a transaction cannot subsume inner critical
/// sections that communicate with other threads (and naive flattening would
/// release the outer transaction's orecs at the inner commit). Fail loudly
/// instead of corrupting; restructure with a ready flag (Listing 4) or
/// merge the sections (Yoo-style coarsening).
///
/// The sync entry holds the guard across the whole dispatch; the async
/// runner holds it only around each synchronous attempt (between attempts
/// the task is suspended and other tasks legitimately run their own
/// sections on this worker). Clears the flag even if the section panics.
pub(crate) struct NestGuard {
    _priv: (),
}

impl NestGuard {
    pub(crate) fn enter(lock: &ElidableMutex) -> NestGuard {
        IN_CRITICAL.with(|flag| {
            assert!(
                !flag.replace(true),
                "nested critical sections are not supported under TLE \
                 (lock {:?}); restructure per paper §V (ready flag) or merge the sections",
                lock.name()
            );
        });
        NestGuard { _priv: () }
    }
}

impl Drop for NestGuard {
    fn drop(&mut self) {
        IN_CRITICAL.with(|flag| flag.set(false));
    }
}

/// Decrements the lock's queue-depth gauge on every exit path (commit,
/// shed, deadline expiry, panic).
pub(crate) struct QueueExitOnDrop<'a>(pub(crate) &'a ElidableMutex);

impl Drop for QueueExitOnDrop<'_> {
    fn drop(&mut self) {
        self.0.domain().exit_queue();
    }
}

/// Poisons the guarding lock if the critical section unwinds (see
/// [`ElidableMutex::is_poisoned`]). A no-op on orderly exit.
pub(crate) struct PoisonOnPanic<'a>(pub(crate) &'a ElidableMutex);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Starvation-escalation ladder (robustness hardening). `note_abort`
/// accumulates consecutive concurrent-attempt failures across critical
/// sections; `escalation_due` answers whether this section should skip
/// straight to the serial gate, consuming the accumulated count so the
/// thread returns to concurrent attempts afterwards (the ladder grants a
/// progress slot, it does not serialize the thread permanently).
pub(crate) fn note_abort(th: &ThreadHandle) {
    // Saturating, not wrapping: an unbounded abort streak must keep the
    // ladder armed rather than roll over to a clean slate.
    let _ = th
        .consec_aborts
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            Some(n.saturating_add(1))
        });
}

pub(crate) fn escalation_due(th: &ThreadHandle) -> bool {
    let n = th.consec_aborts.load(Ordering::Relaxed);
    if n < th.sys.policy().escalation_bound {
        return false;
    }
    th.consec_aborts.store(0, Ordering::Relaxed);
    th.sys.stats.escalations.inc(th.stm_slot);
    trace::emit(TraceKind::Escalate, TxMode::Serial, None, n as u64);
    true
}

/// Fault oracle: should this section storm the serial gate instead of
/// attempting to run concurrently?
pub(crate) fn serial_storm_due() -> bool {
    if fault::enabled() && fault::fire(Hazard::SerialStorm) {
        trace::emit(
            TraceKind::FaultInject,
            TxMode::Serial,
            None,
            Hazard::SerialStorm.index() as u64,
        );
        return true;
    }
    false
}

fn run_locked<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    deadline: Option<Instant>,
    f: &mut F,
) -> Outcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let _ = th;
    sched::yield_point(YieldPoint::LockWord);
    // Bracket the raw-mutex acquisition for the cooperative scheduler: the
    // thread may park in the OS here, and the holder needs to run.
    sched::block_enter();
    let mut guard = Some(lock.raw().lock());
    sched::block_exit();
    // The raw mutex is the foothold: a flip acquires it too, so a matching
    // epoch here cannot change until we release.
    if lock.domain().epoch() != epoch {
        return Outcome::Redispatch;
    }
    loop {
        history::begin(TxMode::Locked);
        let mut ctx = TxCtx::new(CtxKind::Locked {
            guard: guard.take(),
        });
        ctx.deadline = deadline;
        let res = f(&mut ctx);
        let TxCtx {
            kind,
            defers,
            pending_wait,
            deadline: _,
            async_waits: _,
        } = ctx;
        let mut g = match kind {
            CtxKind::Locked { guard: Some(g) } => g,
            _ => unreachable!("baseline context lost its guard"),
        };
        match res {
            Ok(r) => {
                debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
                lock.domain().window.record_serial();
                // Commit event while the mutex is still held: the section's
                // serialization point is the whole hold window.
                history::commit();
                drop(g);
                for d in defers {
                    d();
                }
                return Outcome::Done(r);
            }
            Err(TxError::Wait) => {
                // The "commit point" of a baseline section that waits is
                // the wait itself; run deferred actions now (still holding
                // the lock, like the original pthread program would).
                history::commit();
                for d in defers {
                    d();
                }
                let pw = pending_wait.expect("Wait reported without a wait request");
                sched::block_enter();
                pw.cv.native_wait(&mut g, pw.timeout);
                sched::block_exit();
                // The wait released the mutex while parked; a flip may have
                // completed in between.
                if lock.domain().epoch() != epoch {
                    drop(g);
                    return Outcome::Redispatch;
                }
                guard = Some(g);
            }
            Err(TxError::Abort(c)) => {
                panic!("cannot abort ({c}) while holding the baseline lock")
            }
            Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
                panic!("{e:?} raised while holding the baseline lock: effects cannot be undone")
            }
        }
    }
}

fn run_stm<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    hints: TxHints,
    budget: Budget,
    f: &mut F,
    spin: bool,
) -> Outcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    let stm_retries = hints
        .stm_retries
        .unwrap_or_else(|| lock.domain().stm_retries(sys.policy().stm_retries));
    let mut attempts: u32 = 0;
    loop {
        // Deadline gate before every retry tier and before serial-gate
        // entry: a fallible section surfaces the expiry; an infallible one
        // stops retrying and serializes (bounded retry time either way).
        let deadline_up = budget.expired();
        if deadline_up && budget.fallible {
            sys.stats.deadline_exceeded.inc(th.stm_slot);
            trace::emit(
                TraceKind::DeadlineExceeded,
                TxMode::Stm,
                None,
                attempts as u64,
            );
            return Outcome::Expired(TxError::DeadlineExceeded);
        }
        // Serialize when this section's retry budget is spent, when the
        // cross-section starvation ladder fires, or when the fault oracle
        // storms the gate (short-circuit order keeps the ladder and oracle
        // unconsulted once the budget alone decides).
        if attempts >= stm_retries || deadline_up || escalation_due(th) || serial_storm_due() {
            trace::emit(TraceKind::Fallback, TxMode::Serial, None, attempts as u64);
            match run_serial(th, lock, epoch, budget.deadline, f) {
                SerialOutcome::Done(r) => return Outcome::Done(r),
                SerialOutcome::Retry => {
                    attempts = 0;
                    continue;
                }
                SerialOutcome::Redispatch => return Outcome::Redispatch,
            }
        }
        let token = sys.gate.enter_concurrent();
        // The concurrent token is the foothold: a flip's serial entry
        // drains it, so a matching epoch holds until the token drops.
        if lock.domain().epoch() != epoch {
            drop(token);
            return Outcome::Redispatch;
        }
        let mut tx = sys.stm.begin_soft(th.stm_slot);
        // Per-lock TM_NoQuiesce opt-in (strictly an application contract;
        // see TmSystem::set_lock_no_quiesce).
        if lock.is_no_quiesce() {
            tx.no_quiesce();
        }
        tx.set_deadline(budget.deadline);
        let mut ctx = TxCtx::new(CtxKind::Stm {
            tx,
            spin_waits: spin,
        });
        ctx.deadline = budget.deadline;
        let res = f(&mut ctx);
        let TxCtx {
            kind,
            defers,
            pending_wait,
            deadline: _,
            async_waits: _,
        } = ctx;
        let tx = match kind {
            CtxKind::Stm { tx, .. } => tx,
            _ => unreachable!("context kind changed mid-transaction"),
        };
        match res {
            Ok(r) => {
                debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
                match tx.commit() {
                    Ok(info) => {
                        th.consec_aborts.store(0, Ordering::Relaxed);
                        lock.domain().window.record_commit(info.quiesce_wait_ns);
                        drop(token);
                        for d in defers {
                            d();
                        }
                        return Outcome::Done(r);
                    }
                    Err(cause) => {
                        drop(token);
                        attempts += 1;
                        note_abort(th);
                        lock.domain().window.record_abort(cause);
                        trace::emit(TraceKind::Retry, TxMode::Stm, Some(cause), attempts as u64);
                        backoff(
                            th.stm_slot,
                            attempts,
                            th.consec_aborts.load(Ordering::Relaxed),
                            sys.policy().backoff_ceiling,
                        );
                    }
                }
            }
            Err(TxError::Wait) => {
                let pw = pending_wait.expect("Wait reported without a wait request");
                match tx.commit() {
                    Ok(info) => {
                        th.consec_aborts.store(0, Ordering::Relaxed);
                        lock.domain().window.record_commit(info.quiesce_wait_ns);
                        drop(token);
                        for d in defers {
                            d();
                        }
                        attempts = 0;
                        block_on(th, lock, pw);
                    }
                    Err(cause) => {
                        reclaim_enqueue_ref(&pw);
                        drop(token);
                        attempts += 1;
                        note_abort(th);
                        lock.domain().window.record_abort(cause);
                        trace::emit(TraceKind::Retry, TxMode::Stm, Some(cause), attempts as u64);
                        backoff(
                            th.stm_slot,
                            attempts,
                            th.consec_aborts.load(Ordering::Relaxed),
                            sys.policy().backoff_ceiling,
                        );
                    }
                }
            }
            Err(TxError::Abort(AbortCause::Unsafe)) => {
                tx.abort(AbortCause::Unsafe);
                drop(token);
                trace::emit(
                    TraceKind::Fallback,
                    TxMode::Serial,
                    Some(AbortCause::Unsafe),
                    attempts as u64,
                );
                match run_serial(th, lock, epoch, budget.deadline, f) {
                    SerialOutcome::Done(r) => return Outcome::Done(r),
                    SerialOutcome::Retry => attempts = 0,
                    SerialOutcome::Redispatch => return Outcome::Redispatch,
                }
            }
            Err(TxError::Abort(c)) => {
                tx.abort(c);
                if let Some(pw) = pending_wait {
                    reclaim_enqueue_ref(&pw);
                }
                drop(token);
                attempts += 1;
                note_abort(th);
                lock.domain().window.record_abort(c);
                trace::emit(TraceKind::Retry, TxMode::Stm, Some(c), attempts as u64);
                backoff(
                    th.stm_slot,
                    attempts,
                    th.consec_aborts.load(Ordering::Relaxed),
                    sys.policy().backoff_ceiling,
                );
            }
            Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
                tx.abort(AbortCause::Explicit);
                if let Some(pw) = pending_wait {
                    reclaim_enqueue_ref(&pw);
                }
                drop(token);
                return propagate_runner_error(budget, e);
            }
        }
    }
}

fn run_htm<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    hints: TxHints,
    budget: Budget,
    f: &mut F,
) -> Outcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    let htm_retries = hints
        .htm_retries
        .unwrap_or_else(|| lock.domain().htm_retries(sys.policy().htm_retries));
    let mut attempts: u32 = 0;
    loop {
        // Deadline gate before every retry tier and before serial-gate
        // entry (see `run_stm`).
        let deadline_up = budget.expired();
        if deadline_up && budget.fallible {
            sys.stats.deadline_exceeded.inc(th.stm_slot);
            trace::emit(
                TraceKind::DeadlineExceeded,
                TxMode::Htm,
                None,
                attempts as u64,
            );
            return Outcome::Expired(TxError::DeadlineExceeded);
        }
        // Paper §VII: "fall back to a serial mode after hardware
        // transactions fail twice" — plus the starvation ladder and the
        // fault oracle's serial storms (see `run_stm`).
        if attempts >= htm_retries || deadline_up || escalation_due(th) || serial_storm_due() {
            trace::emit(TraceKind::Fallback, TxMode::Serial, None, attempts as u64);
            match run_serial(th, lock, epoch, budget.deadline, f) {
                SerialOutcome::Done(r) => return Outcome::Done(r),
                SerialOutcome::Retry => {
                    attempts = 0;
                    continue;
                }
                SerialOutcome::Redispatch => return Outcome::Redispatch,
            }
        }
        let token = sys.gate.enter_concurrent();
        if lock.domain().epoch() != epoch {
            drop(token);
            return Outcome::Redispatch;
        }
        let tx = sys.htm.begin(th.htm_slot);
        let mut ctx = TxCtx::new(CtxKind::Htm { tx });
        ctx.deadline = budget.deadline;
        let res = f(&mut ctx);
        let TxCtx {
            kind,
            defers,
            pending_wait,
            deadline: _,
            async_waits: _,
        } = ctx;
        let tx = match kind {
            CtxKind::Htm { tx } => tx,
            _ => unreachable!("context kind changed mid-transaction"),
        };
        match res {
            Ok(r) => {
                debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
                match tx.commit() {
                    Ok(()) => {
                        th.consec_aborts.store(0, Ordering::Relaxed);
                        lock.domain().window.record_commit(0);
                        drop(token);
                        for d in defers {
                            d();
                        }
                        return Outcome::Done(r);
                    }
                    Err(cause) => {
                        drop(token);
                        attempts += 1;
                        note_abort(th);
                        lock.domain().window.record_abort(cause);
                        trace::emit(TraceKind::Retry, TxMode::Htm, Some(cause), attempts as u64);
                        backoff(
                            th.htm_slot,
                            attempts,
                            th.consec_aborts.load(Ordering::Relaxed),
                            sys.policy().backoff_ceiling,
                        );
                    }
                }
            }
            Err(TxError::Wait) => {
                let pw = pending_wait.expect("Wait reported without a wait request");
                match tx.commit() {
                    Ok(()) => {
                        th.consec_aborts.store(0, Ordering::Relaxed);
                        lock.domain().window.record_commit(0);
                        drop(token);
                        for d in defers {
                            d();
                        }
                        attempts = 0;
                        block_on(th, lock, pw);
                    }
                    Err(cause) => {
                        reclaim_enqueue_ref(&pw);
                        drop(token);
                        attempts += 1;
                        note_abort(th);
                        lock.domain().window.record_abort(cause);
                        trace::emit(TraceKind::Retry, TxMode::Htm, Some(cause), attempts as u64);
                        backoff(
                            th.htm_slot,
                            attempts,
                            th.consec_aborts.load(Ordering::Relaxed),
                            sys.policy().backoff_ceiling,
                        );
                    }
                }
            }
            Err(TxError::Abort(AbortCause::Unsafe)) => {
                tx.abort(AbortCause::Unsafe);
                drop(token);
                trace::emit(
                    TraceKind::Fallback,
                    TxMode::Serial,
                    Some(AbortCause::Unsafe),
                    attempts as u64,
                );
                match run_serial(th, lock, epoch, budget.deadline, f) {
                    SerialOutcome::Done(r) => return Outcome::Done(r),
                    SerialOutcome::Retry => attempts = 0,
                    SerialOutcome::Redispatch => return Outcome::Redispatch,
                }
            }
            Err(TxError::Abort(c)) => {
                tx.abort(c);
                if let Some(pw) = pending_wait {
                    reclaim_enqueue_ref(&pw);
                }
                drop(token);
                attempts += 1;
                note_abort(th);
                lock.domain().window.record_abort(c);
                trace::emit(TraceKind::Retry, TxMode::Htm, Some(c), attempts as u64);
                backoff(
                    th.htm_slot,
                    attempts,
                    th.consec_aborts.load(Ordering::Relaxed),
                    sys.policy().backoff_ceiling,
                );
            }
            Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
                tx.abort(AbortCause::Explicit);
                if let Some(pw) = pending_wait {
                    reclaim_enqueue_ref(&pw);
                }
                drop(token);
                return propagate_runner_error(budget, e);
            }
        }
    }
}

enum SerialOutcome<R> {
    Done(R),
    /// The serial section waited on a condvar; re-run concurrently.
    Retry,
    /// A mode flip landed before the exclusion foothold; re-resolve.
    Redispatch,
}

fn run_serial<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    deadline: Option<Instant>,
    f: &mut F,
) -> SerialOutcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    // Unwind audit: `SerialToken` releases the gate in its `Drop` impl, so
    // a panic inside `f` reopens the gate while unwinding — the binding
    // itself is the unwind guard. Without that, one panicking serial
    // section would wedge every thread forever (the gate bit would stay
    // set). The `serial_gate_reopens_after_panic` regression test pins
    // this. The same audit covers `cancel_wait` below and the concurrent
    // tokens in `run_stm`/`run_htm`.
    let token = sys.gate.enter_serial();
    // The serial token is the foothold: a flip needs the gate too.
    if lock.domain().epoch() != epoch {
        drop(token);
        return SerialOutcome::Redispatch;
    }
    history::begin(TxMode::Serial);
    let mut ctx = TxCtx::new(CtxKind::Serial);
    // The budget still clamps condvar waits here, but cannot abort the
    // section: serial effects are irrevocable.
    ctx.deadline = deadline;
    let res = f(&mut ctx);
    let TxCtx {
        kind: _,
        defers,
        pending_wait,
        deadline: _,
        async_waits: _,
    } = ctx;
    sys.stats.serial_fallbacks.inc(th.stm_slot);
    lock.domain().window.record_serial();
    match res {
        Ok(r) => {
            debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
            sys.stats.commits.inc(th.stm_slot);
            trace::emit(TraceKind::Commit, TxMode::Serial, None, 0);
            // Recorded before the serial token drops: nothing else runs
            // inside the hold window.
            history::commit();
            drop(token);
            for d in defers {
                d();
            }
            SerialOutcome::Done(r)
        }
        Err(TxError::Wait) => {
            sys.stats.commits.inc(th.stm_slot);
            trace::emit(TraceKind::Commit, TxMode::Serial, None, 0);
            history::commit();
            drop(token);
            for d in defers {
                d();
            }
            let pw = pending_wait.expect("Wait reported without a wait request");
            block_on(th, lock, pw);
            SerialOutcome::Retry
        }
        Err(TxError::Abort(c)) => {
            panic!("operation aborted ({c}) in serial-irrevocable mode: effects cannot be undone")
        }
        Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
            panic!("{e:?} raised in serial-irrevocable mode: effects cannot be undone")
        }
    }
}

/// Acquire the adaptive lock word: CAS it, then make the acquisition
/// visible to speculating transactions. Eager modes invalidate the lock
/// word's line (dooming every subscriber); the lazy modes have no
/// subscribers to reach that way, so the safe variant bumps the
/// acquisition seqlock (new begins refuse) and dooms **every** active
/// transaction (in-flight speculation cannot run on as zombies), while the
/// naive variant deliberately does neither — that omission is the
/// literature's hazard, preserved for the checker to demonstrate.
fn adaptive_acquire(th: &ThreadHandle, lock: &ElidableMutex, mode: AlgoMode) {
    sched::yield_point(YieldPoint::LockWord);
    let mut spins = 0u32;
    loop {
        if !lock.held_cell().load_direct()
            && lock
                .held_cell()
                .word()
                .compare_exchange(
                    0,
                    1,
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                )
                .is_ok()
        {
            break;
        }
        spins += 1;
        sched::spin_hint(YieldPoint::LockWord);
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
    if mode.is_lazy() {
        // Odd seqlock: safe-lazy begins from here on refuse to speculate.
        lock.seq_bump();
        if mode.is_lazy_unsafe() {
            // Naive lazy subscription: the line invalidation reaches
            // nobody (no transaction subscribed the lock word).
            th.sys.htm.invalidate(lock.held_cell());
        } else if !mutant::armed(Mutant::LazyZombieEscape) {
            // Doom-on-acquire: the seeded bug deletes exactly this sweep.
            th.sys.htm.doom_all_active();
        }
    } else {
        th.sys.htm.invalidate(lock.held_cell());
    }
}

/// Release the adaptive lock word, restoring the lazy seqlock to even
/// (speculation may resume).
fn adaptive_release(lock: &ElidableMutex, mode: AlgoMode) {
    lock.held_cell().store_direct(false);
    if mode.is_lazy() {
        lock.seq_bump();
    }
}

/// Park the thread on its committed wait registration (or just yield the
/// scheduling slot under spin-mode polling).
fn block_on<'a>(th: &'a ThreadHandle, lock: &'a ElidableMutex, pw: PendingWait<'a>) {
    match pw.waiter {
        None => {
            // STM+Spin: no registration was made; poll by re-running. The
            // yield keeps the poll loop finite on oversubscribed machines
            // (without it, a polling thread can burn its entire quantum
            // while the thread it waits for is descheduled).
            sched::spin_hint(YieldPoint::Park);
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        Some(w) => {
            let signaled = w.wait(pw.timeout);
            trace::emit(TraceKind::WaitPark, TxMode::Serial, None, !signaled as u64);
            if !signaled {
                cancel_wait(th, lock, pw.cv, pw.raw);
            }
        }
    }
}

/// Timed-out waiter: remove our ring entry (a small transaction of its own)
/// or, if a signaller already claimed it, let the signaller's wakeup fall on
/// the floor harmlessly. Only reachable from the TM modes (baseline waiters
/// use the native condvar) — but by the time the timeout fires the *lock*
/// may have been flipped to any mode, so the removal algorithm is chosen
/// per attempt from the lock's current resolved mode, read under a
/// concurrent token (mode flips need the serial gate, so the token pins
/// it). Modes whose ring users access the ring outside gate-supervised
/// transactions (baseline's direct access under the raw mutex, adaptive
/// elision's lock path) fall through to [`remove_waiter_excluded`].
pub(crate) fn cancel_wait(
    th: &ThreadHandle,
    lock: &ElidableMutex,
    cv: &TxCondvar,
    raw: *const Waiter,
) {
    let sys = &*th.sys;
    let mut attempts = 0u32;
    let removed = loop {
        if attempts >= sys.policy().stm_retries {
            // Abort storm: do it under total exclusion.
            break remove_waiter_excluded(th, lock, cv, raw);
        }
        let token = sys.gate.enter_concurrent();
        let outcome = match lock.resolved_mode(sys.mode()) {
            m if m == AlgoMode::Baseline || m.is_glibc_family() => {
                drop(token);
                break remove_waiter_excluded(th, lock, cv, raw);
            }
            AlgoMode::HtmCondvar => {
                let tx = sys.htm.begin(th.htm_slot);
                let mut ctx = TxCtx::new(CtxKind::Htm { tx });
                let r = cv.remove(&mut ctx, raw);
                let tx = match ctx.kind {
                    CtxKind::Htm { tx } => tx,
                    _ => unreachable!(),
                };
                match r {
                    Ok(found) => tx.commit().map(|_| found),
                    Err(e) => {
                        tx.abort(e);
                        Err(e)
                    }
                }
            }
            _ => {
                let tx = sys.stm.begin_soft(th.stm_slot);
                let mut ctx = TxCtx::new(CtxKind::Stm {
                    tx,
                    spin_waits: false,
                });
                let r = cv.remove(&mut ctx, raw);
                let tx = match ctx.kind {
                    CtxKind::Stm { tx, .. } => tx,
                    _ => unreachable!(),
                };
                match r {
                    Ok(found) => tx.commit().map(|_| found),
                    Err(e) => {
                        tx.abort(e);
                        Err(e)
                    }
                }
            }
        };
        drop(token);
        match outcome {
            Ok(found) => break found,
            Err(_) => {
                attempts += 1;
                backoff(th.stm_slot, attempts, 0, sys.policy().backoff_ceiling);
            }
        }
    };
    if removed {
        // SAFETY: the queue entry held an `Arc` reference produced by
        // `Arc::into_raw` in `TxCtx::wait`; removing the entry transfers
        // that reference to us.
        unsafe { drop(Arc::from_raw(raw)) };
    }
}

/// Remove a waiter entry under **total exclusion** (serial gate, raw mutex,
/// and adaptive lock word — the same protocol as a mode flip): direct ring
/// access is then safe regardless of which mode the lock's other users run
/// under. Returns whether the entry was still present.
fn remove_waiter_excluded(
    th: &ThreadHandle,
    lock: &ElidableMutex,
    cv: &TxCondvar,
    raw: *const Waiter,
) -> bool {
    let sys = &*th.sys;
    // Unwind audit: token and guard both release in Drop; see `run_serial`.
    let token = sys.gate.enter_serial();
    sched::block_enter();
    let guard = lock.raw_lock();
    sched::block_exit();
    // Serial gate held: the resolved mode cannot flip under us, so the
    // acquire/release pair keeps the lazy seqlock parity consistent.
    let mode = lock.resolved_mode(sys.mode());
    adaptive_acquire(th, lock, mode);
    let mut ctx = TxCtx::new(CtxKind::Serial);
    let removed = cv
        .remove(&mut ctx, raw)
        .expect("direct access cannot abort");
    adaptive_release(lock, mode);
    drop(guard);
    drop(token);
    removed
}

/// Reclaim the queue-owned `Arc` reference of an enqueue whose transaction
/// failed to commit (the ring write rolled back, so nothing points at it).
pub(crate) fn reclaim_enqueue_ref(pw: &PendingWait<'_>) {
    if !pw.raw.is_null() {
        // SAFETY: see `cancel_wait`; the rolled-back enqueue published the
        // pointer nowhere.
        unsafe { drop(Arc::from_raw(pw.raw)) };
    }
}

/// Randomized exponential backoff between attempts. Yields early: the
/// conflicting transaction may be descheduled (always true on a single-CPU
/// host), in which case spinning cannot help it finish.
///
/// The draw mixes a *persistent* per-thread RNG with the salt and attempt
/// number. Deriving it from `(salt, attempts)` alone — as an earlier
/// version did — makes two threads that collide on attempt `n` draw
/// correlated waits on attempt `n+1` too, re-colliding indefinitely; the
/// per-thread state breaks that lockstep (each backoff also advances it, so
/// repeat encounters see fresh draws).
///
/// Two refinements over plain truncated-exponential:
///
/// - **Tiering by consecutive-abort depth**: `consec` is the starvation
///   ladder's cross-section abort streak ([`note_abort`]). A thread that
///   keeps losing across *sections* is in a congestion episode the
///   per-section `attempts` counter cannot see (it resets every section);
///   the tier widens its window up front, `log2`-ish in the streak, capped
///   at 4 extra doublings.
/// - **Decorrelated jitter** (the AWS "decorrelated jitter" shape): the
///   wait is drawn from `[16, 3*prev]` rather than `[0, bound)`, where
///   `prev` is this thread's previous wait. Consecutive draws random-walk
///   instead of re-sampling one fixed window, which both desynchronizes
///   repeat colliders faster and keeps a lucky short draw from snapping the
///   window back to zero. The exponential `bound` still caps the walk.
pub(crate) fn backoff(salt: usize, attempts: u32, consec: u32, ceiling: u32) {
    use std::sync::atomic::{AtomicU64, Ordering};
    /// Decorrelates the initial states of threads spawned back-to-back.
    static THREAD_SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    thread_local! {
        static BACKOFF_STATE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        /// Previous wait drawn on this thread (decorrelated-jitter state).
        static BACKOFF_PREV: std::cell::Cell<u64> = const { std::cell::Cell::new(16) };
    }
    // Tier 0 for a clean slate, then one extra doubling per log2 of the
    // streak: 1 -> 1, 2..3 -> 2, 4..7 -> 3, >= 8 -> 4.
    let tier = (32 - consec.leading_zeros()).min(4);
    let bound = (16u64 << attempts.saturating_add(tier).min(16))
        .min(ceiling as u64)
        .max(1);
    let draw = BACKOFF_STATE.with(|cell| {
        let mut state = cell.get();
        if state == 0 {
            state = THREAD_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed) | 1;
        }
        let raw = splitmix64(&mut state);
        cell.set(state);
        raw ^ ((salt as u64) << 32) ^ attempts as u64
    });
    let prev = BACKOFF_PREV.with(|p| p.get()).max(16);
    let spins = (16 + draw % prev.saturating_mul(3)).min(bound).max(1);
    BACKOFF_PREV.with(|p| p.set(spins));
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if attempts > 2 {
        std::thread::yield_now();
    }
}
